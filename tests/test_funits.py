"""Unit tests for functional-unit pools."""

from repro.config import CoreConfig
from repro.cpu.funits import FunctionalUnits
from repro.trace.record import InstrKind


def _units():
    units = FunctionalUnits(CoreConfig())
    units.new_cycle(0)
    return units


class TestIssueSlots:
    def test_alu_capacity_is_eight(self):
        units = _units()
        for __ in range(8):
            assert units.can_issue(InstrKind.IALU)
            units.issue(InstrKind.IALU)
        assert not units.can_issue(InstrKind.IALU)

    def test_load_store_capacity_is_four(self):
        units = _units()
        issued = 0
        while units.can_issue(InstrKind.LOAD):
            units.issue(InstrKind.LOAD)
            issued += 1
        assert issued == 4

    def test_loads_and_stores_share_pool(self):
        units = _units()
        units.issue(InstrKind.LOAD)
        units.issue(InstrKind.STORE)
        units.issue(InstrKind.LOAD)
        units.issue(InstrKind.STORE)
        assert not units.can_issue(InstrKind.LOAD)

    def test_new_cycle_resets_slots(self):
        units = _units()
        for __ in range(8):
            units.issue(InstrKind.IALU)
        units.new_cycle(1)
        assert units.can_issue(InstrKind.IALU)

    def test_pools_independent(self):
        units = _units()
        for __ in range(8):
            units.issue(InstrKind.IALU)
        assert units.can_issue(InstrKind.FADD)
        assert units.can_issue(InstrKind.LOAD)


class TestDividers:
    def test_divider_blocks_for_full_latency(self):
        units = _units()
        units.issue(InstrKind.IDIV)
        units.issue(InstrKind.IDIV)  # both int dividers busy
        units.new_cycle(1)
        assert not units.can_issue(InstrKind.IDIV)
        units.new_cycle(11)
        assert not units.can_issue(InstrKind.IDIV)
        units.new_cycle(12)
        assert units.can_issue(InstrKind.IDIV)

    def test_multiplier_is_pipelined(self):
        units = _units()
        units.issue(InstrKind.IMUL)
        units.issue(InstrKind.IMUL)
        units.new_cycle(1)
        assert units.can_issue(InstrKind.IMUL)

    def test_divider_blocks_multiplier_unit_count_not_pipeline(self):
        """A divider occupies one of the two shared mul/div units."""
        units = _units()
        units.issue(InstrKind.IDIV)
        units.new_cycle(1)
        # One unit still free this cycle.
        assert units.can_issue(InstrKind.IDIV)
        units.issue(InstrKind.IDIV)
        units.new_cycle(2)
        assert not units.can_issue(InstrKind.IDIV)

    def test_latency_of(self):
        units = _units()
        assert units.latency_of(InstrKind.FDIV) == 12
        assert units.latency_of(InstrKind.FADD) == 2
        assert units.issue(InstrKind.FMUL) == 4
