"""Property-based tests (hypothesis) on core data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig, CacheConfig
from repro.errors import IntegrityError
from repro.integrity import check_bus, check_cache, check_counter, check_mshr
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MshrFile
from repro.predictors.markov import DifferentialMarkovTable
from repro.predictors.saturating import SaturatingCounter
from repro.predictors.stride import TwoDeltaStrideTable
from repro.utils import block_address, fits_signed, min_bits_signed

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestUtilsProperties:
    @given(addresses)
    def test_block_address_idempotent(self, address):
        once = block_address(address, 32)
        assert block_address(once, 32) == once
        assert once <= address < once + 32

    @given(st.integers(min_value=-(1 << 34), max_value=1 << 34))
    def test_min_bits_signed_is_minimal(self, value):
        bits = min_bits_signed(value)
        assert fits_signed(value, bits)
        assert not fits_signed(value, bits - 1)


class TestSaturatingProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.sampled_from(["inc", "dec"]), max_size=60),
    )
    def test_counter_stays_in_range(self, maximum, operations):
        counter = SaturatingCounter(maximum=maximum)
        for operation in operations:
            if operation == "inc":
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= maximum


class TestBusProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=128),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_reservations_never_overlap(self, requests):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        intervals = []
        for earliest, num_bytes in requests:
            start = bus.acquire(earliest, num_bytes)
            assert start >= earliest
            intervals.append((start, start + bus.transfer_cycles(num_bytes)))
        intervals.sort()
        for (__, end_a), (start_b, __) in zip(intervals, intervals[1:]):
            assert end_a <= start_b

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=128),
            ),
            max_size=30,
        )
    )
    def test_busy_cycles_equal_sum_of_transfers(self, requests):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        expected = 0
        for earliest, num_bytes in requests:
            bus.acquire(earliest, num_bytes)
            expected += bus.transfer_cycles(num_bytes)
        assert bus.busy_cycles == expected


class TestCacheProperties:
    @settings(max_examples=40)
    @given(st.lists(addresses, max_size=200))
    def test_occupancy_bounded_by_capacity(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
        assert cache.resident_blocks <= cache.config.num_blocks

    @settings(max_examples=40)
    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_hits_plus_misses_equal_accesses(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
        assert cache.hits + cache.misses == cache.accesses

    @settings(max_examples=40)
    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_repeat_access_always_hits(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=4096, associativity=4, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
            assert cache.access(address)  # immediate re-access hits


class TestPredictorProperties:
    @settings(max_examples=30)
    @given(st.lists(addresses, max_size=120), addresses)
    def test_markov_lookup_never_crashes(self, trained, probe):
        table = DifferentialMarkovTable()
        previous = None
        for address in trained:
            if previous is not None:
                table.train(previous, address)
            previous = address
        result = table.lookup(probe)
        assert result is None or isinstance(result, int)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=-4096, max_value=4096),
        st.integers(min_value=3, max_value=40),
    )
    def test_stride_table_locks_constant_stride(self, base, stride, count):
        if stride == 0:
            return
        table = TwoDeltaStrideTable()
        address = base
        for __ in range(count):
            table.train(0x500, address)
            address += stride
        entry = table.lookup(0x500)
        assert entry.two_delta_stride == stride

    @settings(max_examples=30)
    @given(st.lists(addresses, min_size=2, max_size=100))
    def test_confidence_in_range(self, stream):
        table = TwoDeltaStrideTable()
        for address in stream:
            table.train(0x500, address)
        assert 0 <= table.confidence_for(0x500) <= 7


class TestInvariantCheckersAcceptRealModels:
    """Arbitrary legal op sequences never trip the integrity checks."""

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "retire"]), addresses),
            max_size=80,
        )
    )
    def test_mshr_operations_never_trip_checker(self, operations):
        mshr = MshrFile(num_entries=8)
        cycle = 0
        for operation, address in operations:
            cycle += 1
            block = block_address(address, 32)
            if operation == "alloc":
                if not mshr.is_full() and mshr.lookup(block) is None:
                    mshr.allocate(block, cycle + 10)
                elif mshr.lookup(block) is not None:
                    mshr.merge(block)
            else:
                mshr.retire_ready(cycle + 5)
            check_mshr(mshr, "l1.mshr", cycle)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=400),
                st.integers(min_value=1, max_value=128),
            ),
            max_size=40,
        )
    )
    def test_bus_operations_never_trip_checker(self, requests):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        for earliest, num_bytes in requests:
            bus.acquire(earliest, num_bytes)
            check_bus(bus, "bus")

    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=15),
        st.lists(st.sampled_from(["inc", "dec"]), max_size=60),
    )
    def test_counter_operations_never_trip_checker(self, maximum, operations):
        counter = SaturatingCounter(maximum=maximum)
        for operation in operations:
            if operation == "inc":
                counter.increment()
            else:
                counter.decrement()
            check_counter(counter, "priority")

    @settings(max_examples=30)
    @given(st.lists(addresses, max_size=150))
    def test_cache_operations_never_trip_checker(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
        check_cache(cache, "l1")


class TestInvariantCheckersRejectCorruptState:
    """Every corruption recipe provably trips its targeted invariant."""

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_phantom_mshr_entries_trip_balance(self, base):
        mshr = MshrFile(num_entries=8)
        mshr._inflight[block_address(base, 32)] = 1 << 60
        with pytest.raises(IntegrityError) as excinfo:
            check_mshr(mshr, "l1.mshr")
        assert excinfo.value.invariant == "l1.mshr.balance"

    def test_overfull_mshr_trips_capacity(self):
        mshr = MshrFile(num_entries=2)
        for index in range(4):
            mshr._inflight[index * 32] = 1 << 60
        mshr.allocations = 4  # balanced, but past capacity
        with pytest.raises(IntegrityError) as excinfo:
            check_mshr(mshr, "l1.mshr")
        assert excinfo.value.invariant == "l1.mshr.capacity"

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_zero_length_reservation_trips_bus(self, start):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        bus._reservations.append((start, start))
        with pytest.raises(IntegrityError) as excinfo:
            check_bus(bus, "bus")
        assert excinfo.value.invariant == "bus.reservation"

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=2, max_value=64),
    )
    def test_overlapping_reservations_trip_bus(self, start, length):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        bus._reservations.append((start, start + length))
        bus._reservations.append((start + length - 1, start + 2 * length))
        with pytest.raises(IntegrityError) as excinfo:
            check_bus(bus, "bus")
        assert excinfo.value.invariant == "bus.occupancy"

    @settings(max_examples=25)
    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=100),
    )
    def test_escaped_counter_trips_bounds(self, maximum, excess):
        counter = SaturatingCounter(maximum=maximum)
        counter.value = maximum + excess
        with pytest.raises(IntegrityError) as excinfo:
            check_counter(counter, "priority")
        assert excinfo.value.invariant == "priority.bounds"

    def test_broken_cache_accounting_trips_checker(self):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        cache.insert(0x1000)
        cache.hits += 3  # hits that never happened
        with pytest.raises(IntegrityError) as excinfo:
            check_cache(cache, "l1")
        assert excinfo.value.invariant == "l1.accounting"
