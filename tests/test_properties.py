"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig, CacheConfig
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.predictors.markov import DifferentialMarkovTable
from repro.predictors.saturating import SaturatingCounter
from repro.predictors.stride import TwoDeltaStrideTable
from repro.utils import block_address, fits_signed, min_bits_signed

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestUtilsProperties:
    @given(addresses)
    def test_block_address_idempotent(self, address):
        once = block_address(address, 32)
        assert block_address(once, 32) == once
        assert once <= address < once + 32

    @given(st.integers(min_value=-(1 << 34), max_value=1 << 34))
    def test_min_bits_signed_is_minimal(self, value):
        bits = min_bits_signed(value)
        assert fits_signed(value, bits)
        assert not fits_signed(value, bits - 1)


class TestSaturatingProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.sampled_from(["inc", "dec"]), max_size=60),
    )
    def test_counter_stays_in_range(self, maximum, operations):
        counter = SaturatingCounter(maximum=maximum)
        for operation in operations:
            if operation == "inc":
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= maximum


class TestBusProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=128),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_reservations_never_overlap(self, requests):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        intervals = []
        for earliest, num_bytes in requests:
            start = bus.acquire(earliest, num_bytes)
            assert start >= earliest
            intervals.append((start, start + bus.transfer_cycles(num_bytes)))
        intervals.sort()
        for (__, end_a), (start_b, __) in zip(intervals, intervals[1:]):
            assert end_a <= start_b

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=1, max_value=128),
            ),
            max_size=30,
        )
    )
    def test_busy_cycles_equal_sum_of_transfers(self, requests):
        bus = Bus(BusConfig(name="p", bytes_per_cycle=8))
        expected = 0
        for earliest, num_bytes in requests:
            bus.acquire(earliest, num_bytes)
            expected += bus.transfer_cycles(num_bytes)
        assert bus.busy_cycles == expected


class TestCacheProperties:
    @settings(max_examples=40)
    @given(st.lists(addresses, max_size=200))
    def test_occupancy_bounded_by_capacity(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
        assert cache.resident_blocks <= cache.config.num_blocks

    @settings(max_examples=40)
    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_hits_plus_misses_equal_accesses(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=1024, associativity=2, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
        assert cache.hits + cache.misses == cache.accesses

    @settings(max_examples=40)
    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_repeat_access_always_hits(self, stream):
        cache = SetAssociativeCache(
            CacheConfig(
                name="p", size_bytes=4096, associativity=4, block_size=32,
                hit_latency=1,
            )
        )
        for address in stream:
            if not cache.access(address):
                cache.insert(address)
            assert cache.access(address)  # immediate re-access hits


class TestPredictorProperties:
    @settings(max_examples=30)
    @given(st.lists(addresses, max_size=120), addresses)
    def test_markov_lookup_never_crashes(self, trained, probe):
        table = DifferentialMarkovTable()
        previous = None
        for address in trained:
            if previous is not None:
                table.train(previous, address)
            previous = address
        result = table.lookup(probe)
        assert result is None or isinstance(result, int)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=-4096, max_value=4096),
        st.integers(min_value=3, max_value=40),
    )
    def test_stride_table_locks_constant_stride(self, base, stride, count):
        if stride == 0:
            return
        table = TwoDeltaStrideTable()
        address = base
        for __ in range(count):
            table.train(0x500, address)
            address += stride
        entry = table.lookup(0x500)
        assert entry.two_delta_stride == stride

    @settings(max_examples=30)
    @given(st.lists(addresses, min_size=2, max_size=100))
    def test_confidence_in_range(self, stream):
        table = TwoDeltaStrideTable()
        for address in stream:
            table.train(0x500, address)
        assert 0 <= table.confidence_for(0x500) <= 7
