"""Unit tests for the campaign runner (inline isolation for speed).

Process-isolation and the end-to-end acceptance campaign live in
``test_runner_campaign.py``.
"""

import itertools
import json
import os

import pytest

from repro.errors import (
    ConfigError,
    SimulationError,
    TraceFormatError,
)
from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.sim import baseline_config, simulate
from repro.sim.sweep import cache_sweep, run_configs
from repro.workloads import get_workload

INSTRUCTIONS = 1_500
WARMUP = 300


def _spec(run_id="point", faults=None, trace=None, instructions=INSTRUCTIONS):
    return RunSpec(
        run_id=run_id,
        config=baseline_config(),
        trace=trace if trace is not None else WorkloadSpec("health", seed=1),
        max_instructions=instructions,
        warmup_instructions=WARMUP,
        faults=faults,
    )


def _inline(**kwargs):
    kwargs.setdefault("isolation", "inline")
    kwargs.setdefault("backoff_base", 0.0)
    return CampaignRunner(**kwargs)


class TestRunOne:
    def test_matches_direct_simulate(self):
        direct = simulate(
            baseline_config(), get_workload("health", seed=1),
            max_instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        via_runner = _inline().run_one(_spec())
        assert via_runner.ipc == direct.ipc
        assert via_runner.cycles == direct.cycles

    def test_raises_on_failure(self):
        with pytest.raises(SimulationError):
            _inline().run_one(_spec(faults=FaultSpec(crash_at=10)))


class TestRetryPolicy:
    def test_transient_crash_recovers(self):
        sleeps = []
        runner = _inline(retries=2, backoff_base=0.5, sleep=sleeps.append)
        outcome = runner.run(
            [_spec(faults=FaultSpec(crash_at=10, crash_attempts=1))]
        ).outcomes["point"]
        assert outcome.ok
        assert outcome.attempts == 2
        assert sleeps == [0.5]  # one backoff before the healing attempt

    def test_backoff_grows_exponentially_and_caps(self):
        sleeps = []
        runner = _inline(
            retries=4, backoff_base=1.0, backoff_max=3.0, sleep=sleeps.append
        )
        campaign = runner.run([_spec(faults=FaultSpec(crash_at=10))])
        outcome = campaign.failures["point"]
        assert outcome.attempts == 5
        assert sleeps == [1.0, 2.0, 3.0, 3.0]

    def test_non_retryable_fails_immediately(self):
        sleeps = []
        runner = _inline(retries=3, sleep=sleeps.append)
        outcome = runner.run(
            [_spec(faults=FaultSpec(corrupt_at=10))]
        ).failures["point"]
        assert outcome.attempts == 1
        assert outcome.error_kind == "TraceFormatError"
        assert sleeps == []

    def test_crash_is_classified_retryable_simulation_error(self):
        outcome = _inline(retries=1).run(
            [_spec(faults=FaultSpec(crash_at=10))]
        ).failures["point"]
        assert outcome.error_kind == "SimulationError"
        assert outcome.attempts == 2


class TestDegradationPolicy:
    def _specs(self):
        return [
            _spec("a"),
            _spec("bad", faults=FaultSpec(corrupt_at=5)),
            _spec("c"),
        ]

    def test_skip_records_and_continues(self):
        campaign = _inline(on_error="skip").run(self._specs())
        assert set(campaign.results) == {"a", "c"}
        assert set(campaign.failures) == {"bad"}

    def test_fail_fast_raises_and_stops(self):
        with pytest.raises(TraceFormatError):
            _inline(on_error="fail").run(self._specs())

    def test_fail_fast_still_notifies_on_outcome(self):
        # Regression: the fail-fast break used to run before the
        # terminal callback, so the *failing* outcome was never
        # delivered to on_outcome.
        seen = []
        with pytest.raises(TraceFormatError):
            _inline(
                on_error="fail",
                on_outcome=lambda o: seen.append((o.run_id, o.ok)),
            ).run(self._specs())
        assert seen == [("a", True), ("bad", False)]

    def test_duplicate_run_ids_rejected(self):
        with pytest.raises(ConfigError):
            _inline().run([_spec("x"), _spec("x")])


class TestRunnerValidation:
    def test_bad_on_error(self):
        with pytest.raises(ConfigError):
            CampaignRunner(on_error="explode")

    def test_bad_isolation(self):
        with pytest.raises(ConfigError):
            CampaignRunner(isolation="container")

    def test_negative_retries(self):
        with pytest.raises(ConfigError):
            CampaignRunner(retries=-1)

    def test_timeout_requires_process_isolation(self):
        with pytest.raises(ConfigError):
            CampaignRunner(timeout=5, isolation="inline")

    def test_resume_requires_campaign_dir(self):
        with pytest.raises(ConfigError):
            CampaignRunner(resume=True)


class TestCheckpointing:
    def test_checkpoint_and_manifest_written(self, tmp_path):
        d = str(tmp_path / "camp")
        campaign = _inline(campaign_dir=d).run(
            [_spec("a"), _spec("bad", faults=FaultSpec(corrupt_at=5))]
        )
        lines = [
            json.loads(line)
            for line in open(os.path.join(d, CHECKPOINT_NAME))
        ]
        assert [entry["run_id"] for entry in lines] == ["a", "bad"]
        assert lines[0]["status"] == "ok"
        assert lines[0]["result"]["ipc"] == campaign.results["a"].ipc
        assert lines[1]["status"] == "failed"
        assert lines[1]["error"]["kind"] == "TraceFormatError"

        manifest = json.load(open(os.path.join(d, MANIFEST_NAME)))
        assert manifest["status"] == "complete"
        assert manifest["ok"] == 1 and manifest["failed"] == 1
        assert manifest["failures"][0]["run_id"] == "bad"

    def test_fresh_run_clears_stale_checkpoint(self, tmp_path):
        d = str(tmp_path / "camp")
        _inline(campaign_dir=d).run([_spec("a")])
        _inline(campaign_dir=d).run([_spec("b")])  # no resume: start over
        entries = [
            json.loads(line)
            for line in open(os.path.join(d, CHECKPOINT_NAME))
        ]
        assert [entry["run_id"] for entry in entries] == ["b"]


class TestResume:
    def _counting_specs(self, counter):
        """Specs whose trace factories count invocations (inline only)."""

        def factory_for(run_id):
            def factory():
                counter[run_id] = counter.get(run_id, 0) + 1
                return itertools.islice(
                    get_workload("health", seed=1), INSTRUCTIONS + 5_000
                )

            return factory

        return [_spec(run_id, trace=factory_for(run_id)) for run_id in "abc"]

    def test_interrupt_then_resume_skips_completed(self, tmp_path):
        d = str(tmp_path / "camp")
        executed = {}
        baseline_counter = {}
        uninterrupted = _inline(campaign_dir=str(tmp_path / "ref")).run(
            self._counting_specs(baseline_counter)
        )

        def interrupt_after_first(outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            _inline(
                campaign_dir=d, on_outcome=interrupt_after_first
            ).run(self._counting_specs(executed))
        assert executed == {"a": 1}

        manifest = json.load(open(os.path.join(d, MANIFEST_NAME)))
        assert manifest["status"] == "interrupted"

        resumed = _inline(campaign_dir=d, resume=True).run(
            self._counting_specs(executed)
        )
        assert executed == {"a": 1, "b": 1, "c": 1}  # a was NOT re-run
        assert resumed.resumed == ["a"]
        assert {
            run_id: result.ipc for run_id, result in resumed.results.items()
        } == {
            run_id: result.ipc
            for run_id, result in uninterrupted.results.items()
        }
        assert json.load(open(os.path.join(d, MANIFEST_NAME)))[
            "resumed_from_checkpoint"
        ] == 1

    def test_changed_spec_invalidates_checkpoint(self, tmp_path):
        d = str(tmp_path / "camp")
        _inline(campaign_dir=d).run([_spec("a")])
        changed = _spec("a", instructions=INSTRUCTIONS + 500)
        campaign = _inline(campaign_dir=d, resume=True).run([changed])
        assert campaign.resumed == []  # fingerprint mismatch: re-ran

    def test_resumed_failures_are_not_retried(self, tmp_path):
        d = str(tmp_path / "camp")
        spec = _spec("bad", faults=FaultSpec(corrupt_at=5))
        _inline(campaign_dir=d).run([spec])
        campaign = _inline(campaign_dir=d, resume=True).run([spec])
        assert campaign.resumed == ["bad"]
        assert campaign.failures["bad"].error_kind == "TraceFormatError"


class TestSnapshotCleanup:
    def test_success_removes_snapshot(self, tmp_path):
        d = str(tmp_path / "camp")
        campaign = _inline(campaign_dir=d, snapshot_every=50).run(
            [_spec("ok-point")]
        )
        assert campaign.outcomes["ok-point"].ok
        snapdir = os.path.join(d, "snapshots")
        assert os.path.isdir(snapdir)  # a snapshot was written mid-run
        assert os.listdir(snapdir) == []

    def test_terminal_failure_removes_snapshot(self, tmp_path):
        # Regression: only the success path cleaned up, so a terminally
        # failed point left its per-spec .snap behind — and a later
        # campaign reusing the fingerprint would silently fast-forward
        # from the dead attempt's state.
        d = str(tmp_path / "camp")
        campaign = _inline(campaign_dir=d, snapshot_every=50).run(
            [_spec("bad", faults=FaultSpec(corrupt_at=800))]
        )
        assert campaign.failures["bad"].error_kind == "TraceFormatError"
        snapdir = os.path.join(d, "snapshots")
        assert os.path.isdir(snapdir)  # a snapshot was written mid-run
        assert os.listdir(snapdir) == []


class TestProcessFallback:
    def test_unpicklable_trace_runs_inline(self):
        generator = get_workload("health", seed=1)
        spec = _spec("lambda-point", trace=lambda: generator)
        runner = CampaignRunner(isolation="process")  # cannot pickle a lambda
        result = runner.run_one(spec)
        assert result.instructions > 0


class TestSweepOnRunner:
    def test_run_configs_unchanged_semantics(self):
        def factory():
            return itertools.islice(get_workload("health", seed=1), 10_000)

        results = run_configs(
            {"Base": baseline_config()}, factory,
            max_instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        direct = simulate(
            baseline_config(), factory(),
            max_instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        assert results["Base"].ipc == direct.ipc

    def test_run_configs_fail_fast_by_default(self):
        def broken():
            raise RuntimeError("boom")

        with pytest.raises(SimulationError):
            run_configs(
                {"Base": baseline_config()}, broken,
                max_instructions=INSTRUCTIONS,
            )

    def test_cache_sweep_with_resilient_runner_skips_failures(self, tmp_path):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 2:  # fail the second geometry only
                raise RuntimeError("boom")
            return itertools.islice(get_workload("health", seed=1), 10_000)

        runner = _inline(campaign_dir=str(tmp_path / "camp"), on_error="skip")
        results = cache_sweep(
            baseline_config(), flaky,
            max_instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
            runner=runner,
        )
        assert len(results) == 2  # the failed geometry is absent
        manifest = json.load(
            open(os.path.join(str(tmp_path / "camp"), MANIFEST_NAME))
        )
        assert manifest["failed"] == 1
