"""The campaign service end to end: HTTP API, scheduling, recovery.

The in-process tests run the real :class:`CampaignService` on a private
event loop in a daemon thread and talk to it over real sockets with
``urllib`` — the same wire path production clients use.  The slow test
at the bottom goes further: it SIGKILLs a live ``repro-sim serve``
subprocess mid-campaign and proves a restarted server finishes the job
exactly once.
"""

import asyncio
import contextlib
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.runner.chaos import ChaosSpec
from repro.service import CampaignService, job_id_of, normalize_spec
from repro.service.client import request_json

INSTRUCTIONS = 1500


@contextlib.contextmanager
def running_service(service_dir, **kwargs):
    """A live CampaignService on its own loop thread, drained on exit."""
    kwargs.setdefault("poll_interval", 0.05)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def _build():
        return CampaignService(str(service_dir), **kwargs)

    # Construct on the loop thread so every asyncio object binds there.
    service = asyncio.run_coroutine_threadsafe(
        _async_build(_build), loop
    ).result(10)
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(10)
    try:
        yield service
    finally:
        asyncio.run_coroutine_threadsafe(service.drain(), loop).result(120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


async def _async_build(factory):
    return factory()


def submit_payload(**overrides):
    payload = {
        "workload": "health",
        "machines": "base,stride",
        "instructions": INSTRUCTIONS,
        "isolation": "inline",
    }
    payload.update(overrides)
    return payload


def wait_terminal(url, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, job = request_json("GET", f"{url}/jobs/{job_id}")
        assert status == 200, job
        if job["terminal"]:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestHttpApi:
    def test_submit_execute_and_serve_artifacts(self, tmp_path):
        with running_service(tmp_path / "svc") as service:
            url = service.url
            status, _, health = request_json("GET", f"{url}/healthz")
            assert status == 200 and health["status"] == "ok"

            status, _, body = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            assert status == 201 and body["created"] is True
            job_id = body["job"]["job_id"]
            # The job id is the content address of the normalized spec
            # plus the code revision the service is running.
            assert job_id == job_id_of(
                normalize_spec(submit_payload()), service.store.rev
            )

            job = wait_terminal(url, job_id)
            assert job["state"] == "done"
            assert job["summary"]["ok"] == 2
            assert job["summary"]["total_points"] == 2

            status, _, manifest = request_json(
                "GET", f"{url}/jobs/{job_id}/manifest"
            )
            assert status == 200
            assert manifest["status"] == "complete"
            assert manifest["ok"] == 2

            with urllib.request.urlopen(
                f"{url}/jobs/{job_id}/report"
            ) as response:
                assert response.status == 200
                assert "text/html" in response.headers["Content-Type"]
                assert b"<!DOCTYPE html>" in response.read()

            status, _, listing = request_json("GET", f"{url}/jobs")
            assert status == 200
            assert [j["job_id"] for j in listing["jobs"]] == [job_id]

    def test_progress_events_stream(self, tmp_path):
        with running_service(tmp_path / "svc") as service:
            url = service.url
            # A job big enough that it cannot finish between polls —
            # events are buffered only while the job is active.
            _, _, body = request_json(
                "POST", f"{url}/jobs",
                submit_payload(machines="all", instructions=4000),
            )
            job_id = body["job"]["job_id"]
            deadline = time.monotonic() + 120
            lines = []
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{url}/jobs/{job_id}/events"
                ) as response:
                    text = response.read().decode()
                lines = [l for l in text.splitlines() if l]
                if lines:
                    break
            assert lines, "no progress events ever appeared"
            event = json.loads(lines[0])
            assert event["job_id"] == job_id
            assert event["seq"] == 1
            assert "line" in event

    def test_duplicate_submission_returns_the_same_job(self, tmp_path):
        with running_service(tmp_path / "svc") as service:
            url = service.url
            status, _, first = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            status2, _, second = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            assert status == 201 and status2 == 200
            assert second["created"] is False
            assert second["job"]["job_id"] == first["job"]["job_id"]

    def test_invalid_spec_is_a_400(self, tmp_path):
        with running_service(tmp_path / "svc") as service:
            url = service.url
            for bad in (
                {"workload": "quake"},
                {"workload": "health", "machines": "warp-drive"},
                {"workload": "health", "typo_field": 1},
                {"workload": "health", "instructions": -1},
            ):
                status, _, body = request_json("POST", f"{url}/jobs", bad)
                assert status == 400, bad
                assert "error" in body

    def test_unknown_routes_are_404(self, tmp_path):
        with running_service(tmp_path / "svc") as service:
            url = service.url
            assert request_json("GET", f"{url}/nope")[0] == 404
            assert request_json("GET", f"{url}/jobs/missing")[0] == 404
            assert (
                request_json("GET", f"{url}/jobs/missing/manifest")[0] == 404
            )

    def test_back_pressure_is_429_with_retry_after(self, tmp_path):
        # A scheduler that never wakes up keeps submissions queued, so
        # the admission bound is hit deterministically.
        with running_service(
            tmp_path / "svc", max_queued=1, poll_interval=60.0,
            retry_after=9.0,
        ) as service:
            url = service.url
            assert (
                request_json("POST", f"{url}/jobs", submit_payload())[0]
                == 201
            )
            status, headers, body = request_json(
                "POST", f"{url}/jobs", submit_payload(workload="burg")
            )
            assert status == 429
            assert headers.get("retry-after") == "9"
            assert body["retry_after"] == 9.0
            # Idempotent resubmission of the *known* job is not new
            # admission: it must succeed even while the queue is full.
            status, _, body = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            assert status == 200 and body["created"] is False

    def test_draining_service_refuses_submissions_with_503(self, tmp_path):
        with running_service(
            tmp_path / "svc", poll_interval=60.0
        ) as service:
            url = service.url
            service.draining = True
            status, headers, _ = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            assert status == 503
            assert "retry-after" in headers
            service.draining = False  # let the exit drain run normally


class TestChaos:
    def test_duplicate_submission_chaos_is_absorbed(self, tmp_path):
        chaos = ChaosSpec(duplicate_submissions=(0,))
        with running_service(
            tmp_path / "svc", poll_interval=60.0, chaos=chaos
        ) as service:
            url = service.url
            status, _, body = request_json(
                "POST", f"{url}/jobs", submit_payload()
            )
            assert status == 201 and body["created"] is True
            _, _, listing = request_json("GET", f"{url}/jobs")
            assert len(listing["jobs"]) == 1
            assert (
                service.chaos.counters["submissions_duplicated"] == 1
            )

    def test_dropped_heartbeat_expires_lease_and_job_recovers(
        self, tmp_path
    ):
        """Kill-between-lease-renewals: the heartbeat stops, the run is
        abandoned, the lease ages out, the reaper re-enqueues, and the
        *same server* finishes the job from its checkpoint — exactly
        once."""
        chaos = ChaosSpec(drop_lease_renewals=(0,))
        with running_service(
            tmp_path / "svc",
            chaos=chaos,
            lease_ttl=0.6,
            renew_interval=0.05,
        ) as service:
            url = service.url
            _, _, body = request_json(
                "POST", f"{url}/jobs",
                submit_payload(machines="all", instructions=2500),
            )
            job_id = body["job"]["job_id"]
            job = wait_terminal(url, job_id, timeout=180)
            assert job["state"] == "done"
            assert job["expiries"] == 1
            assert job["claims"] == 2
            assert service.chaos.counters["renewals_dropped"] == 1
        _assert_exactly_once(tmp_path / "svc", job_id, job)

    def test_stolen_lease_fences_the_owner_and_job_recovers(self, tmp_path):
        """The expired-lease race: the lease is force-expired under its
        owner, whose next renewal must fence out; the job still ends
        done, exactly once."""
        chaos = ChaosSpec(steal_lease_renewals=(0,))
        with running_service(
            tmp_path / "svc",
            chaos=chaos,
            lease_ttl=0.6,
            renew_interval=0.05,
        ) as service:
            url = service.url
            _, _, body = request_json(
                "POST", f"{url}/jobs",
                submit_payload(machines="all", instructions=2500),
            )
            job_id = body["job"]["job_id"]
            job = wait_terminal(url, job_id, timeout=180)
            assert job["state"] == "done"
            assert job["expiries"] >= 1
            assert service.chaos.counters["leases_stolen"] == 1
        _assert_exactly_once(tmp_path / "svc", job_id, job)


def _assert_exactly_once(service_dir, job_id, job):
    """Every point checkpointed exactly once; tallies agree."""
    checkpoint = os.path.join(
        str(service_dir), "runs", job_id, "checkpoint.jsonl"
    )
    run_ids = []
    with open(checkpoint) as handle:
        for line in handle:
            if line.strip():
                run_ids.append(json.loads(line)["run_id"])
    assert sorted(set(run_ids)) == sorted(run_ids), (
        f"points executed more than once: "
        f"{[r for r in set(run_ids) if run_ids.count(r) > 1]}"
    )
    assert len(run_ids) == job["summary"]["total_points"]


@pytest.mark.slow
class TestCrashRestart:
    def test_sigkill_mid_job_then_restart_completes_exactly_once(
        self, tmp_path
    ):
        """The full crash story with no graceful anything: the server
        dies with SIGKILL mid-campaign, leaving a live lease, a running
        job record, and a partial checkpoint.  A restarted server waits
        out the lease, re-claims the job, resumes the campaign, and the
        audit cross-checks every artifact it left behind."""
        service_dir = tmp_path / "svc"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )

        def start_server():
            server = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    str(service_dir), "--port", "0",
                    "--lease-ttl", "2", "--poll-interval", "0.05",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                env=env, text=True,
            )
            line = server.stdout.readline()
            match = re.search(r"http://\S+", line)
            assert match, f"no URL announced: {line!r}"
            return server, match.group(0)

        server, url = start_server()
        try:
            status, _, body = request_json(
                "POST", f"{url}/jobs",
                submit_payload(machines="all", instructions=3000),
            )
            assert status == 201
            job_id = body["job"]["job_id"]
            checkpoint = os.path.join(
                str(service_dir), "runs", job_id, "checkpoint.jsonl"
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if (
                    os.path.exists(checkpoint)
                    and os.path.getsize(checkpoint) > 0
                ):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("job never checkpointed a point")
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)

        # The kill left a running job and a live-looking lease behind.
        jobs_lines = open(
            os.path.join(str(service_dir), "jobs.jsonl")
        ).read()
        assert '"state": "running"' in jobs_lines

        server, url = start_server()
        try:
            job = wait_terminal(url, job_id, timeout=240)
            assert job["state"] == "done", job
            assert job["expiries"] == 1
            assert job["claims"] == 2
            _assert_exactly_once(service_dir, job_id, job)
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                out, _ = server.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()
                raise
            assert server.returncode == 0, out

        # The auditor must find no cross-layer contradiction.  (A
        # SIGKILL mid-append may leave a CRC-rejected fragment, which
        # is a warning by design, so this is the non-strict gate.)
        audit = subprocess.run(
            [sys.executable, "-m", "repro", "audit", str(service_dir)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert audit.returncode == 0, audit.stdout + audit.stderr
