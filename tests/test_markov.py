"""Unit tests for the Markov prediction tables."""

from repro.config import MarkovPredictorConfig
from repro.predictors.markov import DifferentialMarkovTable, MarkovTable


class TestMarkovTable:
    def test_lookup_unknown(self):
        assert MarkovTable(64).lookup(0x1000) is None

    def test_train_then_lookup(self):
        table = MarkovTable(64)
        table.train(0x1000, 0x2000)
        assert table.lookup(0x1000) == 0x2000

    def test_retrain_overwrites(self):
        table = MarkovTable(64)
        table.train(0x1000, 0x2000)
        table.train(0x1000, 0x3000)
        assert table.lookup(0x1000) == 0x3000

    def test_hit_rate(self):
        table = MarkovTable(64)
        table.train(0x1000, 0x2000)
        table.lookup(0x1000)
        table.lookup(0x9999)
        assert table.hit_rate == 0.5

    def test_associativity_keeps_colliding_entries(self):
        # A 4-way table holds at least 4 entries per set, whatever the hash.
        table = MarkovTable(16, associativity=16)  # one fully-assoc set
        addresses = [0x1000 + i * 64 for i in range(16)]
        for address in addresses:
            table.train(address, address + 64)
        assert all(table.lookup(a) == a + 64 for a in addresses)


class TestDifferentialMarkovTable:
    def test_stores_deltas(self):
        table = DifferentialMarkovTable()
        table.train(0x1000, 0x1040)
        assert table.lookup(0x1000) == 0x1040

    def test_negative_delta(self):
        table = DifferentialMarkovTable()
        table.train(0x2000, 0x1000)
        assert table.lookup(0x2000) == 0x1000

    def test_out_of_range_delta_not_recorded(self):
        """Transitions beyond the 16-bit window are lost — the trade-off
        Figure 4 quantifies."""
        table = DifferentialMarkovTable()
        table.train(0x1000, 0x1000 + (1 << 20))
        assert table.lookup(0x1000) is None
        assert table.trains_out_of_range == 1

    def test_boundary_delta(self):
        table = DifferentialMarkovTable()
        table.train(0x100000, 0x100000 + 32767)
        assert table.lookup(0x100000) == 0x100000 + 32767
        table.train(0x200000, 0x200000 + 32768)
        assert table.lookup(0x200000) is None

    def test_paper_table_is_4kb(self):
        table = DifferentialMarkovTable(MarkovPredictorConfig())
        assert table.data_store_bytes == 4096

    def test_strided_addresses_spread_over_sets(self):
        """64-byte-spaced block addresses must not cluster in a subset of
        sets (the pathology a low-bit multiplicative hash has)."""
        config = MarkovPredictorConfig(entries=2048, associativity=4)
        table = DifferentialMarkovTable(config)
        addresses = [0x1000_0000 + i * 64 for i in range(1024)]
        for address in addresses:
            table.train(address, address + 64)
        hits = sum(1 for a in addresses if table.lookup(a) == a + 64)
        assert hits / len(addresses) > 0.9

    def test_custom_bit_width(self):
        table = DifferentialMarkovTable(MarkovPredictorConfig(delta_bits=8))
        table.train(0x1000, 0x1000 + 127)
        table.train(0x2000, 0x2000 + 128)
        assert table.lookup(0x1000) == 0x1000 + 127
        assert table.lookup(0x2000) is None
