"""The compiled binary trace format and the on-disk workload cache."""

import itertools
import os
import struct

import pytest

from repro.errors import TraceFormatError
from repro.trace import compile_trace, load_binary_trace_list, sniff_binary
from repro.trace.binfmt import MAGIC, VERSION
from repro.trace.io import load_trace_list, save_trace
from repro.trace.record import InstrKind, TraceRecord
from repro.workloads import (
    cache_path,
    cached_workload_trace,
    clear_cache,
    get_workload,
)

RECORDS = [
    TraceRecord(InstrKind.IALU, pc=0x1000),
    TraceRecord(InstrKind.LOAD, pc=0x1004, addr=0xDEAD_BEE0, dep1=1),
    TraceRecord(InstrKind.STORE, pc=0x1008, addr=0xFEED_F000, dep1=2, dep2=1),
    TraceRecord(InstrKind.BRANCH, pc=0x100C, taken=True),
    TraceRecord(InstrKind.FDIV, pc=0x1010, dep1=3),
    TraceRecord(InstrKind.NOP, pc=0x1014),
]


class TestRoundTrip:
    def test_exact_record_sequence(self, tmp_path):
        path = str(tmp_path / "t.rtb")
        assert compile_trace(path, iter(RECORDS)) == len(RECORDS)
        assert load_binary_trace_list(path) == RECORDS

    def test_matches_text_parser_on_workload(self, tmp_path):
        records = list(itertools.islice(get_workload("gs", seed=3), 500))
        binary = str(tmp_path / "gs.rtb")
        text = str(tmp_path / "gs.trace")
        compile_trace(binary, iter(records))
        save_trace(text, iter(records))
        assert load_binary_trace_list(binary) == load_trace_list(text)

    def test_limit_truncates(self, tmp_path):
        path = str(tmp_path / "t.rtb")
        assert compile_trace(path, iter(RECORDS), limit=2) == 2
        assert load_binary_trace_list(path) == RECORDS[:2]

    def test_load_trace_autodetects_binary(self, tmp_path):
        # The generic loader routes *.rtb content through the binary
        # reader without being told; strict/errors knobs only apply to
        # text traces.
        path = str(tmp_path / "anything.dat")
        compile_trace(path, iter(RECORDS))
        assert sniff_binary(path)
        assert load_trace_list(path) == RECORDS

    def test_text_trace_is_not_sniffed_as_binary(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(path, iter(RECORDS))
        assert not sniff_binary(path)

    def test_compiling_a_lenient_text_load_keeps_skip_counts(self, tmp_path):
        # A damaged text trace loaded with strict=False skips bad lines;
        # compiling that stream preserves exactly the surviving records.
        from repro.trace.io import load_trace

        text = str(tmp_path / "damaged.trace")
        save_trace(text, iter(RECORDS))
        with open(text) as handle:
            lines = handle.read().splitlines()
        lines.insert(3, "LOAD not-a-number 0x0")
        lines.append("GIBBERISH")
        with open(text, "w") as handle:
            handle.write("\n".join(lines) + "\n")

        skipped = []
        survivors = list(load_trace(text, strict=False, errors=skipped))
        assert len(skipped) == 2
        assert survivors == RECORDS

        binary = str(tmp_path / "damaged.rtb")
        compile_trace(binary, load_trace(text, strict=False))
        assert load_binary_trace_list(binary) == survivors


class TestHeaderValidation:
    def _write(self, tmp_path, blob):
        path = str(tmp_path / "bad.rtb")
        with open(path, "wb") as handle:
            handle.write(blob)
        return path

    def _compiled(self, tmp_path):
        path = str(tmp_path / "good.rtb")
        compile_trace(path, iter(RECORDS))
        with open(path, "rb") as handle:
            return path, bytearray(handle.read())

    @staticmethod
    def _repack_checksum(blob):
        """Recompute the header CRC after deliberate payload surgery, so
        a test can reach the validation *behind* the checksum gate."""
        import zlib

        struct.pack_into(
            "<I", blob, 12, zlib.crc32(bytes(blob[24:])) & 0xFFFFFFFF
        )

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path, b"NOTATRACE" + b"\x00" * 40)
        with pytest.raises(TraceFormatError, match="expected magic"):
            load_binary_trace_list(path)

    def test_stale_version(self, tmp_path):
        _, blob = self._compiled(tmp_path)
        struct.pack_into("<H", blob, len(MAGIC), VERSION + 1)
        path = self._write(tmp_path, bytes(blob))
        with pytest.raises(TraceFormatError, match="stale"):
            load_binary_trace_list(path)

    def test_truncated_payload_reports_offsets(self, tmp_path):
        path, blob = self._compiled(tmp_path)
        with open(path, "wb") as handle:
            handle.write(bytes(blob[:-5]))
        with pytest.raises(TraceFormatError, match="truncated"):
            load_binary_trace_list(path)

    def test_bitflip_fails_checksum_with_detail(self, tmp_path):
        _, blob = self._compiled(tmp_path)
        blob[30] ^= 0x40  # one bit, mid-payload
        path = self._write(tmp_path, bytes(blob))
        with pytest.raises(
            TraceFormatError, match="checksum .* but payload CRC32"
        ):
            load_binary_trace_list(path)

    def test_unknown_kind_byte(self, tmp_path):
        _, blob = self._compiled(tmp_path)
        blob[24] = 250  # first record's kind: no such InstrKind
        self._repack_checksum(blob)  # get past the CRC gate
        path = self._write(tmp_path, bytes(blob))
        with pytest.raises(
            TraceFormatError, match="record 0 at offset 24.*kind"
        ):
            load_binary_trace_list(path)

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, b"")
        with pytest.raises(TraceFormatError):
            load_binary_trace_list(path)


class TestConcurrentCompile:
    def test_tmp_name_is_unique_per_writer(self, tmp_path, monkeypatch):
        # Regression: the temp file used to be the fixed name
        # ``destination + ".tmp"``, so two processes compiling the same
        # cache entry interleaved writes into one file and renamed a
        # corrupt trace into place.
        seen = []
        real_replace = os.replace

        def spying_replace(src, dst):
            seen.append(src)
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        destination = str(tmp_path / "t.rtb")
        compile_trace(destination, iter(RECORDS))
        compile_trace(destination, iter(RECORDS))
        assert len(seen) == 2
        assert seen[0] != seen[1]
        for tmp in seen:
            assert os.path.basename(tmp).startswith("t.rtb.tmp.")
            assert not os.path.exists(tmp)  # renamed or cleaned up

    def test_failed_compile_cleans_its_tmp(self, tmp_path):
        destination = str(tmp_path / "t.rtb")

        def poisoned():
            yield RECORDS[0]
            raise RuntimeError("generator died mid-compile")

        with pytest.raises(RuntimeError):
            compile_trace(destination, poisoned())
        assert os.listdir(tmp_path) == []

    def test_stale_orphan_tmp_is_swept(self, tmp_path):
        destination = str(tmp_path / "t.rtb")
        orphan = destination + ".tmp.99999.deadbeef"
        with open(orphan, "wb") as handle:
            handle.write(b"half-written")
        old = os.path.getmtime(orphan) - 7200
        os.utime(orphan, (old, old))
        fresh = destination + ".tmp.99999.cafef00d"
        with open(fresh, "wb") as handle:
            handle.write(b"live writer")
        compile_trace(destination, iter(RECORDS))
        assert not os.path.exists(orphan)  # old enough: presumed dead
        assert os.path.exists(fresh)  # young: may be a live compiler
        assert load_binary_trace_list(destination) == RECORDS

    def test_multiprocess_cache_stress(self, tmp_path, monkeypatch):
        # Many processes resolving the same cold cache entry at once:
        # every one must get the exact generator prefix, and no
        # ``.tmp.*`` stragglers may survive.
        import multiprocessing

        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(cache))
        with multiprocessing.Pool(4) as pool:
            lengths = pool.map(_load_cached_len, [("health", 4, 400)] * 8)
        assert lengths == [400] * 8
        records = cached_workload_trace("health", seed=4, instructions=400)
        assert records == list(
            itertools.islice(get_workload("health", seed=4), 400)
        )
        stragglers = [
            name for name in os.listdir(cache) if ".tmp." in name
        ]
        assert stragglers == []


def _load_cached_len(args):
    """Pool worker for the stress test (module-level: must pickle)."""
    name, seed, instructions = args
    return len(
        cached_workload_trace(name, seed=seed, instructions=instructions)
    )


class TestWorkloadCache:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))

    def test_miss_compiles_then_hit_loads(self):
        first = cached_workload_trace("health", seed=2, instructions=300)
        path = cache_path("health", 2, 300)
        assert os.path.exists(path)
        mtime = os.path.getmtime(path)
        again = cached_workload_trace("health", seed=2, instructions=300)
        assert again == first
        assert os.path.getmtime(path) == mtime
        assert first == list(
            itertools.islice(get_workload("health", seed=2), 300)
        )

    def test_corrupt_cache_file_falls_back(self):
        cached_workload_trace("burg", seed=1, instructions=100)
        path = cache_path("burg", 1, 100)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        records = cached_workload_trace("burg", seed=1, instructions=100)
        assert records == list(
            itertools.islice(get_workload("burg", seed=1), 100)
        )

    def test_refresh_recompiles(self):
        cached_workload_trace("sis", seed=1, instructions=50)
        path = cache_path("sis", 1, 50)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        cached_workload_trace("sis", seed=1, instructions=50, refresh=True)
        assert load_binary_trace_list(path) == list(
            itertools.islice(get_workload("sis", seed=1), 50)
        )

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            cached_workload_trace("quake", instructions=10)

    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            cached_workload_trace("health", instructions=0)

    def test_clear_cache(self):
        cached_workload_trace("health", seed=1, instructions=20)
        cached_workload_trace("gs", seed=1, instructions=20)
        assert clear_cache() == 2
        assert clear_cache() == 0
