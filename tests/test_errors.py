"""Tests for the structured exception taxonomy."""

import pickle

import pytest

from repro.errors import (
    ConfigError,
    ReproError,
    RunTimeoutError,
    SimulationError,
    TraceFormatError,
    error_kind,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (ConfigError, TraceFormatError, SimulationError,
                    RunTimeoutError):
            assert issubclass(cls, ReproError)

    def test_timeout_is_a_simulation_error(self):
        assert issubclass(RunTimeoutError, SimulationError)

    def test_input_errors_stay_value_errors(self):
        """Backwards compatibility: callers catching ValueError keep working."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceFormatError, ValueError)

    def test_retryability_split(self):
        assert not ConfigError("x").retryable
        assert not TraceFormatError("x").retryable
        assert SimulationError("x").retryable
        assert RunTimeoutError("x").retryable

    def test_exit_codes(self):
        assert ReproError("x").exit_code == 1


class TestStructuredFields:
    def test_config_error_names_field(self):
        error = ConfigError("bad size", field="CacheConfig.size_bytes")
        assert error.field == "CacheConfig.size_bytes"
        assert "bad size" in str(error)

    def test_trace_format_error_carries_line(self):
        error = TraceFormatError("bad", line_number=7, line="Z z z")
        assert error.line_number == 7
        assert error.line == "Z z z"

    def test_error_kind(self):
        assert error_kind(RunTimeoutError("t")) == "RunTimeoutError"


class TestPickling:
    """Failures must cross the ProcessPoolExecutor boundary intact."""

    @pytest.mark.parametrize(
        "error",
        [
            ReproError("base"),
            ConfigError("bad", field="X.y"),
            TraceFormatError("bad", line_number=3, line="junk"),
            SimulationError("crash"),
            RunTimeoutError("slow"),
        ],
    )
    def test_round_trip(self, error):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)
        assert clone.retryable == error.retryable
        for attr in ("field", "line_number", "line"):
            if hasattr(error, attr):
                assert getattr(clone, attr) == getattr(error, attr)
