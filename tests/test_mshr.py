"""Unit tests for the MSHR file."""

import pytest

from repro.memory.mshr import MshrFile


class TestMshr:
    def test_lookup_absent(self):
        assert MshrFile(4).lookup(0x100) is None

    def test_allocate_and_lookup(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, ready_cycle=50)
        assert mshr.lookup(0x100) == 50
        assert len(mshr) == 1

    def test_duplicate_allocation_rejected(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, 50)
        with pytest.raises(ValueError):
            mshr.allocate(0x100, 60)

    def test_full(self):
        mshr = MshrFile(2)
        mshr.allocate(0x100, 10)
        mshr.allocate(0x200, 20)
        assert mshr.is_full()
        with pytest.raises(ValueError):
            mshr.allocate(0x300, 30)

    def test_merge_counts(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, 50)
        assert mshr.merge(0x100) == 50
        assert mshr.merges == 1

    def test_retire_ready(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, 10)
        mshr.allocate(0x200, 20)
        done = mshr.retire_ready(15)
        assert done == [0x100]
        assert mshr.lookup(0x100) is None
        assert mshr.lookup(0x200) == 20

    def test_earliest_ready(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, 30)
        mshr.allocate(0x200, 20)
        assert mshr.earliest_ready() == 20

    def test_earliest_ready_empty_raises(self):
        with pytest.raises(ValueError):
            MshrFile(4).earliest_ready()

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_in_flight_blocks_is_copy(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, 10)
        snapshot = mshr.in_flight_blocks()
        snapshot.clear()
        assert mshr.lookup(0x100) == 10
