"""Tests for the correlated base-address predictor."""

from repro.predictors.correlated import CorrelatedAddressPredictor


def _object_walk(bases, offset):
    """Addresses of one field across a repeating object sequence."""
    return [base + offset for base in bases]


class TestCorrelatedPredictor:
    def test_learns_repeating_base_sequence(self):
        predictor = CorrelatedAddressPredictor(history_depth=2)
        bases = [0x1000, 0x2300, 0x4100, 0x0800]
        correct_last_round = 0
        for round_index in range(5):
            correct_last_round = sum(
                predictor.train(0x500, address)
                for address in _object_walk(bases, offset=0x10)
            )
        assert correct_last_round >= 3

    def test_correlates_across_offsets(self):
        """Two loads reading different fields of the same objects share
        the base-address history structure."""
        predictor = CorrelatedAddressPredictor(history_depth=2)
        bases = [0x1000, 0x2300, 0x4100, 0x0800]
        for __ in range(4):
            for base in bases:
                predictor.train(0x500, base + 0x10)
        # A different load with another offset but the same base pattern.
        hits = 0
        for __ in range(3):
            for base in bases:
                hits += predictor.train(0x600, base + 0x20)
        assert hits >= 3

    def test_random_stream_low_confidence(self):
        import random

        rng = random.Random(5)
        predictor = CorrelatedAddressPredictor()
        for __ in range(80):
            predictor.train(0x500, rng.randrange(0, 1 << 28))
        assert predictor.confidence_for(0x500) <= 1

    def test_stream_state_walks_pattern(self):
        predictor = CorrelatedAddressPredictor(history_depth=2)
        bases = [0x1000, 0x2300, 0x4100]
        for __ in range(5):
            for base in bases:
                predictor.train(0x500, base)
        state = predictor.make_stream_state(0x500, bases[-1])
        predictions = [predictor.next_prediction(state) for __ in range(3)]
        assert predictions[0] is not None

    def test_no_prediction_with_short_history(self):
        predictor = CorrelatedAddressPredictor(history_depth=4)
        predictor.train(0x500, 0x1000)
        state = predictor.make_stream_state(0x500, 0x1000)
        assert predictor.next_prediction(state) is None

    def test_first_level_capacity(self):
        predictor = CorrelatedAddressPredictor(first_level_entries=2)
        predictor.train(0x100, 0x1000)
        predictor.train(0x200, 0x2000)
        predictor.train(0x300, 0x3000)  # evicts 0x100
        assert predictor.confidence_for(0x100) == 0

    def test_accuracy_statistic_bounds(self):
        predictor = CorrelatedAddressPredictor()
        for i in range(20):
            predictor.train(0x100, 0x1000 * (i % 4))
        assert 0.0 <= predictor.accuracy <= 1.0
