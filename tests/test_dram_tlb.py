"""Unit tests for main memory and the data TLB."""

from repro.config import BusConfig, MemoryConfig, TlbConfig
from repro.memory.bus import Bus
from repro.memory.dram import MainMemory
from repro.memory.tlb import DataTlb


class TestMainMemory:
    def _memory(self):
        bus = Bus(BusConfig(name="L2-Mem", bytes_per_cycle=4))
        return MainMemory(MemoryConfig(access_latency=120), bus), bus

    def test_uncontended_latency(self):
        memory, bus = self._memory()
        # 120-cycle access + 64 bytes at 4 B/cycle = 16-cycle transfer.
        assert memory.access(0, 64) == 136

    def test_bus_contention_serializes(self):
        memory, bus = self._memory()
        first = memory.access(0, 64)
        second = memory.access(0, 64)
        assert first == 136
        assert second == 152  # transfer waits for the bus

    def test_counts_accesses(self):
        memory, __ = self._memory()
        memory.access(0, 64)
        memory.access(10, 64)
        assert memory.accesses == 2


class TestDataTlb:
    def test_first_touch_misses(self):
        tlb = DataTlb(TlbConfig(entries=4, page_size=4096, miss_latency=30))
        __, penalty = tlb.translate(0x1000)
        assert penalty == 30
        __, penalty = tlb.translate(0x1FFF)  # same page
        assert penalty == 0

    def test_identity_mapping(self):
        tlb = DataTlb(TlbConfig())
        physical, __ = tlb.translate(0x12345)
        assert physical == 0x12345

    def test_lru_replacement(self):
        tlb = DataTlb(TlbConfig(entries=2, page_size=4096, miss_latency=30))
        tlb.translate(0x0000)  # page 0
        tlb.translate(0x1000)  # page 1
        tlb.translate(0x0000)  # touch page 0 -> page 1 is LRU
        tlb.translate(0x2000)  # page 2 evicts page 1
        __, penalty = tlb.translate(0x0000)
        assert penalty == 0
        __, penalty = tlb.translate(0x1000)
        assert penalty == 30

    def test_same_page(self):
        tlb = DataTlb(TlbConfig(page_size=4096))
        assert tlb.same_page(0x1000, 0x1FFF)
        assert not tlb.same_page(0x1000, 0x2000)

    def test_miss_rate(self):
        tlb = DataTlb(TlbConfig())
        tlb.translate(0x1000)
        tlb.translate(0x1008)
        assert tlb.miss_rate == 0.5
