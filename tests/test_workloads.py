"""Tests for the benchmark stand-ins (paper's six plus extensions)."""

import itertools

import pytest

from repro.trace.record import InstrKind
from repro.trace.stream import profile
from repro.workloads import (
    PAPER_WORKLOADS,
    WORKLOADS,
    get_workload,
    get_workload_generator,
    workload_names,
)
from repro.workloads.base import Emitter, HeapModel, PcAllocator


class TestHeapModel:
    def test_bump_allocation(self):
        heap = HeapModel(base=0x1000, align=8)
        first = heap.alloc(24)
        second = heap.alloc(24)
        assert first == 0x1000
        assert second == 0x1018
        assert heap.allocated_objects == 2

    def test_arena_wraps(self):
        heap = HeapModel(base=0x1000, arena_bytes=64)
        addresses = [heap.alloc(32) for __ in range(3)]
        assert addresses[2] == addresses[0]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            HeapModel().alloc(0)


class TestPcAllocator:
    def test_sites_are_distinct_and_spaced(self):
        pcs = PcAllocator(base=0x400)
        sites = pcs.sites(4)
        assert sites == [0x400, 0x404, 0x408, 0x40C]


class TestEmitter:
    def test_dependence_distances(self):
        em = Emitter()
        producer = em.index
        em.rec(InstrKind.LOAD, 0x100, addr=0x1000)
        record = em.rec(InstrKind.IALU, 0x104, after=producer)
        assert record.dep1 == 1
        assert record.dep2 == 0

    def test_two_dependences(self):
        em = Emitter()
        a = em.index
        em.rec(InstrKind.LOAD, 0x100, addr=0x1000)
        b = em.index
        em.rec(InstrKind.LOAD, 0x104, addr=0x2000)
        record = em.rec(InstrKind.FMUL, 0x108, after=a, also_after=b)
        assert record.dep1 == 2
        assert record.dep2 == 1


class TestRegistry:
    def test_registered_workloads(self):
        assert workload_names() == [
            "health", "burg", "deltablue", "gs", "sis", "turb3d",
            "many_streams",
        ]

    def test_paper_workloads_are_the_six(self):
        assert PAPER_WORKLOADS == (
            "health", "burg", "deltablue", "gs", "sis", "turb3d",
        )
        assert set(PAPER_WORKLOADS) < set(workload_names())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload_generator("quake")

    def test_descriptions_present(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name
            assert len(cls.description) > 20


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_deterministic_for_same_seed(self, name):
        a = list(itertools.islice(get_workload(name, seed=7), 2000))
        b = list(itertools.islice(get_workload(name, seed=7), 2000))
        assert a == b

    def test_seed_changes_stream(self, name):
        if name == "turb3d":
            pytest.skip("turb3d is a deterministic FP kernel: no seed use")
        a = list(itertools.islice(get_workload(name, seed=1), 2000))
        b = list(itertools.islice(get_workload(name, seed=2), 2000))
        assert a != b

    def test_mix_is_plausible(self, name):
        stats = profile(itertools.islice(get_workload(name), 8000))
        assert 0.10 <= stats["load_fraction"] <= 0.50
        assert 0.01 <= stats["store_fraction"] <= 0.30
        assert 0.03 <= stats["branch_fraction"] <= 0.35

    def test_dependences_point_backwards(self, name):
        for index, record in enumerate(
            itertools.islice(get_workload(name), 5000)
        ):
            assert record.dep1 <= index
            assert record.dep2 <= index

    def test_memory_records_have_addresses(self, name):
        for record in itertools.islice(get_workload(name), 5000):
            if record.is_memory:
                assert record.addr > 0

    def test_scale_shrinks_structures(self, name):
        generator = get_workload_generator(name, scale=0.25)
        assert generator.scale == 0.25
        # The scaled stream must still produce records.
        records = list(itertools.islice(generator.generate(), 500))
        assert len(records) == 500

    def test_rejects_bad_scale(self, name):
        with pytest.raises(ValueError):
            get_workload_generator(name, scale=0)


class TestWorkloadCharacter:
    """Each stand-in must show the access pattern the paper attributes
    to its benchmark (DESIGN.md substitution argument)."""

    @staticmethod
    def _load_stride_fraction(name, count=6000):
        """Fraction of consecutive same-PC loads with a repeated stride."""
        last = {}
        strides = {}
        repeated = 0
        total = 0
        for record in itertools.islice(get_workload(name), count):
            if not record.is_load:
                continue
            if record.pc in last:
                stride = record.addr - last[record.pc]
                if strides.get(record.pc) == stride:
                    repeated += 1
                total += 1
                strides[record.pc] = stride
            last[record.pc] = record.addr
        return repeated / total if total else 0.0

    def test_turb3d_is_stride_dominated(self):
        assert self._load_stride_fraction("turb3d") > 0.8

    def test_health_is_not_stride_dominated(self):
        assert self._load_stride_fraction("health") < 0.4

    def test_health_chase_is_dependent(self):
        chase_deps = 0
        chase_loads = 0
        for record in itertools.islice(get_workload("health"), 4000):
            if record.is_load and record.dep1 > 0:
                chase_deps += 1
            if record.is_load:
                chase_loads += 1
        assert chase_deps / chase_loads > 0.5

    def test_sis_has_many_concurrent_load_pcs(self):
        pcs = set()
        for record in itertools.islice(get_workload("sis"), 4000):
            if record.is_load:
                pcs.add(record.pc)
        assert len(pcs) > 12  # more streams than the 8 stream buffers

    def test_deltablue_reuses_arena_addresses(self):
        generator = get_workload_generator("deltablue")
        seen = set()
        for record in itertools.islice(generator.generate(), 60000):
            if record.is_store:
                seen.add(record.addr)
        assert generator.arena_bytes >= len(seen) * 4  # bounded arena
