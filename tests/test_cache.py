"""Unit tests for the set-associative cache."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import SetAssociativeCache


def _tiny_cache(sets=2, ways=2, block=32):
    return SetAssociativeCache(
        CacheConfig(
            name="tiny",
            size_bytes=sets * ways * block,
            associativity=ways,
            block_size=block,
            hit_latency=1,
        )
    )


class TestLookup:
    def test_miss_then_hit_after_insert(self):
        cache = _tiny_cache()
        assert not cache.access(0x100)
        cache.insert(0x100)
        assert cache.access(0x100)

    def test_same_block_aliases(self):
        cache = _tiny_cache()
        cache.insert(0x100)
        assert cache.access(0x11F)  # same 32-byte block
        assert not cache.access(0x120)  # next block

    def test_probe_does_not_count(self):
        cache = _tiny_cache()
        cache.insert(0x100)
        cache.probe(0x100)
        assert cache.accesses == 0


class TestReplacement:
    def test_lru_eviction(self):
        cache = _tiny_cache(sets=1, ways=2)
        cache.insert(0x000)
        cache.insert(0x020)
        cache.access(0x000)  # touch: 0x020 becomes LRU
        victim = cache.insert(0x040)
        assert victim == (0x020, False)
        assert cache.probe(0x000)
        assert not cache.probe(0x020)

    def test_insert_existing_refreshes_without_eviction(self):
        cache = _tiny_cache(sets=1, ways=2)
        cache.insert(0x000)
        cache.insert(0x020)
        assert cache.insert(0x000) is None
        victim = cache.insert(0x040)
        assert victim == (0x020, False)

    def test_blocks_map_to_distinct_sets(self):
        cache = _tiny_cache(sets=2, ways=1)
        cache.insert(0x000)  # set 0
        cache.insert(0x020)  # set 1
        assert cache.probe(0x000)
        assert cache.probe(0x020)
        assert cache.resident_blocks == 2


class TestDirtyState:
    def test_store_marks_dirty(self):
        cache = _tiny_cache(sets=1, ways=1)
        cache.insert(0x000)
        cache.access(0x000, is_store=True)
        victim = cache.insert(0x020)
        assert victim == (0x000, True)
        assert cache.dirty_evictions == 1

    def test_insert_dirty(self):
        cache = _tiny_cache(sets=1, ways=1)
        cache.insert(0x000, dirty=True)
        victim = cache.insert(0x020)
        assert victim == (0x000, True)

    def test_mark_dirty_absent_block(self):
        cache = _tiny_cache()
        assert not cache.mark_dirty(0x500)

    def test_invalidate(self):
        cache = _tiny_cache()
        cache.insert(0x100)
        assert cache.invalidate(0x100)
        assert not cache.invalidate(0x100)
        assert not cache.probe(0x100)


class TestStats:
    def test_miss_rate(self):
        cache = _tiny_cache()
        cache.access(0x000)  # miss
        cache.insert(0x000)
        cache.access(0x000)  # hit
        cache.access(0x000)  # hit
        assert cache.accesses == 3
        assert cache.misses == 1
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_reset_stats_keeps_contents(self):
        cache = _tiny_cache()
        cache.insert(0x100)
        cache.access(0x100)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.probe(0x100)
