"""Unit tests for the memory hierarchy's timing and accounting."""

from repro.config import SimConfig
from repro.memory.hierarchy import MemoryHierarchy, PrefetcherPort


def _hierarchy():
    return MemoryHierarchy(SimConfig())


class TestDemandPath:
    def test_l1_hit_latency(self):
        h = _hierarchy()
        h.l1.insert(0x1000)
        result = h.access(0x100, 0x1000, cycle=10)
        assert result.complete_cycle == 11
        assert result.served_by == "l1"
        assert not result.l1_miss

    def test_l2_hit_path_latency(self):
        h = _hierarchy()
        h.l2.insert(0x1000)
        result = h.access(0x100, 0x1000, cycle=0)
        assert result.l1_miss
        assert result.served_by == "l2"
        # request (>=1 bus cycle) + 12-cycle L2 + 4-cycle refill transfer.
        assert 15 <= result.complete_cycle <= 25

    def test_memory_path_latency(self):
        h = _hierarchy()
        result = h.access(0x100, 0x1000, cycle=0)
        assert result.served_by == "mem"
        assert result.complete_cycle >= 120

    def test_block_resident_after_fill(self):
        h = _hierarchy()
        first = h.access(0x100, 0x1000, cycle=0)
        second = h.access(0x100, 0x1000, cycle=first.complete_cycle + 1)
        assert not second.l1_miss

    def test_inflight_merge_counts_as_miss(self):
        """Section 6: accesses to in-flight data count as cache misses."""
        h = _hierarchy()
        first = h.access(0x100, 0x1000, cycle=0)
        merged = h.access(0x104, 0x1008, cycle=1)  # same block, in flight
        assert merged.l1_miss
        assert merged.served_by == "inflight"
        assert merged.complete_cycle >= first.complete_cycle
        assert h.l1_mshr.merges == 1

    def test_merged_misses_do_not_train(self):
        trained = []

        class Spy(PrefetcherPort):
            def on_l1_miss(self, pc, addr, cycle, sb_hit):
                trained.append(addr)

        h = _hierarchy()
        h.prefetcher = Spy()
        h.access(0x100, 0x1000, cycle=0)
        h.access(0x104, 0x1008, cycle=1)
        assert trained == [0x1000]

    def test_store_misses_do_not_train(self):
        trained = []

        class Spy(PrefetcherPort):
            def on_l1_miss(self, pc, addr, cycle, sb_hit):
                trained.append(addr)

        h = _hierarchy()
        h.access(0x100, 0x2000, cycle=0, is_store=True)
        h.prefetcher = Spy()
        h.access(0x104, 0x3000, cycle=500, is_store=True)
        assert trained == []

    def test_miss_rate_accounting(self):
        h = _hierarchy()
        h.access(0x100, 0x1000, cycle=0)
        h.access(0x100, 0x1000, cycle=1000)
        assert h.demand_accesses == 2
        assert h.demand_misses == 1
        assert h.demand_miss_rate == 0.5


class TestStreamBufferInteraction:
    def test_sb_ready_hit_fast_path(self):
        class ReadyBuffer(PrefetcherPort):
            def probe(self, block_addr, cycle):
                return cycle - 5  # data already waiting

        h = _hierarchy()
        h.prefetcher = ReadyBuffer()
        result = h.access(0x100, 0x1000, cycle=100)
        assert result.served_by == "sb"
        assert result.complete_cycle == 101  # same as an L1 hit
        assert result.l1_miss  # still a miss by the paper's accounting
        assert h.sb_hits == 1

    def test_sb_pending_hit_waits_for_data(self):
        class PendingBuffer(PrefetcherPort):
            def probe(self, block_addr, cycle):
                return cycle + 40

        h = _hierarchy()
        h.prefetcher = PendingBuffer()
        result = h.access(0x100, 0x1000, cycle=100)
        assert result.served_by == "sb-pending"
        assert result.complete_cycle == 140
        assert h.sb_pending_hits == 1

    def test_sb_hit_block_moves_into_l1(self):
        class ReadyBuffer(PrefetcherPort):
            def probe(self, block_addr, cycle):
                return cycle

        h = _hierarchy()
        h.prefetcher = ReadyBuffer()
        h.access(0x100, 0x1000, cycle=100)
        h.prefetcher = PrefetcherPort()  # detach
        follow_up = h.access(0x100, 0x1000, cycle=200)
        assert not follow_up.l1_miss


class TestPrefetchPath:
    def test_prefetch_returns_ready_cycle(self):
        h = _hierarchy()
        h.l2.insert(0x4000)
        ready = h.issue_prefetch(0x4000, cycle=0)
        assert ready is not None
        assert 15 <= ready <= 60  # L2 hit path plus a possible TLB walk
        assert h.prefetches_issued == 1

    def test_redundant_prefetch_still_issues(self):
        h = _hierarchy()
        h.l1.insert(0x4000)
        ready = h.issue_prefetch(0x4000, cycle=0)
        assert ready is not None
        assert h.prefetches_redundant == 1

    def test_can_prefetch_tracks_bus(self):
        h = _hierarchy()
        assert h.can_prefetch(0)
        h.l1_l2_bus.acquire(0, 32)
        assert not h.can_prefetch(0)
        assert h.can_prefetch(10)


class TestWriteback:
    def test_dirty_l1_eviction_uses_bus(self):
        h = _hierarchy()
        l1 = h.l1
        # Fill one set with dirty blocks, then force an eviction via fills.
        base = 0x10000
        step = l1.block_size * l1.num_sets  # same set, different tags
        for way in range(l1.associativity):
            l1.insert(base + way * step, dirty=True)
        before = h.l1_l2_bus.busy_cycles
        import heapq

        heapq.heappush(h._l1_fills, (0, base + l1.associativity * step, False))
        h.drain(0)
        assert h.l1_l2_bus.busy_cycles > before

    def test_reset_stats(self):
        h = _hierarchy()
        h.access(0x100, 0x1000, cycle=0)
        h.reset_stats()
        assert h.demand_accesses == 0
        assert h.l1.accesses == 0
        assert h.l1_l2_bus.busy_cycles == 0
