"""Unit tests for the order-k context predictor."""

import pytest

from repro.predictors.context import ContextPredictor


class TestContextPredictor:
    def test_learns_order2_pattern(self):
        predictor = ContextPredictor(order=2)
        sequence = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        results = [predictor.train(0, a) for a in sequence]
        assert any(results[3:])  # predicted correctly after one period

    def test_order1_equivalent_to_markov(self):
        predictor = ContextPredictor(order=1)
        for __ in range(3):
            for address in (10, 20, 30):
                predictor.train(0, address)
        state = predictor.make_stream_state(0, 10)
        assert predictor.next_prediction(state) == 20

    def test_higher_order_disambiguates(self):
        """Order-2 can tell 'A B -> C' from 'X B -> Y'; order-1 cannot."""
        order2 = ContextPredictor(order=2)
        sequence = [1, 2, 3, 9, 2, 7] * 6
        hits2 = sum(order2.train(0, a) for a in sequence[12:])
        order1 = ContextPredictor(order=1)
        hits1 = sum(order1.train(0, a) for a in sequence[12:])
        assert hits2 > hits1

    def test_stream_state_walks_pattern(self):
        predictor = ContextPredictor(order=2)
        pattern = [5, 6, 7, 8]
        for __ in range(4):
            for address in pattern:
                predictor.train(0, address)
        state = predictor.make_stream_state(0, 8)  # history now [..., 8]
        first = predictor.next_prediction(state)
        second = predictor.next_prediction(state)
        assert first == 5
        assert second == 6

    def test_no_prediction_with_short_history(self):
        predictor = ContextPredictor(order=3)
        predictor.train(0, 1)
        state = predictor.make_stream_state(0, 1)
        state.history = [1]
        assert predictor.next_prediction(state) is None

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ContextPredictor(order=0)

    def test_accuracy_and_coverage_bounds(self):
        predictor = ContextPredictor(order=1)
        for __ in range(5):
            for address in (10, 20, 30):
                predictor.train(0, address)
        assert 0.0 <= predictor.accuracy <= 1.0
        assert 0.0 <= predictor.coverage <= 1.0
