"""Matched-pair sampled comparisons (repro.sampling.paired).

The paired driver exists to kill the cold-start bias of sampled
*comparisons*: every leg must see the identical record sequence and the
identical window grid, so the fast-forward bias cancels in the
per-window IPC ratios.  These tests pin that contract — grid identity,
determinism, snapshot/resume bit-identity — plus the acceptance
property the PR was built for: at trace scale the paired relative-IPC
error beats the classic unpaired absolute error on the workload where
window placement hurts most (health).
"""

import pytest

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.sampling import (
    PairedResult,
    paired_from_results,
    resume_sampled,
    run_paired,
)
from repro.sim.presets import baseline_config, psb_config
from repro.sim.simulator import Simulator
from repro.sim.sweep import paired_sweep
from repro.workloads import cached_workload_trace


def _sampled(config: SimConfig, period=40_000, window=1_000, warmup=500):
    return config.with_sampling(period=period, window=window, warmup=warmup)


def _health(instructions=120_000):
    return cached_workload_trace("health", seed=1, instructions=instructions)


class TestSharedGrid:
    def test_every_leg_measures_the_same_windows(self):
        paired = run_paired(
            {"base": _sampled(baseline_config()),
             "psb": _sampled(psb_config())},
            _health(),
            max_instructions=120_000,
            baseline="base",
        )
        base_rows = paired.window_rows["base"]
        psb_rows = paired.window_rows["psb"]
        assert len(base_rows) == len(psb_rows) == 3
        for left, right in zip(base_rows, psb_rows):
            # Same placement, same measured span — only timing differs.
            assert left["start_record"] == right["start_record"]
            assert left["instructions"] == right["instructions"]
        assert paired.pairs["psb"].windows == 3
        assert paired.pairs["psb"].rel_ipc > 0

    def test_mismatched_sampling_shapes_are_rejected(self):
        with pytest.raises(SimulationError,
                           match="share one SamplingConfig"):
            run_paired(
                {"base": _sampled(baseline_config()),
                 "psb": _sampled(psb_config(), window=2_000)},
                _health(),
                max_instructions=120_000,
            )

    def test_single_leg_is_rejected(self):
        with pytest.raises(SimulationError, match="at least two"):
            run_paired(
                {"psb": _sampled(psb_config())},
                _health(),
                max_instructions=120_000,
            )


class TestDeterminism:
    def test_paired_run_is_bit_identical_across_invocations(self):
        def go():
            return run_paired(
                {"base": _sampled(baseline_config()),
                 "psb": _sampled(psb_config())},
                _health(),
                max_instructions=120_000,
                baseline="base",
            )

        first, second = go(), go()
        assert first.to_dict() == second.to_dict()

    def test_round_trips_through_dict(self):
        paired = run_paired(
            {"base": _sampled(baseline_config()),
             "psb": _sampled(psb_config())},
            _health(),
            max_instructions=120_000,
            baseline="base",
        )
        clone = PairedResult.from_dict(paired.to_dict())
        assert clone.to_dict() == paired.to_dict()
        assert clone.pairs["psb"] == paired.pairs["psb"]

    def test_paired_sweep_delegates(self):
        paired = paired_sweep(
            {"base": _sampled(baseline_config()),
             "psb": _sampled(psb_config())},
            lambda: iter(_health()),
            max_instructions=120_000,
            baseline="base",
        )
        assert sorted(paired.results) == ["base", "psb"]
        assert paired.baseline == "base"


class TestSnapshotResume:
    def test_resumed_legs_stitch_bit_identically(self):
        records = _health()
        snapshots = {}

        def sink(label, snapshot):
            snapshots.setdefault(label, []).append(snapshot)

        uninterrupted = run_paired(
            {"base": _sampled(baseline_config()),
             "psb": _sampled(psb_config())},
            records,
            max_instructions=120_000,
            baseline="base",
            # In detailed cycles: the sampled clock only advances inside
            # measured windows, so 1_000 fires at each period boundary.
            snapshot_every=1_000,
            snapshot_sink=sink,
        )
        assert sorted(snapshots) == ["base", "psb"]

        results, window_rows = {}, {}
        for label in ("base", "psb"):
            rows = []
            resumed = resume_sampled(
                snapshots[label][0], iter(records), window_sink=rows
            )
            # Resume stamps provenance; strip it before the comparison —
            # everything else must match the uninterrupted leg exactly.
            resumed.extra.pop("resumed_from_cycle")
            results[label] = resumed
            window_rows[label] = rows
        restitched = paired_from_results(
            results, window_rows, baseline="base"
        )
        assert restitched.to_dict() == uninterrupted.to_dict()


@pytest.mark.slow
class TestAcceptance1M:
    def test_paired_error_beats_unpaired_on_health(self):
        """The tentpole acceptance property, at trace scale.

        On health the classic sampled estimate lands its windows on a
        phase the whole trace does not represent; pairing the legs on
        one grid cancels the shared bias.  The paired relative-IPC
        error must land within the benchmark gate (5%) and strictly
        beat the classic absolute error.
        """
        instructions = 1_000_000
        records = cached_workload_trace(
            "health", seed=1, instructions=instructions
        )
        det_psb = Simulator(psb_config()).run(
            records, max_instructions=instructions
        )
        det_base = Simulator(baseline_config()).run(
            records, max_instructions=instructions
        )
        unpaired = Simulator(
            psb_config().with_sampling(
                period=50_000, window=1_000, warmup=500
            )
        ).run(records, max_instructions=instructions)
        paired = run_paired(
            {
                "base": baseline_config().with_sampling(
                    period=50_000, window=4_000, warmup=1_000
                ),
                "psb": psb_config().with_sampling(
                    period=50_000, window=4_000, warmup=1_000
                ),
            },
            records,
            max_instructions=instructions,
            baseline="base",
        )
        unpaired_err = abs(unpaired.ipc - det_psb.ipc) / det_psb.ipc
        det_rel = det_psb.ipc / det_base.ipc
        paired_err = (
            abs(paired.pairs["psb"].rel_ipc - det_rel) / det_rel
        )
        assert paired_err <= 0.05
        assert paired_err < unpaired_err
