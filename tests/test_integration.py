"""End-to-end integration tests: the paper's qualitative claims, small.

These use short runs (seconds, not minutes); the full-size reproductions
live in benchmarks/.
"""

import pytest

from repro.config import (
    AllocationPolicy,
    DisambiguationPolicy,
    SchedulingPolicy,
)
from repro.sim import baseline_config, psb_config, simulate, stride_config
from repro.workloads import get_workload

RUN = dict(max_instructions=40_000, warmup_instructions=15_000)


@pytest.fixture(scope="module")
def health_results():
    base = simulate(baseline_config(), get_workload("health"), **RUN)
    stride = simulate(stride_config(), get_workload("health"), **RUN)
    psb = simulate(psb_config(), get_workload("health"), **RUN)
    return base, stride, psb


class TestPointerChasing:
    def test_psb_beats_no_prefetching(self, health_results):
        base, __, psb = health_results
        assert psb.speedup_over(base) > 15.0

    def test_psb_beats_stride_on_pointer_code(self, health_results):
        """The paper's headline: PSB outruns PC-stride stream buffers on
        pointer-intensive programs."""
        base, stride, psb = health_results
        assert psb.speedup_over(base) > stride.speedup_over(base) + 10.0

    def test_prefetching_cuts_load_latency(self, health_results):
        base, __, psb = health_results
        assert psb.avg_load_latency < base.avg_load_latency

    def test_prefetching_raises_bus_utilization(self, health_results):
        base, __, psb = health_results
        assert psb.l1_l2_bus_utilization > base.l1_l2_bus_utilization


class TestStrideCode:
    def test_stride_and_psb_comparable_on_fortran(self):
        base = simulate(baseline_config(), get_workload("turb3d"), **RUN)
        stride = simulate(stride_config(), get_workload("turb3d"), **RUN)
        psb = simulate(psb_config(), get_workload("turb3d"), **RUN)
        stride_gain = stride.speedup_over(base)
        psb_gain = psb.speedup_over(base)
        assert stride_gain > 5.0
        assert abs(psb_gain - stride_gain) < 15.0


class TestConfidenceOnSis:
    def test_confidence_raises_accuracy_under_thrashing(self):
        """Section 6: without confidence, sis thrashes and accuracy drops."""
        two_miss = simulate(
            psb_config(AllocationPolicy.TWO_MISS, SchedulingPolicy.ROUND_ROBIN),
            get_workload("sis"), **RUN,
        )
        confident = simulate(
            psb_config(AllocationPolicy.CONFIDENCE, SchedulingPolicy.PRIORITY),
            get_workload("sis"), **RUN,
        )
        assert confident.prefetch_accuracy > 1.3 * two_miss.prefetch_accuracy

    def test_confidence_cuts_wasted_bus_traffic(self):
        two_miss = simulate(
            psb_config(AllocationPolicy.TWO_MISS, SchedulingPolicy.ROUND_ROBIN),
            get_workload("sis"), **RUN,
        )
        confident = simulate(
            psb_config(AllocationPolicy.CONFIDENCE, SchedulingPolicy.PRIORITY),
            get_workload("sis"), **RUN,
        )
        assert confident.l1_l2_bus_utilization < two_miss.l1_l2_bus_utilization


class TestDisambiguation:
    def test_perfect_store_sets_help_baseline(self):
        perfect = simulate(baseline_config(), get_workload("deltablue"), **RUN)
        nodis = simulate(
            baseline_config().with_disambiguation(
                DisambiguationPolicy.NO_DISAMBIGUATION
            ),
            get_workload("deltablue"), **RUN,
        )
        assert perfect.ipc >= nodis.ipc


class TestCacheSizeInsensitivity:
    def test_speedup_holds_across_l1_geometries(self):
        """Figure 10: PSB speedup is roughly cache-size independent."""
        gains = []
        for size, ways in [(16 * 1024, 4), (32 * 1024, 4)]:
            base = simulate(
                baseline_config().with_l1(size, ways),
                get_workload("health"), **RUN,
            )
            psb = simulate(
                psb_config().with_l1(size, ways), get_workload("health"), **RUN
            )
            gains.append(psb.speedup_over(base))
        assert all(gain > 10.0 for gain in gains)
