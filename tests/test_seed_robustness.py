"""The headline shapes must hold across workload seeds, not just seed 1."""

import pytest

from repro.sim import baseline_config, psb_config, simulate, stride_config
from repro.workloads import get_workload

RUN = dict(max_instructions=40_000, warmup_instructions=15_000)


@pytest.mark.parametrize("seed", [2, 5])
class TestSeedRobustness:
    def test_psb_beats_stride_on_health(self, seed):
        base = simulate(baseline_config(), get_workload("health", seed=seed), **RUN)
        stride = simulate(stride_config(), get_workload("health", seed=seed), **RUN)
        psb = simulate(psb_config(), get_workload("health", seed=seed), **RUN)
        assert psb.speedup_over(base) > stride.speedup_over(base) + 10.0

    def test_stride_and_psb_comparable_on_turb3d(self, seed):
        base = simulate(baseline_config(), get_workload("turb3d", seed=seed), **RUN)
        stride = simulate(stride_config(), get_workload("turb3d", seed=seed), **RUN)
        psb = simulate(psb_config(), get_workload("turb3d", seed=seed), **RUN)
        assert abs(psb.speedup_over(base) - stride.speedup_over(base)) < 15.0
