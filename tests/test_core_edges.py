"""Edge-case tests for the out-of-order core."""

from repro.config import CoreConfig, SimConfig
from repro.cpu.core import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import InstrKind, TraceRecord


def _run(records, core_config=None, **kwargs):
    sim_config = SimConfig()
    hierarchy = MemoryHierarchy(sim_config)
    core = OutOfOrderCore(core_config or sim_config.core, hierarchy)
    return core.run(records, **kwargs), core, hierarchy


class TestEmptyAndTiny:
    def test_empty_trace(self):
        stats, __, __ = _run([])
        assert stats.retired == 0
        assert stats.ipc == 0.0

    def test_single_instruction(self):
        stats, __, __ = _run([TraceRecord(InstrKind.IALU, 0x1000)])
        assert stats.retired == 1

    def test_zero_max_instructions(self):
        stats, __, __ = _run(
            [TraceRecord(InstrKind.IALU, 0x1000)] * 10, max_instructions=0
        )
        assert stats.retired == 0


class TestLsqPressure:
    def test_lsq_full_blocks_memory_dispatch(self):
        """With a 2-entry LSQ, a long-latency load blocks further memory
        operations from dispatching until it retires."""
        config = CoreConfig(lsq_entries=2)
        records = [
            TraceRecord(InstrKind.LOAD, 0x1000 + 4 * i, addr=0x100000 + i * 4096)
            for i in range(8)
        ]
        small, __, __ = _run(records, core_config=config)
        big, __, __ = _run(records, core_config=CoreConfig(lsq_entries=64))
        assert small.cycles > big.cycles

    def test_non_memory_work_proceeds_past_full_lsq(self):
        """ALU work after a blocked memory op can still dispatch only if
        it is fetched before the blocked record — fetch is in-order."""
        config = CoreConfig(lsq_entries=1)
        records = [
            TraceRecord(InstrKind.LOAD, 0x1000, addr=0x100000),
            TraceRecord(InstrKind.LOAD, 0x1004, addr=0x200000),
        ] + [TraceRecord(InstrKind.IALU, 0x2000)] * 10
        stats, __, __ = _run(records, core_config=config)
        assert stats.retired == 12


class TestBranchFetchCap:
    def test_more_than_two_branches_split_across_cycles(self):
        """Only two branch predictions per fetch cycle (Section 5.1)."""
        branches = [
            TraceRecord(InstrKind.BRANCH, 0x1000 + 4 * i, taken=True)
            for i in range(400)
        ]
        stats, __, __ = _run(branches)
        # 400 predictable branches at 2 per cycle need >= 200 cycles.
        assert stats.cycles >= 200

    def test_alu_heavy_code_not_branch_capped(self):
        records = []
        for i in range(200):
            records.extend(
                TraceRecord(InstrKind.IALU, 0x1000 + 4 * j) for j in range(7)
            )
            records.append(TraceRecord(InstrKind.BRANCH, 0x3000, taken=True))
        stats, __, __ = _run(records)
        assert stats.ipc > 4.0


class TestDividerContention:
    def test_two_dividers_limit_throughput(self):
        """2 unpipelined 12-cycle dividers -> at most one IDIV per 6
        cycles of steady state."""
        records = [
            TraceRecord(InstrKind.IDIV, 0x1000 + 4 * i) for i in range(100)
        ]
        stats, __, __ = _run(records)
        assert stats.cycles >= 100 / 2 * 12 * 0.8

    def test_mults_unaffected_by_div_latency(self):
        records = [
            TraceRecord(InstrKind.IMUL, 0x1000 + 4 * i) for i in range(100)
        ]
        stats, __, __ = _run(records)
        assert stats.cycles < 100


class TestWarmupEdges:
    def test_warmup_equal_to_trace_length(self):
        records = [TraceRecord(InstrKind.IALU, 0x1000)] * 50
        stats, __, __ = _run(records, warmup_instructions=50)
        assert stats.retired == 0

    def test_warmup_larger_than_trace(self):
        records = [TraceRecord(InstrKind.IALU, 0x1000)] * 50
        stats, __, __ = _run(records, warmup_instructions=500)
        # Warm-up never completes; the stats window is the whole run.
        assert stats.retired == 50


class TestDependenceEdges:
    def test_dependence_on_retired_instruction_is_satisfied(self):
        records = [TraceRecord(InstrKind.IALU, 0x1000)] * 300
        records.append(TraceRecord(InstrKind.IALU, 0x2000, dep1=300))
        stats, __, __ = _run(records)
        assert stats.retired == 301

    def test_dep_distance_beyond_trace_start_ignored(self):
        records = [TraceRecord(InstrKind.IALU, 0x1000, dep1=50, dep2=99)]
        stats, __, __ = _run(records)
        assert stats.retired == 1

    def test_duplicate_deps_counted_once(self):
        records = [
            TraceRecord(InstrKind.LOAD, 0x1000, addr=0x100000),
            TraceRecord(InstrKind.IALU, 0x1004, dep1=1, dep2=1),
        ]
        stats, __, __ = _run(records)
        assert stats.retired == 2


class TestStoreHeavyCode:
    def test_store_burst_completes(self):
        records = [
            TraceRecord(InstrKind.STORE, 0x1000 + 4 * i, addr=0x100000 + i * 8)
            for i in range(300)
        ]
        stats, __, hierarchy = _run(records)
        assert stats.retired == 300
        assert stats.stores == 300
        assert hierarchy.demand_accesses == 300

    def test_forwarding_chain(self):
        """Store -> load -> store -> load on one word all forward."""
        records = []
        for i in range(10):
            records.append(
                TraceRecord(InstrKind.STORE, 0x1000, addr=0x8000, dep1=1 if i else 0)
            )
            records.append(TraceRecord(InstrKind.LOAD, 0x1004, addr=0x8000))
        stats, __, __ = _run(records)
        assert stats.forwarded_loads == 10
