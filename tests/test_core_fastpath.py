"""Event-driven fast path vs. cycle stepping: bit-identical, always.

The fast path (``SimConfig.event_driven``) may only change *when* the
core's clock advances, never *what* any cycle does.  These tests pin
that contract for every registered workload: identical
``SimulationResult`` fields, identical golden-model verdicts, identical
behaviour under full invariant checking, and identical mid-run
snapshots (same cycle, same records consumed, and a snapshot taken in
one mode resumes to the other mode's final answer).
"""

import dataclasses
import itertools

import pytest

from repro.config import InvariantLevel
from repro.integrity import golden_check, run_golden
from repro.integrity.snapshot import resume_run
from repro.sim import Simulator, baseline_config, paper_configs
from repro.workloads import get_workload, workload_names

N = 6_000


def _records(name, count):
    return list(itertools.islice(get_workload(name, seed=1), count))


def _run(config, records, warmup, snapshot_every=None, snapshot_sink=None):
    return Simulator(config).run(
        iter(records),
        max_instructions=N,
        warmup_instructions=warmup,
        snapshot_every=snapshot_every,
        snapshot_sink=snapshot_sink,
    )


def _pair(config, records, warmup=N // 3, **kwargs):
    """(stepped result, event result) on the same records."""
    stepped = _run(config.with_event_driven(False), records, warmup, **kwargs)
    event = _run(config.with_event_driven(True), records, warmup, **kwargs)
    return stepped, event


def _assert_identical(stepped, event):
    assert dataclasses.asdict(stepped) == dataclasses.asdict(event)


class TestEquivalencePerWorkload:
    @pytest.mark.parametrize("name", workload_names())
    def test_baseline_machine(self, name):
        records = _records(name, N * 2)
        _assert_identical(*_pair(baseline_config(), records))

    @pytest.mark.parametrize("name", workload_names())
    def test_psb_machine_with_full_invariants(self, name):
        # The paper's stream-buffer machine, with every invariant sweep
        # enabled: the checker observes identical machine states in
        # both modes, and neither run trips it.
        config = paper_configs()["ConfAlloc-Priority"].with_invariants(
            InvariantLevel.FULL
        )
        records = _records(name, N * 2)
        stepped, event = _pair(config, records)
        _assert_identical(stepped, event)
        assert event.extra["invariant_checks"] > 0

    @pytest.mark.parametrize("name", workload_names())
    def test_golden_check_agrees(self, name):
        # Golden-model validation needs warmup 0 (reset discards events
        # the functional model counts).
        records = _records(name, N * 2)
        golden = run_golden(baseline_config(), iter(records), N)
        stepped, event = _pair(baseline_config(), records, warmup=0)
        _assert_identical(stepped, event)
        for result in (stepped, event):
            report = golden_check(result, golden, warmup_instructions=0)
            assert report.ok, report.summary()
        assert golden_check(stepped, golden).timed_miss_rate == golden_check(
            event, golden
        ).timed_miss_rate


class TestSnapshotEquivalence:
    @pytest.mark.parametrize("name", ["health", "turb3d"])
    def test_snapshots_align_and_resume_across_modes(self, name):
        records = _records(name, N * 2)
        config = baseline_config()
        every = 2_000

        taken = {}
        for mode in (False, True):
            snaps = []
            taken[mode] = snaps
            _run(
                config.with_event_driven(mode),
                records,
                warmup=0,
                snapshot_every=every,
                snapshot_sink=snaps.append,
            )
        stepped_snaps, event_snaps = taken[False], taken[True]
        assert len(stepped_snaps) == len(event_snaps) > 0
        for left, right in zip(stepped_snaps, event_snaps):
            assert left.cycle == right.cycle
            assert left.cycle % every == 0
            assert left.records_consumed == right.records_consumed

        # A mid-run event-mode snapshot resumes to the same final
        # result an uninterrupted stepped run produces, and vice versa.
        stepped_full = _run(config.with_event_driven(False), records, 0)
        event_full = _run(config.with_event_driven(True), records, 0)
        _assert_identical(stepped_full, event_full)
        middle = len(event_snaps) // 2
        for snapshot in (event_snaps[middle], stepped_snaps[middle]):
            resumed = resume_run(snapshot, iter(records))
            resumed.extra.pop("resumed_from_cycle")
            _assert_identical(stepped_full, resumed)
