"""Tests for the Jouppi-FIFO vs. Farkas-associative lookup knob, and the
non-overlapping-streams check (Section 3.3.2)."""

from dataclasses import replace

from repro.config import (
    AllocationPolicy,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim import psb_config
from repro.sim.simulator import Simulator
from repro.streambuf.controller import SequentialPredictor, StreamBufferController
from repro.workloads import get_workload

BLOCK = 32


def _controller(**overrides):
    config = StreamBufferConfig(
        allocation=AllocationPolicy.ALWAYS,
        scheduling=SchedulingPolicy.ROUND_ROBIN,
        **overrides,
    )
    controller = StreamBufferController(config, SequentialPredictor(BLOCK), BLOCK)
    controller.attach(MemoryHierarchy(SimConfig()))
    return controller


def _fill_stream(controller, base=0x8000, cycles=400):
    controller.on_l1_miss(0x100, base, 0, sb_hit=False)
    for cycle in range(1, cycles):
        controller.tick(cycle)


class TestFifoLookup:
    def test_associative_matches_any_entry(self):
        controller = _controller(associative_lookup=True)
        _fill_stream(controller)
        # The third block ahead is matchable even out of order.
        assert controller.probe(0x8000 + 3 * BLOCK, 400) is not None

    def test_fifo_matches_only_head(self):
        controller = _controller(associative_lookup=False)
        _fill_stream(controller)
        assert controller.probe(0x8000 + 3 * BLOCK, 400) is None
        assert controller.probe(0x8000 + 1 * BLOCK, 401) is not None

    def test_fifo_in_order_consumption_works(self):
        controller = _controller(associative_lookup=False)
        _fill_stream(controller)
        for i in range(1, 4):
            assert controller.probe(0x8000 + i * BLOCK, 400 + i) is not None

    def test_fifo_machine_still_speeds_up_sequential_code(self):
        """End to end: FIFO lookup is sufficient for in-order streams but
        must not beat the associative lookup."""
        run = dict(max_instructions=20_000, warmup_instructions=8_000)
        associative = Simulator(psb_config()).run(
            get_workload("health"), **run
        )
        fifo_config = psb_config()
        stream_buffers = replace(
            fifo_config.prefetch.stream_buffers, associative_lookup=False
        )
        fifo_config = fifo_config.with_prefetcher(
            replace(fifo_config.prefetch, stream_buffers=stream_buffers)
        )
        fifo = Simulator(fifo_config).run(get_workload("health"), **run)
        assert fifo.ipc <= associative.ipc + 0.02


class TestOverlapCheck:
    def test_enabled_drops_duplicate_predictions(self):
        controller = _controller(check_overlap=True)
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.on_l1_miss(0x200, 0x8000 + BLOCK, 0, sb_hit=False)
        for cycle in range(1, 15):
            controller.tick(cycle)
        assert controller.duplicate_predictions >= 1

    def test_disabled_allows_overlapping_streams(self):
        controller = _controller(check_overlap=False)
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.on_l1_miss(0x200, 0x8000 + BLOCK, 0, sb_hit=False)
        for cycle in range(1, 15):
            controller.tick(cycle)
        assert controller.duplicate_predictions == 0
        blocks = [
            entry.block
            for buffer in controller.buffers
            for entry in buffer.entries
            if entry.occupied
        ]
        assert len(blocks) != len(set(blocks))  # duplicates exist
