"""Unit tests for stream buffers and their entries."""

from repro.predictors.base import StreamState
from repro.streambuf.buffer import EntryState, StreamBuffer, StreamBufferEntry


def _buffer(index=0, entries=4, priority_max=12):
    return StreamBuffer(index, entries, priority_max)


class TestEntryLifecycle:
    def test_initially_free(self):
        entry = StreamBufferEntry()
        assert entry.state == EntryState.FREE
        assert not entry.occupied

    def test_prediction_then_flight_then_ready(self):
        entry = StreamBufferEntry()
        entry.hold_prediction(0x1000, cycle=5)
        assert entry.state == EntryState.PREDICTED
        entry.mark_in_flight(ready_cycle=40)
        assert entry.state == EntryState.IN_FLIGHT
        entry.refresh(39)
        assert entry.state == EntryState.IN_FLIGHT
        entry.refresh(40)
        assert entry.state == EntryState.READY

    def test_clear(self):
        entry = StreamBufferEntry()
        entry.hold_prediction(0x1000, cycle=5)
        entry.clear()
        assert entry.state == EntryState.FREE
        assert entry.block == 0


class TestStreamBuffer:
    def test_allocation_resets_entries(self):
        buffer = _buffer()
        buffer.entries[0].hold_prediction(0x2000, 1)
        buffer.allocate(StreamState(0x100, 0x1000), cycle=10, priority=5)
        assert buffer.allocated
        assert buffer.occupied_entries == 0
        assert int(buffer.priority) == 5
        assert buffer.allocations == 1

    def test_free_entry_ordering(self):
        buffer = _buffer(entries=2)
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        first = buffer.free_entry()
        first.hold_prediction(0x1000, 0)
        second = buffer.free_entry()
        assert second is not first
        second.hold_prediction(0x1020, 1)
        assert buffer.free_entry() is None

    def test_prefetchable_entry_is_oldest_prediction(self):
        buffer = _buffer()
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        late = buffer.entries[0]
        early = buffer.entries[1]
        late.hold_prediction(0x2000, cycle=9)
        early.hold_prediction(0x1000, cycle=3)
        assert buffer.prefetchable_entry() is early

    def test_find_block(self):
        buffer = _buffer()
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        buffer.entries[2].hold_prediction(0x3000, 0)
        assert buffer.find_block(0x3000) is buffer.entries[2]
        assert buffer.find_block(0x4000) is None

    def test_wants_prediction_requires_allocation_and_space(self):
        buffer = _buffer(entries=1)
        assert not buffer.wants_prediction(epoch=0)
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        assert buffer.wants_prediction(epoch=0)
        buffer.entries[0].hold_prediction(0x1000, 0)
        assert not buffer.wants_prediction(epoch=0)

    def test_exhaustion_retries_after_epoch_advance(self):
        buffer = _buffer()
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        buffer.mark_exhausted(epoch=3)
        assert not buffer.wants_prediction(epoch=3)
        assert buffer.wants_prediction(epoch=4)

    def test_note_hit_bumps_priority_and_recency(self):
        buffer = _buffer()
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0, priority=4)
        buffer.note_hit(cycle=50, bonus=2)
        assert int(buffer.priority) == 6
        assert buffer.last_use_cycle == 50
        assert buffer.hits == 1

    def test_priority_saturates(self):
        buffer = _buffer(priority_max=12)
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0, priority=11)
        buffer.note_hit(cycle=1, bonus=2)
        assert int(buffer.priority) == 12

    def test_deallocate(self):
        buffer = _buffer()
        buffer.allocate(StreamState(0x100, 0x1000), cycle=0)
        buffer.deallocate()
        assert not buffer.allocated
        assert buffer.state is None
