"""Tests for the composable synthetic workload builder."""

import itertools

import pytest

from repro.sim import baseline_config, psb_config, simulate, stride_config
from repro.trace.stream import profile
from repro.workloads.synthetic import (
    PointerChase,
    RandomAccess,
    StrideSweep,
    SyntheticWorkload,
)


def _records(workload, count):
    return list(itertools.islice(workload.generate(), count))


class TestConstruction:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(phases=[])

    def test_deterministic(self):
        phases = [PointerChase(nodes=32), StrideSweep(elements=16)]
        a = _records(SyntheticWorkload(phases, seed=5), 1000)
        b = _records(SyntheticWorkload(phases, seed=5), 1000)
        assert a == b

    def test_seed_matters_for_random_phase(self):
        phases = [RandomAccess(touches=64)]
        a = _records(SyntheticWorkload(phases, seed=1), 500)
        b = _records(SyntheticWorkload(phases, seed=2), 500)
        assert a != b

    def test_phases_interleave(self):
        workload = SyntheticWorkload(
            [PointerChase(nodes=8, work_per_node=0, store_chance=0.0),
             StrideSweep(elements=8, work_per_element=0)],
            seed=1,
        )
        records = _records(workload, 200)
        pcs = {record.pc for record in records if record.is_load}
        assert len(pcs) == 2  # one chase PC, one sweep PC


class TestPhaseProperties:
    def test_chase_is_dependence_chained(self):
        workload = SyntheticWorkload([PointerChase(nodes=64)], seed=1)
        loads = [r for r in _records(workload, 600) if r.is_load]
        chained = sum(1 for r in loads if r.dep1 > 0)
        # Only the first load of each burst starts a fresh chain.
        assert chained >= len(loads) - 3

    def test_sweep_is_strided(self):
        workload = SyntheticWorkload(
            [StrideSweep(elements=64, stride=32)], seed=1
        )
        loads = [r for r in _records(workload, 400) if r.is_load]
        deltas = {b.addr - a.addr for a, b in zip(loads, loads[1:])}
        assert 32 in deltas
        assert len(deltas) <= 2  # stride plus the wrap-around

    def test_mix_profile_sane(self):
        workload = SyntheticWorkload(
            [PointerChase(), StrideSweep(), RandomAccess()], seed=3
        )
        stats = profile(itertools.islice(workload.generate(), 5000))
        assert 0.1 <= stats["load_fraction"] <= 0.6


class TestEndToEnd:
    def test_chase_workload_favours_psb(self):
        # Warm-up must cover a few full bursts so the Markov table trains.
        run = dict(max_instructions=40_000, warmup_instructions=16_000)
        workload = [PointerChase(nodes=600, node_bytes=64, work_per_node=6)]
        base = simulate(
            baseline_config(), SyntheticWorkload(workload, seed=1), **run
        )
        psb = simulate(
            psb_config(), SyntheticWorkload(workload, seed=1), **run
        )
        stride = simulate(
            stride_config(), SyntheticWorkload(workload, seed=1), **run
        )
        assert psb.speedup_over(base) > stride.speedup_over(base) + 5.0

    def test_stride_workload_served_by_both(self):
        # Warm-up must cover the first wrap of the swept region so the
        # steady state (L2-resident) is what gets measured, and the miss
        # density must leave the L1-L2 bus headroom — a demand stream
        # that saturates the bus leaves prefetching nothing to inject
        # (each miss costs ~5 bus cycles; the ceiling is 0.2 miss/cycle).
        run = dict(max_instructions=40_000, warmup_instructions=16_000)
        workload = [StrideSweep(elements=1024, stride=16, work_per_element=6)]
        base = simulate(
            baseline_config(), SyntheticWorkload(workload, seed=1), **run
        )
        stride = simulate(
            stride_config(), SyntheticWorkload(workload, seed=1), **run
        )
        assert stride.speedup_over(base) > 3.0
