"""Tests for the demand-based prior-art prefetchers (Section 3.2)."""

import pytest

from repro.config import SimConfig
from repro.demandpf.buffer import PrefetchBuffer
from repro.demandpf.markov_prefetcher import DemandMarkovPrefetcher
from repro.demandpf.nextline import NextLinePrefetcher
from repro.memory.hierarchy import MemoryHierarchy

BLOCK = 32


class TestPrefetchBuffer:
    def test_insert_and_take(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.insert(0x1000, ready_cycle=40)
        assert buffer.contains(0x1000)
        assert buffer.take(0x1000) == 40
        assert not buffer.contains(0x1000)

    def test_take_miss(self):
        assert PrefetchBuffer().take(0x1000) is None

    def test_lru_eviction_counts_unused(self):
        buffer = PrefetchBuffer(entries=2)
        buffer.insert(0x1000, 1)
        buffer.insert(0x2000, 2)
        buffer.insert(0x3000, 3)
        assert not buffer.contains(0x1000)
        assert buffer.evicted_unused == 1

    def test_useful_fraction(self):
        buffer = PrefetchBuffer(entries=4)
        buffer.insert(0x1000, 1)
        buffer.insert(0x2000, 2)
        buffer.take(0x1000)
        assert buffer.useful_fraction == 0.5

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(entries=0)


def _attach(prefetcher):
    hierarchy = MemoryHierarchy(SimConfig())
    prefetcher.attach(hierarchy)
    return hierarchy


class TestNextLine:
    def test_miss_triggers_next_block_prefetch(self):
        nlp = NextLinePrefetcher(BLOCK)
        _attach(nlp)
        nlp.on_l1_miss(0x100, 0x8000, cycle=0, sb_hit=False)
        nlp.tick(1)
        assert nlp.prefetches_issued == 1
        assert nlp.buffer.contains(0x8000 + BLOCK)

    def test_hit_triggers_follow_on(self):
        nlp = NextLinePrefetcher(BLOCK)
        _attach(nlp)
        nlp.on_l1_miss(0x100, 0x8000, cycle=0, sb_hit=False)
        nlp.tick(1)
        ready = nlp.probe(0x8000 + BLOCK, cycle=500)
        assert ready is not None
        assert nlp.prefetches_used == 1
        nlp.tick(501)
        assert nlp.buffer.contains(0x8000 + 2 * BLOCK)

    def test_bus_gating(self):
        nlp = NextLinePrefetcher(BLOCK)
        hierarchy = _attach(nlp)
        nlp.on_l1_miss(0x100, 0x8000, cycle=0, sb_hit=False)
        hierarchy.l1_l2_bus.acquire(1, 800)
        nlp.tick(1)
        assert nlp.prefetches_issued == 0

    def test_sequential_walk_gets_covered(self):
        nlp = NextLinePrefetcher(BLOCK)
        _attach(nlp)
        cycle = 0
        hits = 0
        for i in range(20):
            block = 0x8000 + i * BLOCK
            if nlp.probe(block, cycle) is not None:
                hits += 1
            else:
                nlp.on_l1_miss(0x100, block, cycle, sb_hit=False)
            for __ in range(60):
                cycle += 1
                nlp.tick(cycle)
        assert hits > 10  # one-block lookahead covers a slow walk


class TestDemandMarkov:
    def test_learns_transition_and_prefetches(self):
        markov = DemandMarkovPrefetcher(BLOCK)
        _attach(markov)
        # Teach A -> B, then miss A again.
        markov.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        markov.on_l1_miss(0x100, 0xA000, 10, sb_hit=False)
        markov.on_l1_miss(0x100, 0x8000, 20, sb_hit=False)
        markov.tick(21)
        assert markov.prefetches_issued == 1
        assert markov.buffer.contains(0xA000)

    def test_no_chaining(self):
        """Unlike a PSB, predictions are not fed back: after prefetching
        A's successor, the prefetcher idles until the next miss."""
        from repro.demandpf.buffer import PrefetchBuffer

        markov = DemandMarkovPrefetcher(BLOCK)
        _attach(markov)
        # Teach A -> B and B -> C through demand misses.
        for a, b in [(0x8000, 0xA000), (0xA000, 0xC000), (0x8000, 0xA000)]:
            markov.on_l1_miss(0x100, a, 0, sb_hit=False)
            markov.on_l1_miss(0x100, b, 10, sb_hit=False)
        # Discard anything the teaching misses queued, then miss A alone.
        markov._pending.clear()
        markov.buffer = PrefetchBuffer(markov.buffer.entries)
        markov.on_l1_miss(0x100, 0x8000, 50, sb_hit=False)
        for cycle in range(51, 200):
            markov.tick(cycle)
        # Only A's successor (B) was prefetched; B's successor (C) would
        # require chaining predictions, which this architecture never does.
        assert markov.buffer.contains(0xA000)
        assert not markov.buffer.contains(0xC000)

    def test_multiple_successors_remembered(self):
        markov = DemandMarkovPrefetcher(BLOCK, successors_per_entry=2)
        _attach(markov)
        for follower in (0xA000, 0xB000):
            markov.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
            markov.on_l1_miss(0x100, follower, 10, sb_hit=False)
        markov.on_l1_miss(0x100, 0x8000, 50, sb_hit=False)
        for cycle in range(51, 300):
            markov.tick(cycle)
        assert markov.buffer.contains(0xA000)
        assert markov.buffer.contains(0xB000)

    def test_probe_hit_rewards_source(self):
        markov = DemandMarkovPrefetcher(BLOCK)
        _attach(markov)
        markov.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        markov.on_l1_miss(0x100, 0xA000, 10, sb_hit=False)
        markov.on_l1_miss(0x100, 0x8000, 20, sb_hit=False)
        markov.tick(21)
        assert markov.probe(0xA000, 500) is not None
        assert markov.prefetches_used == 1
        assert markov.accuracy == 1.0

    def test_reset_stats(self):
        markov = DemandMarkovPrefetcher(BLOCK)
        _attach(markov)
        markov.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        markov.on_l1_miss(0x100, 0xA000, 10, sb_hit=False)
        markov.on_l1_miss(0x100, 0x8000, 20, sb_hit=False)
        markov.tick(21)
        markov.reset_stats()
        assert markov.prefetches_issued == 0
