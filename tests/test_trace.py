"""Unit tests for the trace substrate."""

from repro.trace import InstrKind, ListTrace, TraceRecord, counted, materialize
from repro.trace.record import OP_LATENCY, UNPIPELINED_KINDS
from repro.trace.stream import load_addresses, profile


def _toy_trace():
    return [
        TraceRecord(InstrKind.LOAD, 0x100, addr=0x1000),
        TraceRecord(InstrKind.IALU, 0x104, dep1=1),
        TraceRecord(InstrKind.STORE, 0x108, addr=0x2000),
        TraceRecord(InstrKind.BRANCH, 0x10C, taken=True),
    ]


class TestTraceRecord:
    def test_kind_predicates(self):
        load, alu, store, branch = _toy_trace()
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory
        assert branch.is_branch and not branch.is_memory
        assert not alu.is_memory

    def test_equality_and_hash(self):
        a = TraceRecord(InstrKind.LOAD, 0x100, addr=0x1000)
        b = TraceRecord(InstrKind.LOAD, 0x100, addr=0x1000)
        c = TraceRecord(InstrKind.LOAD, 0x100, addr=0x1004)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_fields(self):
        text = repr(TraceRecord(InstrKind.LOAD, 0x100, addr=0x1000, dep1=2))
        assert "LOAD" in text
        assert "0x1000" in text

    def test_latencies_match_paper(self):
        assert OP_LATENCY[InstrKind.IALU] == 1
        assert OP_LATENCY[InstrKind.IMUL] == 3
        assert OP_LATENCY[InstrKind.IDIV] == 12
        assert OP_LATENCY[InstrKind.FADD] == 2
        assert OP_LATENCY[InstrKind.FMUL] == 4
        assert OP_LATENCY[InstrKind.FDIV] == 12

    def test_only_dividers_unpipelined(self):
        assert UNPIPELINED_KINDS == {InstrKind.IDIV, InstrKind.FDIV}


class TestStreamHelpers:
    def test_list_trace_len_and_indexing(self):
        trace = ListTrace(_toy_trace())
        assert len(trace) == 4
        assert trace[0].is_load

    def test_counted_caps(self):
        records = list(counted(_toy_trace(), 2))
        assert len(records) == 2

    def test_materialize(self):
        trace = materialize(iter(_toy_trace()), 10)
        assert len(trace) == 4

    def test_profile_fractions(self):
        stats = profile(_toy_trace())
        assert stats["total"] == 4
        assert stats["load_fraction"] == 0.25
        assert stats["store_fraction"] == 0.25
        assert stats["branch_fraction"] == 0.25

    def test_load_addresses(self):
        assert list(load_addresses(_toy_trace())) == [0x1000]
