"""Tests for the markdown comparison report."""

import pytest

from repro.analysis.summary import comparison_report
from repro.cli import main
from repro.sim import baseline_config, psb_config, simulate
from repro.workloads import get_workload

RUN = dict(max_instructions=5000, warmup_instructions=1000)


def _results():
    return {
        "Base": simulate(
            baseline_config(), get_workload("health"), label="Base", **RUN
        ),
        "PSB": simulate(
            psb_config(), get_workload("health"), label="PSB", **RUN
        ),
    }


class TestComparisonReport:
    def test_contains_sections_and_machines(self):
        document = comparison_report("health", _results())
        assert "# Simulation report: health" in document
        assert "## Performance" in document
        assert "## Prefetching" in document
        assert "## Bus pressure" in document
        assert "| Base |" in document
        assert "| PSB |" in document

    def test_baseline_speedup_is_dash(self):
        document = comparison_report("health", _results())
        base_row = next(
            line for line in document.splitlines() if line.startswith("| Base |")
        )
        assert "| - |" in base_row

    def test_missing_baseline_raises(self):
        results = _results()
        del results["Base"]
        with pytest.raises(ValueError):
            comparison_report("health", results)

    def test_no_prefetchers_case(self):
        results = {"Base": _results()["Base"]}
        document = comparison_report("health", results)
        assert "No prefetchers in this comparison." in document

    def test_custom_title(self):
        document = comparison_report("health", _results(), title="# My run")
        assert document.splitlines()[0] == "# My run"


class TestReportCommand:
    def test_writes_markdown_file(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        code = main(
            ["report", "turb3d", "--out", path,
             "--instructions", "4000", "--warmup", "1000"]
        )
        assert code == 0
        with open(path) as handle:
            document = handle.read()
        assert "# Simulation report: turb3d" in document
        assert "ConfAlloc-Priority" in document
