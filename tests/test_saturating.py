"""Unit tests for saturating counters."""

import pytest

from repro.predictors.saturating import SaturatingCounter


class TestSaturatingCounter:
    def test_increments_and_saturates(self):
        counter = SaturatingCounter(maximum=7)
        for __ in range(10):
            counter.increment()
        assert counter.value == 7

    def test_decrements_and_floors(self):
        counter = SaturatingCounter(maximum=7, initial=2)
        for __ in range(5):
            counter.decrement()
        assert counter.value == 0

    def test_amounts(self):
        counter = SaturatingCounter(maximum=12)
        counter.increment(5)
        counter.decrement(2)
        assert counter.value == 3

    def test_set_clamps(self):
        counter = SaturatingCounter(maximum=12)
        counter.set(99)
        assert counter.value == 12
        counter.set(-5)
        assert counter.value == 0

    def test_at_least(self):
        counter = SaturatingCounter(maximum=7, initial=3)
        assert counter.at_least(3)
        assert not counter.at_least(4)

    def test_int_conversion(self):
        assert int(SaturatingCounter(maximum=7, initial=5)) == 5

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            SaturatingCounter(maximum=1, minimum=2)
        with pytest.raises(ValueError):
            SaturatingCounter(maximum=3, initial=9)
