"""End-to-end tests of the simulation integrity layer.

Covers the three pillars together with the machinery they plug into:

- runtime invariant checking at ``full`` level stays silent on every
  registered workload, and every corrupt-state fault recipe trips the
  invariant it was designed to violate;
- the golden functional model agrees with the timing simulator, and
  tampered results are rejected;
- a run snapshotted mid-trace and resumed finishes bit-identical to an
  uninterrupted run, including through the campaign runner's
  crash/timeout recovery path.
"""

import dataclasses

import pytest

from repro.cli import main as cli_main
from repro.config import InvariantLevel
from repro.errors import IntegrityError
from repro.integrity import (
    SimSnapshot,
    golden_check,
    resume_run,
    run_golden,
)
from repro.runner import (
    CORRUPT_STATE_TARGETS,
    CampaignRunner,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
    execute_spec,
)
from repro.sim import baseline_config, psb_config, simulate
from repro.sim.simulator import Simulator
from repro.workloads import get_workload, workload_names

INSTRUCTIONS = 5_000


def _full(config):
    return config.with_invariants(InvariantLevel.FULL)


def _trace(name="health", seed=1):
    return get_workload(name, seed=seed)


# ----------------------------------------------------------------------
# Pillar 1: runtime invariant checking
# ----------------------------------------------------------------------


class TestInvariantChecking:
    @pytest.mark.parametrize("workload", workload_names())
    def test_full_invariants_clean_on_every_workload(self, workload):
        result = simulate(
            _full(psb_config()),
            _trace(workload),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=INSTRUCTIONS // 3,
            label=workload,
        )
        assert result.instructions > 0
        assert result.extra["invariant_checks"] > 0

    def test_cheap_level_samples_fewer_checks(self):
        def checks(level):
            result = simulate(
                psb_config().with_invariants(level),
                _trace(),
                max_instructions=INSTRUCTIONS,
                label="lvl",
            )
            return result.extra["invariant_checks"]

        full = checks(InvariantLevel.FULL)
        cheap = checks(InvariantLevel.CHEAP)
        assert 0 < cheap < full

    def test_off_level_runs_no_checks(self):
        result = simulate(
            psb_config(), _trace(), max_instructions=INSTRUCTIONS, label="off"
        )
        assert result.extra["invariant_checks"] == 0

    @pytest.mark.parametrize(
        "target, invariant_prefix",
        [
            ("mshr", "l1.mshr."),
            ("bus", "l1_l2_bus."),
            ("streambuf", "streambuf[0].stale"),
            ("counter", "streambuf[0].priority.bounds"),
            ("stats", "stats.consistency"),
        ],
    )
    def test_corrupt_state_trips_named_invariant(self, target, invariant_prefix):
        assert target in CORRUPT_STATE_TARGETS
        spec = RunSpec(
            run_id=f"corrupt/{target}",
            config=_full(psb_config()),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            faults=FaultSpec(corrupt_state_at=500, corrupt_state_target=target),
        )
        with pytest.raises(IntegrityError) as excinfo:
            execute_spec(spec)
        error = excinfo.value
        assert error.invariant.startswith(invariant_prefix)
        assert error.retryable is False
        assert error.state_dump  # the dump names the offending component

    def test_corruption_invisible_with_invariants_off(self):
        spec = RunSpec(
            run_id="corrupt/unchecked",
            config=psb_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            faults=FaultSpec(corrupt_state_at=500, corrupt_state_target="stats"),
        )
        result = execute_spec(spec)  # completes, silently wrong: the point
        assert result.instructions > 0


# ----------------------------------------------------------------------
# Pillar 2: golden-model differential validation
# ----------------------------------------------------------------------


class TestGoldenModel:
    @pytest.mark.parametrize("workload", workload_names())
    def test_timed_model_matches_golden(self, workload):
        config = psb_config()
        result = simulate(
            config,
            _trace(workload),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=0,
            label=workload,
        )
        golden = run_golden(
            config, _trace(workload), max_instructions=INSTRUCTIONS
        )
        report = golden_check(result, golden)
        assert report.ok, report.violations

    def test_tampered_counts_are_rejected(self):
        config = baseline_config()
        result = simulate(
            config,
            _trace(),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=0,
            label="tampered",
        )
        golden = run_golden(config, _trace(), max_instructions=INSTRUCTIONS)
        result.extra["loads"] += 7  # silent corruption of a raw counter
        report = golden_check(result, golden)
        assert not report.ok
        assert any("loads" in v for v in report.violations)
        with pytest.raises(IntegrityError) as excinfo:
            report.verify()
        assert excinfo.value.invariant == "golden.differential"

    def test_warmup_runs_cannot_be_golden_checked(self):
        config = baseline_config()
        result = simulate(
            config,
            _trace(),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=1_000,
            label="warm",
        )
        golden = run_golden(config, _trace(), max_instructions=INSTRUCTIONS)
        with pytest.raises(IntegrityError) as excinfo:
            golden_check(result, golden, warmup_instructions=1_000)
        assert excinfo.value.invariant == "golden.precondition"

    def test_campaign_golden_check_passes(self, tmp_path):
        spec = RunSpec(
            run_id="golden/psb",
            config=psb_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            golden_check=True,
        )
        result = execute_spec(spec)
        assert "golden_miss_rate" in result.extra


# ----------------------------------------------------------------------
# Pillar 3: deterministic snapshot/replay
# ----------------------------------------------------------------------


def _assert_results_identical(resumed, reference, ignore_extra=("resumed_from_cycle",)):
    for field in dataclasses.fields(type(reference)):
        if field.name == "extra":
            continue
        assert getattr(resumed, field.name) == getattr(
            reference, field.name
        ), field.name
    for key, value in reference.extra.items():
        if key in ignore_extra:
            continue
        assert resumed.extra.get(key) == value, key


class TestSnapshotReplay:
    def test_resume_is_bit_identical(self):
        config = psb_config()
        reference = simulate(
            config, _trace(), max_instructions=INSTRUCTIONS, label="ref"
        )

        snapshots = []
        Simulator(config).run(
            _trace(),
            max_instructions=INSTRUCTIONS,
            label="ref",
            snapshot_every=2_000,
            snapshot_sink=snapshots.append,
        )
        assert len(snapshots) >= 2
        middle = snapshots[len(snapshots) // 2]
        assert 0 < middle.cycle < reference.cycles

        resumed = resume_run(middle, _trace())
        assert resumed.extra["resumed_from_cycle"] == float(middle.cycle)
        _assert_results_identical(resumed, reference)

    def test_snapshot_roundtrips_through_disk(self, tmp_path):
        config = psb_config()
        snapshots = []
        Simulator(config).run(
            _trace(),
            max_instructions=INSTRUCTIONS,
            label="disk",
            snapshot_every=5_000,
            snapshot_sink=snapshots.append,
        )
        path = str(tmp_path / "run.snap")
        snapshots[0].save(path)
        loaded = SimSnapshot.load(path)
        assert loaded.cycle == snapshots[0].cycle
        assert loaded.records_consumed == snapshots[0].records_consumed

    def test_crashed_campaign_point_resumes_from_snapshot(self, tmp_path):
        config = psb_config()
        reference = simulate(
            config, _trace(), max_instructions=INSTRUCTIONS, label="crash/psb"
        )
        spec = RunSpec(
            run_id="crash/psb",
            config=config,
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            faults=FaultSpec(crash_at=3_000, crash_attempts=1),
        )
        runner = CampaignRunner(
            str(tmp_path),
            retries=1,
            isolation="inline",
            snapshot_every=2_000,
        )
        campaign = runner.run([spec])
        outcome = campaign.outcomes["crash/psb"]
        assert outcome.ok
        assert outcome.attempts == 2
        resumed = outcome.result
        assert resumed.extra["resumed_from_cycle"] > 0
        _assert_results_identical(resumed, reference)
        # The seed snapshot is deleted once the point completes.
        assert not list((tmp_path / "snapshots").glob("*.snap"))

    @pytest.mark.slow
    def test_timed_out_point_resumes_from_snapshot(self, tmp_path):
        spec = RunSpec(
            run_id="hang/psb",
            config=psb_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            faults=FaultSpec(
                hang_at=3_000, hang_seconds=60.0, hang_attempts=1
            ),
        )
        runner = CampaignRunner(
            str(tmp_path),
            timeout=15.0,
            retries=1,
            isolation="process",
            snapshot_every=2_000,
            backoff_base=0.0,
        )
        campaign = runner.run([spec])
        outcome = campaign.outcomes["hang/psb"]
        assert outcome.ok, outcome.error_message
        assert outcome.attempts == 2
        assert outcome.result.extra["resumed_from_cycle"] > 0


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestIntegrityCli:
    def test_run_with_full_invariants(self, capsys):
        exit_code = cli_main(
            ["run", "health", "--instructions", "3000", "--invariants", "full"]
        )
        assert exit_code == 0
        assert "invariant checks" in capsys.readouterr().out

    def test_check_command_passes(self, capsys):
        exit_code = cli_main(
            ["check", "health", "--machine", "psb", "--instructions", "3000"]
        )
        assert exit_code == 0
        assert "golden check [OK]" in capsys.readouterr().out

    def test_check_command_rejects_warmup(self, capsys):
        exit_code = cli_main(
            ["check", "health", "--instructions", "3000", "--warmup", "500"]
        )
        assert exit_code == 1
        assert "warmup" in capsys.readouterr().err
