"""Run reports: payload loading, markdown sections, HTML, campaigns."""

import json

import pytest

from repro.cli import MACHINES, main
from repro.errors import ConfigError
from repro.obs import EventTrace, metrics_payload
from repro.obs.report import (
    campaign_report,
    load_metrics,
    markdown_to_html,
    run_report,
    sparkline,
    write_report,
)
from repro.sim.simulator import Simulator
from repro.workloads import get_workload


def _observed_run(tmp_path, machine="psb", instructions=6_000):
    trace = EventTrace()
    simulator = Simulator(
        MACHINES[machine]().with_metrics(500), event_trace=trace
    )
    result = simulator.run(
        get_workload("health", seed=1), max_instructions=instructions
    )
    payload = metrics_payload(
        simulator, result,
        meta={"workload": "health", "machine": machine, "seed": 1},
    )
    return payload, trace


class TestSparkline:
    def test_constant_series_is_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_scales_to_range(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_empty(self):
        assert sparkline([]) == ""


class TestRunReport:
    def test_sections_present(self, tmp_path):
        payload, trace = _observed_run(tmp_path)
        document = run_report(payload, events=trace.events())
        for heading in (
            "## Summary",
            "## Hit-rate breakdown",
            "## Stream buffers",
            "## Bus occupancy",
            "## Predictor and prefetcher",
            "## Demand miss latency",
            "## Event trace",
        ):
            assert heading in document, heading
        # Acceptance criteria: per-buffer hit rates, bus occupancy
        # timeline, predictor accuracy.
        assert "| sb0 |" in document
        assert "busy cycles" in document
        assert "Predictor accuracy" in document

    def test_no_prefetcher_run_omits_buffer_sections(self, tmp_path):
        payload, __ = _observed_run(tmp_path, machine="base")
        document = run_report(payload)
        assert "## Stream buffers" not in document
        assert "## Hit-rate breakdown" in document

    def test_load_metrics_round_trip(self, tmp_path):
        payload, __ = _observed_run(tmp_path)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(payload))
        assert load_metrics(str(path))["format"] == payload["format"]

    def test_load_metrics_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigError):
            load_metrics(str(path))

    def test_load_metrics_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_metrics(str(tmp_path / "absent.json"))

    def test_load_metrics_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            load_metrics(str(path))


class TestHtml:
    def test_markdown_to_html_self_contained(self, tmp_path):
        payload, trace = _observed_run(tmp_path)
        document = run_report(payload, events=trace.events())
        page = markdown_to_html(document, title="t")
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page
        assert "<table>" in page
        assert "<h2>Stream buffers</h2>" in page

    def test_inline_markup(self):
        page = markdown_to_html("plain `code` and **bold** text")
        assert "<code>code</code>" in page
        assert "<strong>bold</strong>" in page

    def test_escapes_html(self):
        page = markdown_to_html("a <script> tag")
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_write_report_picks_format_by_extension(self, tmp_path):
        markdown = "# Title\n\nbody\n"
        md_path = str(tmp_path / "r.md")
        html_path = str(tmp_path / "r.html")
        assert write_report(markdown, md_path) == "markdown"
        assert write_report(markdown, html_path) == "html"
        assert open(md_path).read() == markdown
        assert open(html_path).read().startswith("<!DOCTYPE html>")


class TestCampaignReport:
    def test_renders_manifest_metrics(self, tmp_path):
        campaign = tmp_path / "camp"
        campaign.mkdir()
        (campaign / "manifest.json").write_text(json.dumps({
            "status": "complete",
            "total_points": 2,
            "ok": 1,
            "failed": 1,
            "resumed_from_checkpoint": 0,
            "failures": [
                {"run_id": "health/psb", "kind": "RunTimeoutError",
                 "message": "timed out", "attempts": 2},
            ],
            "metrics": {
                "health/base": {
                    "ipc": 0.07, "cycles": 1000, "instructions": 70,
                    "l1_miss_rate": 0.4, "prefetch_accuracy": 0.0,
                },
            },
        }))
        document = campaign_report(str(campaign))
        assert "## Per-point metrics" in document
        assert "health/base" in document
        assert "## Failures" in document
        assert "RunTimeoutError" in document

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            campaign_report(str(tmp_path))


class TestCliRoundTrip:
    def test_run_metrics_then_report(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "run", "health", "--instructions", "4000",
            "--metrics", "--trace-events", "ev.jsonl",
        ]) == 0
        assert main(["report", "--events", "ev.jsonl"]) == 0
        document = (tmp_path / "report.md").read_text()
        assert "## Stream buffers" in document
        assert "## Event trace" in document

    def test_report_html_output(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "run", "health", "--instructions", "4000", "--metrics",
        ]) == 0
        assert main(["report", "--out", "report.html"]) == 0
        assert (tmp_path / "report.html").read_text().startswith(
            "<!DOCTYPE html>"
        )

    def test_trace_filter_flag(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "run", "health", "--instructions", "4000",
            "--trace-events", "ev.jsonl", "--trace-filter", "prefetch",
        ]) == 0
        lines = (tmp_path / "ev.jsonl").read_text().splitlines()
        assert lines
        assert all(json.loads(l)["category"] == "prefetch" for l in lines)

    def test_report_missing_metrics_errors_cleanly(self, tmp_path,
                                                   monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 1
        assert "metrics" in capsys.readouterr().err

    def test_campaign_report_cli(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "sweep", "health", "--machines", "base", "--campaign-dir",
            "camp", "--instructions", "2000", "--no-isolate",
        ]) == 0
        assert main([
            "report", "--campaign", "camp", "--out", "camp.md",
        ]) == 0
        assert "Per-point metrics" in (tmp_path / "camp.md").read_text()
