"""The durable job queue: idempotency, replay, back-pressure, reaping.

Every test that "crashes" a worker or a server does so by construction
— dropping a lease handle, rebuilding a :class:`JobStore` over the same
directory — because that is exactly what a real crash leaves behind:
files, and nothing else.
"""

import json
import os

import pytest

from repro.errors import (
    BackPressureError,
    LeaseLostError,
    ServiceError,
)
from repro.runner.chaos import ChaosEngine, ChaosSpec
from repro.service import JOBS_NAME, JobStore, job_id_of, normalize_spec


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def spec_of(workload="health", **overrides):
    payload = {"workload": workload, "machines": "base"}
    payload.update(overrides)
    return normalize_spec(payload)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    return JobStore(
        str(tmp_path / "svc"), max_queued=4, max_expiries=2,
        lease_ttl=30.0, clock=clock,
    )


class TestSubmit:
    def test_submission_is_durable_and_idempotent(self, store, clock):
        record, created = store.submit(spec_of())
        assert created and record.state == "queued"
        again, created_again = store.submit(spec_of())
        assert not created_again
        assert again.job_id == record.job_id

    def test_job_id_is_content_addressed(self):
        assert job_id_of(spec_of()) == job_id_of(spec_of())
        assert job_id_of(spec_of()) != job_id_of(spec_of(seed=2))

    def test_replay_after_restart(self, store, tmp_path, clock):
        record, _ = store.submit(spec_of())
        reborn = JobStore(str(tmp_path / "svc"), clock=clock)
        assert reborn.get(record.job_id).state == "queued"
        # Resubmission to the reborn store still deduplicates.
        _, created = reborn.submit(spec_of())
        assert not created

    def test_full_queue_raises_back_pressure(self, tmp_path, clock):
        store = JobStore(
            str(tmp_path / "small"), max_queued=1, retry_after=7.0,
            clock=clock,
        )
        store.submit(spec_of("health"))
        with pytest.raises(BackPressureError) as excinfo:
            store.submit(spec_of("burg"))
        assert excinfo.value.retry_after == 7.0

    def test_terminal_jobs_do_not_occupy_the_queue(self, tmp_path, clock):
        store = JobStore(str(tmp_path / "small"), max_queued=1, clock=clock)
        store.submit(spec_of("health"))
        record, lease = store.claim("w1")
        store.complete(record, lease, "done", summary={"ok": 1})
        store.submit(spec_of("burg"))  # must not raise

    def test_resubmitting_a_done_job_returns_it(self, store):
        record, _ = store.submit(spec_of())
        rec, lease = store.claim("w1")
        store.complete(rec, lease, "done", summary={"ok": 1})
        again, created = store.submit(spec_of())
        assert not created and again.state == "done"


class TestRevisionKeying:
    def test_job_id_keys_on_revision(self):
        assert job_id_of(spec_of(), "rev-a") == job_id_of(spec_of(), "rev-a")
        assert job_id_of(spec_of(), "rev-a") != job_id_of(spec_of(), "rev-b")
        # The legacy spec-only address is yet another key, so keyed and
        # legacy ids never alias by construction.
        assert job_id_of(spec_of(), "rev-a") != job_id_of(spec_of())

    def test_same_spec_different_rev_is_a_new_job(self, tmp_path, clock):
        old = JobStore(str(tmp_path / "svc"), clock=clock, rev="rev-old")
        stale, created = old.submit(spec_of())
        assert created and stale.rev == "rev-old"
        # The service restarts on new code over the same directory: the
        # old job replays untouched, the same spec admits a fresh job.
        new = JobStore(str(tmp_path / "svc"), clock=clock, rev="rev-new")
        assert new.get(stale.job_id).state == "queued"
        fresh, created = new.submit(spec_of())
        assert created
        assert fresh.job_id != stale.job_id
        assert fresh.rev == "rev-new"
        # ...and stays idempotent within the new revision.
        _, created = new.submit(spec_of())
        assert not created

    def test_legacy_log_without_rev_replays(self, tmp_path, clock):
        """A pre-revision-keying jobs.jsonl is still a valid store."""
        from repro.runner.checkpoint import encode_entry

        directory = tmp_path / "svc"
        directory.mkdir()
        spec = spec_of()
        legacy_id = job_id_of(spec)  # spec-only address, no rev field
        entry = {
            "job_id": legacy_id,
            "state": "queued",
            "spec": spec,
            "submitted_at": 1.0,
            "updated_at": 1.0,
            "claims": 0,
            "expiries": 0,
        }
        (directory / JOBS_NAME).write_text(encode_entry(entry) + "\n")
        store = JobStore(str(directory), clock=clock, rev="rev-new")
        migrated = store.get(legacy_id)
        assert migrated is not None and migrated.rev is None
        # The legacy job still claims and completes under its old id...
        record, lease = store.claim("w1")
        assert record.job_id == legacy_id
        store.complete(record, lease, "done", summary={"ok": 1})
        # ...and its terminal entry keeps the id rev-less, so replay
        # never mixes revisions under one address.
        reborn = JobStore(str(directory), clock=clock, rev="rev-new")
        assert reborn.get(legacy_id).state == "done"
        assert reborn.get(legacy_id).rev is None


class TestClaimAndComplete:
    def test_claim_oldest_queued_first(self, store, clock):
        first, _ = store.submit(spec_of("health"))
        clock.advance(1.0)
        store.submit(spec_of("burg"))
        record, lease = store.claim("w1")
        assert record.job_id == first.job_id
        assert record.state == "running" and record.claims == 1
        assert lease.owner == "w1"

    def test_claim_returns_none_when_queue_is_empty(self, store):
        assert store.claim("w1") is None

    def test_complete_records_summary(self, store, clock):
        store.submit(spec_of())
        record, lease = store.claim("w1")
        done = store.complete(
            record, lease, "done", summary={"ok": 1, "failed": 0}
        )
        assert done.state == "done"
        assert done.owner is None
        assert store.leases.load(record.job_id) is None

    def test_complete_refuses_non_terminal_states(self, store):
        store.submit(spec_of())
        record, lease = store.claim("w1")
        with pytest.raises(ServiceError):
            store.complete(record, lease, "running")

    def test_zombie_completion_is_fenced_out(self, store, clock):
        """The exactly-once property, in miniature: the lease expires
        under a worker, the job is re-claimed and finished by another,
        and the zombie's completion raises instead of double-writing."""
        store.submit(spec_of())
        record, stale_lease = store.claim("w1")
        clock.advance(31.0)
        store.reap()
        record2, lease2 = store.claim("w2")
        store.complete(record2, lease2, "done", summary={"ok": 1})
        with pytest.raises(LeaseLostError):
            store.complete(record, stale_lease, "done", summary={"ok": 1})
        assert store.get(record.job_id).state == "done"

    def test_requeue_releases_and_requeues(self, store):
        store.submit(spec_of())
        record, lease = store.claim("w1")
        store.requeue(record, lease)
        assert record.state == "queued" and record.owner is None
        assert store.leases.load(record.job_id) is None
        # The job is claimable again immediately (graceful drain path).
        assert store.claim("w2") is not None


class TestReap:
    def test_expired_lease_requeues_within_budget(self, store, clock):
        store.submit(spec_of())
        record, _ = store.claim("w1")
        clock.advance(31.0)
        touched = store.reap()
        assert [r.job_id for r in touched] == [record.job_id]
        assert record.state == "queued" and record.expiries == 1

    def test_live_lease_is_left_alone(self, store, clock):
        store.submit(spec_of())
        record, _ = store.claim("w1")
        clock.advance(10.0)
        assert store.reap() == []
        assert record.state == "running"

    def test_excluded_jobs_are_left_alone(self, store, clock):
        store.submit(spec_of())
        record, _ = store.claim("w1")
        clock.advance(31.0)
        assert store.reap(exclude=frozenset([record.job_id])) == []
        assert record.state == "running"

    def test_expiry_budget_poisons_the_job(self, store, clock):
        store.submit(spec_of())
        for expiry in range(2):  # max_expiries=2
            record, _ = store.claim(f"w{expiry}")
            clock.advance(31.0)
            store.reap()
        assert record.state == "poisoned"
        assert record.error["kind"] == "WorkerPoisonedError"
        # Poisoned is terminal: nothing left to claim.
        assert store.claim("w9") is None

    def test_running_job_with_no_lease_file_is_reaped(self, store, clock):
        store.submit(spec_of())
        record, lease = store.claim("w1")
        os.remove(
            os.path.join(store.leases.lease_dir, f"{record.job_id}.lease")
        )
        assert store.reap() != []
        assert record.state == "queued"

    def test_crashed_server_recovers_after_ttl(self, tmp_path, clock):
        """Boot-time recovery: a job recorded running by a dead server
        is re-enqueued once its lease ages out — not before."""
        store = JobStore(str(tmp_path / "svc"), lease_ttl=30.0, clock=clock)
        store.submit(spec_of())
        store.claim("dead-server")
        # "Crash": a brand-new store over the same files.
        reborn = JobStore(str(tmp_path / "svc"), lease_ttl=30.0, clock=clock)
        record = reborn.jobs()[0]
        assert record.state == "running"
        assert reborn.reap() == []  # lease not expired yet: wait
        clock.advance(31.0)
        assert reborn.reap() != []
        assert reborn.jobs()[0].state == "queued"


class TestDurabilityUnderChaos:
    def test_enospc_append_is_flushed_without_residue(self, tmp_path, clock):
        chaos = ChaosEngine(ChaosSpec(enospc_job_appends=(0,)))
        store = JobStore(str(tmp_path / "svc"), chaos=chaos, clock=clock)
        record, _ = store.submit(spec_of())
        assert store.append_failures == 1
        assert store.flush_pending() == 0
        # The reborn store replays the flushed entry.
        reborn = JobStore(str(tmp_path / "svc"), clock=clock)
        assert reborn.get(record.job_id).state == "queued"
        assert chaos.counters["job_enospc"] == 1

    def test_torn_append_is_confined_and_healed(self, tmp_path, clock):
        chaos = ChaosEngine(ChaosSpec(torn_job_appends=(0,)))
        store = JobStore(str(tmp_path / "svc"), chaos=chaos, clock=clock)
        record, _ = store.submit(spec_of())
        store.flush_pending()
        store.submit(spec_of("burg"))
        reborn = JobStore(str(tmp_path / "svc"), clock=clock)
        assert reborn.get(record.job_id).state == "queued"
        assert len(reborn.jobs()) == 2
        # The torn fragment is still in the file, on its own line,
        # where replay skips it and the auditor can see it.
        with open(os.path.join(str(tmp_path / "svc"), JOBS_NAME)) as handle:
            lines = [line for line in handle.read().splitlines() if line]
        parsed = 0
        for line in lines:
            try:
                json.loads(line)
                parsed += 1
            except json.JSONDecodeError:
                pass
        assert parsed == len(lines) - 1
        assert chaos.counters["job_torn"] == 1

    def test_flush_retries_the_current_state_not_the_stale_one(
        self, tmp_path, clock
    ):
        """An entry that failed as 'queued' must not resurrect 'queued'
        after the job has already moved on to 'running'."""
        chaos = ChaosEngine(ChaosSpec(enospc_job_appends=(0,)))
        store = JobStore(str(tmp_path / "svc"), chaos=chaos, clock=clock)
        record, _ = store.submit(spec_of())  # this append fails
        store.claim("w1")  # this one lands: state=running
        store.flush_pending()
        reborn = JobStore(str(tmp_path / "svc"), clock=clock)
        assert reborn.get(record.job_id).state == "running"


class TestValidation:
    def test_rejects_bad_bounds(self, tmp_path):
        with pytest.raises(ServiceError):
            JobStore(str(tmp_path / "a"), max_queued=0)
        with pytest.raises(ServiceError):
            JobStore(str(tmp_path / "b"), max_expiries=0)
        with pytest.raises(ServiceError):
            JobStore(str(tmp_path / "c"), lease_ttl=0.0)
