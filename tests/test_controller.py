"""Unit tests for the stream-buffer controller (Section 4.1)."""

from repro.config import (
    AllocationPolicy,
    PrefetchConfig,
    PrefetcherKind,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.sfm import StrideFilteredMarkovPredictor
from repro.predictors.stride import TwoDeltaStrideTable
from repro.streambuf.buffer import EntryState
from repro.streambuf.controller import (
    SequentialPredictor,
    StreamBufferController,
    build_prefetcher,
)

BLOCK = 32


def _controller(allocation=AllocationPolicy.ALWAYS, predictor=None):
    config = StreamBufferConfig(
        allocation=allocation, scheduling=SchedulingPolicy.ROUND_ROBIN
    )
    predictor = predictor or SequentialPredictor(BLOCK)
    controller = StreamBufferController(config, predictor, BLOCK)
    hierarchy = MemoryHierarchy(SimConfig())
    controller.attach(hierarchy)
    return controller, hierarchy


def _warm_stride(predictor, pc=0x100, count=6, stride=BLOCK):
    for i in range(count):
        predictor.train(pc, i * stride)


class TestAllocation:
    def test_miss_allocates_buffer(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, cycle=0, sb_hit=False)
        assert controller.allocations == 1
        assert controller.buffers[0].allocated

    def test_sb_hit_does_not_allocate(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, cycle=0, sb_hit=True)
        assert controller.allocations == 0

    def test_two_miss_filter_gates_allocation(self):
        predictor = TwoDeltaStrideTable()
        controller, __ = _controller(AllocationPolicy.TWO_MISS, predictor)
        controller.on_l1_miss(0x100, 0 * BLOCK, 0, sb_hit=False)
        controller.on_l1_miss(0x100, 1 * BLOCK, 10, sb_hit=False)
        assert controller.allocations == 0
        controller.on_l1_miss(0x100, 2 * BLOCK, 20, sb_hit=False)
        assert controller.allocations == 1

    def test_priority_copied_from_confidence(self):
        predictor = StrideFilteredMarkovPredictor()
        controller, __ = _controller(AllocationPolicy.CONFIDENCE, predictor)
        _warm_stride(predictor)
        controller.on_l1_miss(0x100, 6 * BLOCK, 0, sb_hit=False)
        assert controller.allocations == 1
        assert int(controller.buffers[0].priority) == predictor.confidence_for(0x100)

    def test_aging_decrements_priorities(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.buffers[0].priority.set(5)
        for i in range(controller.config.priority_age_period):
            controller.on_l1_miss(0x200 + i, 0x100000 + i * 4096, i, sb_hit=False)
        assert int(controller.buffers[0].priority) < 5


class TestPredictionAndPrefetch:
    def test_tick_predicts_and_prefetches(self):
        controller, hierarchy = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.tick(1)
        buffer = controller.buffers[0]
        states = [entry.state for entry in buffer.entries]
        assert EntryState.IN_FLIGHT in states or EntryState.PREDICTED in states
        assert controller.predictions_made >= 1

    def test_one_prediction_per_cycle(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.on_l1_miss(0x200, 0x20000, 0, sb_hit=False)
        controller.tick(1)
        assert controller.predictions_made == 1

    def test_prefetch_blocked_when_bus_busy(self):
        controller, hierarchy = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        hierarchy.l1_l2_bus.acquire(1, 64)  # bus busy at cycle 1
        controller.tick(1)
        assert controller.prefetches_issued == 0

    def test_overlapping_streams_forbidden(self):
        """A prediction already held by any buffer is dropped, but the
        stream's speculative history still advances (Section 4.1)."""
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.on_l1_miss(0x200, 0x8000 + BLOCK, 0, sb_hit=False)
        for cycle in range(1, 12):
            controller.tick(cycle)
        assert controller.duplicate_predictions >= 1

    def test_entries_fill_then_stop(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        for cycle in range(1, 20):
            controller.tick(cycle)
        buffer = controller.buffers[0]
        assert buffer.occupied_entries == len(buffer.entries)
        predictions = controller.predictions_made
        controller.tick(50)
        assert controller.predictions_made == predictions


class TestProbe:
    def _run_stream(self, cycles=30):
        controller, hierarchy = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        for cycle in range(1, cycles):
            controller.tick(cycle)
        return controller, hierarchy

    def test_probe_hits_prefetched_block(self):
        controller, __ = self._run_stream(cycles=200)
        ready = controller.probe(0x8000 + BLOCK, cycle=200)
        assert ready is not None
        assert ready <= 200
        assert controller.prefetches_used == 1

    def test_probe_frees_entry(self):
        controller, __ = self._run_stream(cycles=200)
        controller.probe(0x8000 + BLOCK, cycle=200)
        assert controller.probe(0x8000 + BLOCK, cycle=201) is None

    def test_probe_miss(self):
        controller, __ = self._run_stream()
        assert controller.probe(0xDEAD000, cycle=50) is None

    def test_probe_bumps_priority(self):
        controller, __ = self._run_stream(cycles=200)
        before = int(controller.buffers[0].priority)
        controller.probe(0x8000 + BLOCK, cycle=200)
        assert int(controller.buffers[0].priority) == min(12, before + 2)

    def test_probe_of_unprefetched_prediction_clears_entry(self):
        controller, hierarchy = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        hierarchy.l1_l2_bus.acquire(0, 8000)  # jam the bus for a long time
        for cycle in range(1, 6):
            controller.tick(cycle)
        assert controller.probe(0x8000 + BLOCK, cycle=6) is None
        assert controller.predicted_overtaken >= 1


class TestReallocationAccounting:
    def test_discarded_prefetches_counted(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        for cycle in range(1, 300):
            controller.tick(cycle)
        # Force reallocation of every buffer: unique PCs, distant blocks.
        for i in range(len(controller.buffers)):
            controller.on_l1_miss(0x900 + i * 4, 0x400000 + i * 65536, 300 + i,
                                  sb_hit=False)
        assert controller.prefetches_discarded >= 1


class TestBuildPrefetcher:
    def test_none_kind(self):
        assert build_prefetcher(PrefetchConfig(kind=PrefetcherKind.NONE), BLOCK) is None

    def test_kinds_map_to_predictors(self):
        seq = build_prefetcher(PrefetchConfig(kind=PrefetcherKind.SEQUENTIAL), BLOCK)
        stride = build_prefetcher(PrefetchConfig(kind=PrefetcherKind.STRIDE_PC), BLOCK)
        psb = build_prefetcher(
            PrefetchConfig(kind=PrefetcherKind.PREDICTOR_DIRECTED), BLOCK
        )
        assert isinstance(seq.predictor, SequentialPredictor)
        assert isinstance(stride.predictor, TwoDeltaStrideTable)
        assert isinstance(psb.predictor, StrideFilteredMarkovPredictor)

    def test_reset_stats_preserves_buffers(self):
        controller, __ = _controller()
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        controller.reset_stats()
        assert controller.allocations == 0
        assert controller.buffers[0].allocated
