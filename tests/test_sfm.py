"""Unit tests for the Stride-Filtered Markov predictor (Section 4.2)."""

from repro.predictors.sfm import StrideFilteredMarkovPredictor


def _train_sequence(sfm, pc, addresses):
    return [sfm.train(pc, address) for address in addresses]


class TestFiltering:
    def test_stride_covered_misses_stay_out_of_markov(self):
        sfm = StrideFilteredMarkovPredictor()
        _train_sequence(sfm, 0x100, [i * 32 for i in range(10)])
        # Every transition was stride-covered, so the Markov table should
        # hold (almost) nothing: the filter worked.
        assert sfm.markov_table.trains <= 1

    def test_irregular_misses_train_markov(self):
        sfm = StrideFilteredMarkovPredictor()
        _train_sequence(sfm, 0x100, [0, 5000, 320, 7000])
        assert sfm.markov_table.trains >= 2

    def test_markov_learns_pointer_chain(self):
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        for __ in range(3):
            _train_sequence(sfm, 0x100, chain)
        # After training, the chain transitions are predictable.
        assert sfm.markov_table.lookup(960) == 320
        assert sfm.markov_table.lookup(320) == 1280


class TestConfidence:
    def test_repeating_chain_builds_confidence(self):
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        for __ in range(4):
            _train_sequence(sfm, 0x100, chain)
        assert sfm.confidence_for(0x100) >= 3

    def test_random_addresses_keep_zero_confidence(self):
        import random

        rng = random.Random(7)
        sfm = StrideFilteredMarkovPredictor()
        for __ in range(60):
            sfm.train(0x100, rng.randrange(0, 1 << 30) & ~31)
        assert sfm.confidence_for(0x100) <= 1

    def test_correct_when_either_component_matches(self):
        sfm = StrideFilteredMarkovPredictor()
        # Build a stable stride so the stride component predicts.
        results = _train_sequence(sfm, 0x100, [i * 64 for i in range(6)])
        assert results[-1]  # later trains predicted correctly


class TestStreamPrediction:
    def test_markov_hit_wins_over_stride(self):
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        for __ in range(3):
            _train_sequence(sfm, 0x100, chain)
        state = sfm.make_stream_state(0x100, 960)
        assert sfm.next_prediction(state) == 320
        assert sfm.next_prediction(state) == 1280

    def test_stride_fallback_on_markov_miss(self):
        sfm = StrideFilteredMarkovPredictor()
        _train_sequence(sfm, 0x100, [i * 32 for i in range(6)])
        state = sfm.make_stream_state(0x100, 1_000_000)
        assert state.stride == 32
        assert sfm.next_prediction(state) == 1_000_032

    def test_no_prediction_without_information(self):
        sfm = StrideFilteredMarkovPredictor()
        sfm.train(0x100, 0x5000)
        state = sfm.make_stream_state(0x100, 0x5000)
        assert sfm.next_prediction(state) is None

    def test_prediction_does_not_touch_tables(self):
        """The key PSB property: generating predictions must not modify
        the shared tables (Section 4.1)."""
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        for __ in range(3):
            _train_sequence(sfm, 0x100, chain)
        trains_before = sfm.markov_table.trains
        state = sfm.make_stream_state(0x100, 0)
        for __ in range(10):
            sfm.next_prediction(state)
        assert sfm.markov_table.trains == trains_before

    def test_speculative_state_advances(self):
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        for __ in range(3):
            _train_sequence(sfm, 0x100, chain)
        state = sfm.make_stream_state(0x100, 0)
        sfm.next_prediction(state)
        assert state.last_address == 960


class TestTwoMissReadiness:
    def test_needs_two_consecutive_correct(self):
        sfm = StrideFilteredMarkovPredictor()
        chain = [0, 960, 320, 1280, 640]
        _train_sequence(sfm, 0x100, chain)
        assert not sfm.allocation_ready(0x100)
        _train_sequence(sfm, 0x100, chain)
        _train_sequence(sfm, 0x100, chain)
        assert sfm.allocation_ready(0x100)
