"""Parallel campaign execution (``workers > 1``).

The parallel schedule must be *result-identical* to the serial one:
same per-point results and failure taxonomy, an equivalent
checkpoint/manifest differing only in completion order, and the same
retry/timeout/fail-fast semantics.  Real worker processes are spawned
throughout; the wall-clock-timeout test carries the ``slow`` marker.
"""

import json
import os

import pytest

from repro.errors import ConfigError, TraceFormatError
from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.sim import baseline_config, psb_config, stride_config

INSTRUCTIONS = 1_000
WARMUP = 200


def _spec(run_id, config=None, faults=None, seed=1):
    return RunSpec(
        run_id=run_id,
        config=config if config is not None else baseline_config(),
        trace=WorkloadSpec("health", seed=seed),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        faults=faults,
    )


def _mixed_specs():
    """Healthy points across configs/seeds plus a crash and a corrupt
    record — the ok/failed mix the serial-equivalence tests compare."""
    return [
        _spec("base"),
        _spec("stride", stride_config()),
        _spec("crash", faults=FaultSpec(crash_at=100)),
        _spec("psb", psb_config()),
        _spec("seed7", seed=7),
        _spec("corrupt", faults=FaultSpec(corrupt_at=100)),
    ]


def _results_view(campaign):
    return {
        run_id: (result.ipc, result.cycles, result.instructions)
        for run_id, result in campaign.results.items()
    }


def _failures_view(campaign):
    return {
        run_id: outcome.error_kind
        for run_id, outcome in campaign.failures.items()
    }


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            CampaignRunner(workers=0)

    def test_parallel_requires_process_isolation(self):
        with pytest.raises(ConfigError):
            CampaignRunner(workers=2, isolation="inline")


class TestParallelMatchesSerial:
    def test_mixed_campaign_bit_identical(self, tmp_path):
        specs = _mixed_specs()
        serial = CampaignRunner(
            str(tmp_path / "serial"), workers=1, isolation="process"
        ).run(specs)
        parallel = CampaignRunner(
            str(tmp_path / "parallel"), workers=4, isolation="process"
        ).run(specs)

        # Same per-point numbers, same taxonomy, spec iteration order.
        assert list(parallel.outcomes) == list(serial.outcomes)
        assert _results_view(parallel) == _results_view(serial)
        assert _failures_view(parallel) == _failures_view(serial)

        m_serial = json.load(open(tmp_path / "serial" / MANIFEST_NAME))
        m_parallel = json.load(open(tmp_path / "parallel" / MANIFEST_NAME))
        assert m_parallel["status"] == m_serial["status"] == "complete"
        assert m_parallel["ok"] == m_serial["ok"]
        assert m_parallel["failed"] == m_serial["failed"]
        assert m_parallel["metrics"] == m_serial["metrics"]
        assert m_serial["policy"]["workers"] == 1
        assert m_parallel["policy"]["workers"] == 4

        # Same checkpoint entries; only the append order may differ.
        def entries(directory):
            return {
                entry["run_id"]: (entry["status"], entry["fingerprint"])
                for entry in map(
                    json.loads, open(directory / CHECKPOINT_NAME)
                )
            }

        assert entries(tmp_path / "parallel") == entries(tmp_path / "serial")


class TestParallelRetry:
    def test_transient_crash_recovers_via_reschedule(self, tmp_path):
        sleeps = []
        campaign = CampaignRunner(
            str(tmp_path / "camp"), workers=2, isolation="process",
            retries=2, backoff_base=0.05, sleep=sleeps.append,
        ).run(
            [_spec("flaky", faults=FaultSpec(crash_at=100, crash_attempts=1))]
        )
        outcome = campaign.outcomes["flaky"]
        assert outcome.ok
        assert outcome.attempts == 2
        # With nothing else runnable the scheduler slept out exactly one
        # backoff; it never blocks a busy pool.
        assert len(sleeps) == 1
        assert 0.0 < sleeps[0] <= 0.05

    def test_retries_exhaust_with_serial_attempt_count(self, tmp_path):
        campaign = CampaignRunner(
            str(tmp_path / "camp"), workers=2, isolation="process",
            retries=2, backoff_base=0.0,
        ).run([_spec("doomed", faults=FaultSpec(crash_at=100))])
        outcome = campaign.failures["doomed"]
        assert outcome.error_kind == "SimulationError"
        assert outcome.attempts == 3


class TestParallelFailFast:
    def test_fail_fast_notifies_stops_and_writes_manifest(self, tmp_path):
        seen = []
        camp = str(tmp_path / "camp")
        with pytest.raises(TraceFormatError):
            CampaignRunner(
                camp, workers=2, isolation="process", on_error="fail",
                on_outcome=lambda o: seen.append((o.run_id, o.ok)),
            ).run(
                [
                    _spec("bad", faults=FaultSpec(corrupt_at=50)),
                    _spec("rest1", seed=2),
                    _spec("rest2", seed=3),
                ]
            )
        # The failing outcome itself reached the terminal callback.
        assert ("bad", False) in seen
        manifest = json.load(open(os.path.join(camp, MANIFEST_NAME)))
        assert manifest["status"] == "failed"
        assert any(f["run_id"] == "bad" for f in manifest["failures"])


class TestParallelResume:
    def test_interrupt_then_resume_completes_identically(self, tmp_path):
        specs = [_spec(f"p{i}", seed=i + 1) for i in range(6)]
        reference = CampaignRunner(
            str(tmp_path / "ref"), workers=4, isolation="process"
        ).run(specs)

        camp = str(tmp_path / "camp")
        seen = []

        def interrupt_after_two(outcome):
            seen.append(outcome.run_id)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                camp, workers=4, isolation="process",
                on_outcome=interrupt_after_two,
            ).run(specs)
        assert json.load(open(os.path.join(camp, MANIFEST_NAME)))[
            "status"
        ] == "interrupted"

        resumed = CampaignRunner(
            camp, workers=4, isolation="process", resume=True
        ).run(specs)
        # The two checkpointed points (in whatever order they finished)
        # were skipped; everything else ran; the numbers are identical.
        assert set(resumed.resumed) == set(seen[:2])
        assert _results_view(resumed) == _results_view(reference)
        final = json.load(open(os.path.join(camp, MANIFEST_NAME)))
        assert final["status"] == "complete"
        assert final["resumed_from_checkpoint"] == 2

    def test_out_of_order_checkpoint_resumes_in_full(self, tmp_path):
        # Simulate a parallel campaign's completion-order checkpoint by
        # reversing a serial one, then resume through both schedules.
        specs = [_spec(f"p{i}", seed=i + 1) for i in range(4)]
        camp = str(tmp_path / "camp")
        first = CampaignRunner(camp, isolation="inline").run(specs)
        path = os.path.join(camp, CHECKPOINT_NAME)
        lines = [line for line in open(path) if line.strip()]
        with open(path, "w") as handle:
            handle.writelines(reversed(lines))

        for workers in (1, 4):
            resumed = CampaignRunner(
                camp, workers=workers, isolation="process", resume=True
            ).run(specs)
            assert resumed.resumed == [spec.run_id for spec in specs]
            assert _results_view(resumed) == _results_view(first)


@pytest.mark.slow
class TestParallelTimeout:
    def test_deadline_kills_only_the_hung_worker(self, tmp_path):
        specs = [
            _spec("hang", faults=FaultSpec(hang_at=50, hang_seconds=60.0)),
            _spec("ok1", seed=2),
            _spec("ok2", stride_config()),
        ]
        parallel = CampaignRunner(
            str(tmp_path / "parallel"), workers=2, timeout=2.0,
            isolation="process",
        ).run(specs)
        assert parallel.failures["hang"].error_kind == "RunTimeoutError"
        assert set(parallel.results) == {"ok1", "ok2"}

        serial = CampaignRunner(
            str(tmp_path / "serial"), timeout=2.0, isolation="process"
        ).run(specs)
        assert _results_view(parallel) == _results_view(serial)
        assert _failures_view(parallel) == _failures_view(serial)
