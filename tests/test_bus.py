"""Unit tests for the interval-reservation bus model."""

from repro.config import BusConfig
from repro.memory.bus import Bus


def _bus(bandwidth=8):
    return Bus(BusConfig(name="test", bytes_per_cycle=bandwidth))


class TestBusBasics:
    def test_initially_free(self):
        assert _bus().is_free_at(0)
        assert _bus().is_free_at(1000)

    def test_acquire_returns_start(self):
        bus = _bus()
        assert bus.acquire(5, 32) == 5

    def test_busy_during_transfer(self):
        bus = _bus()
        bus.acquire(10, 32)  # 4 cycles: busy [10, 14)
        assert not bus.is_free_at(10)
        assert not bus.is_free_at(13)
        assert bus.is_free_at(14)
        assert bus.is_free_at(9)

    def test_serializes_overlapping_requests(self):
        bus = _bus()
        first = bus.acquire(0, 32)
        second = bus.acquire(0, 32)
        assert first == 0
        assert second == 4

    def test_future_reservation_leaves_gap_free(self):
        """The window between a request and its refill must stay free —
        this is the slack stream-buffer prefetches use."""
        bus = _bus()
        bus.acquire(20, 32)  # refill booked for [20, 24)
        assert bus.is_free_at(5)
        assert bus.is_free_at(19)
        assert not bus.is_free_at(21)

    def test_fits_transfer_into_gap(self):
        bus = _bus()
        bus.acquire(0, 32)  # [0, 4)
        bus.acquire(20, 32)  # [20, 24)
        start = bus.acquire(0, 32)  # should slot into [4, 8)
        assert start == 4

    def test_skips_too_small_gap(self):
        bus = _bus()
        bus.acquire(0, 32)  # [0, 4)
        bus.acquire(6, 32)  # [6, 10)
        start = bus.acquire(0, 32)  # gap [4, 6) too small for 4 cycles
        assert start == 10


class TestBusStats:
    def test_busy_cycles_accumulate(self):
        bus = _bus()
        bus.acquire(0, 32)
        bus.acquire(0, 16)
        assert bus.busy_cycles == 6
        assert bus.transactions == 2

    def test_utilization(self):
        bus = _bus()
        bus.acquire(0, 32)
        assert bus.utilization(8) == 0.5
        assert bus.utilization(0) == 0.0

    def test_utilization_capped_at_one(self):
        bus = _bus()
        bus.acquire(0, 800)
        assert bus.utilization(10) == 1.0

    def test_reset_stats(self):
        bus = _bus()
        bus.acquire(0, 32)
        bus.reset_stats()
        assert bus.busy_cycles == 0
        assert bus.transactions == 0

    def test_prune_discards_past_reservations(self):
        bus = _bus()
        for i in range(100):
            bus.acquire(i * 10, 16)
        assert bus.is_free_at(10_000)  # also prunes
        assert bus.busy_cycles == 200
