"""Docs stay true: links resolve, snippets parse, docstrings exist."""

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPTS = os.path.join(REPO_ROOT, "scripts")


def _load(script):
    spec = importlib.util.spec_from_file_location(
        script, os.path.join(SCRIPTS, script + ".py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load("check_docs")
check_docstrings = _load("check_docstrings")


class TestCheckDocs:
    def test_static_pass_is_clean(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(SCRIPTS, "check_docs.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_every_doc_page_exists(self):
        for path in check_docs.DOC_FILES:
            assert os.path.exists(os.path.join(REPO_ROOT, path)), path

    def test_index_links_every_docs_page(self):
        index = open(os.path.join(REPO_ROOT, "docs", "index.md")).read()
        for path in check_docs.DOC_FILES:
            if path.startswith("docs/") and path != "docs/index.md":
                assert os.path.basename(path) in index, path

    def test_readme_points_at_docs(self):
        readme = open(os.path.join(REPO_ROOT, "README.md")).read()
        assert "docs/index.md" in readme

    def test_detects_broken_link(self):
        problems = []
        check_docs.check_links(
            "docs/index.md", "[gone](does-not-exist.md)", problems
        )
        assert problems

    def test_detects_bad_cli_snippet(self):
        problems = []
        check_docs.check_commands(
            "x.md", "```bash\nrepro-sim run --no-such-flag\n```", problems
        )
        assert problems

    def test_good_cli_snippet_parses(self):
        problems = []
        check_docs.check_commands(
            "x.md",
            "```bash\nrepro-sim run health --machine psb --metrics\n```",
            problems,
        )
        assert problems == []

    def test_cli_argv_strips_env_prefixes_and_continuations(self):
        commands = list(check_docs.shell_commands(
            "```bash\nA_B=1 repro-sim run health \\\n  --metrics\n```"
        ))
        assert [c.split() for c in commands] == [
            ["A_B=1", "repro-sim", "run", "health", "--metrics"]
        ]
        assert check_docs.cli_argv(commands[0]) == [
            "run", "health", "--metrics"
        ]

    def test_cli_argv_ignores_other_tools(self):
        assert check_docs.cli_argv("pytest tests/") is None
        assert check_docs.cli_argv("pip install -e .") is None
        assert check_docs.cli_argv("python -m repro workloads") == [
            "workloads"
        ]

    def test_detects_broken_python_fence(self):
        problems = []
        check_docs.check_python_fences(
            "x.md", "```python\ndef broken(:\n```", problems
        )
        assert problems


class TestCheckDocstrings:
    def test_public_api_is_documented(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(SCRIPTS, "check_docstrings.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_detects_missing_docstring(self):
        class Undocumented:
            """Doc."""

            def method(self):
                pass

        problem = check_docstrings._docstring_problem(
            "x.method", Undocumented.method
        )
        assert "missing docstring" in problem

    def test_detects_non_sentence_first_line(self):
        def wrapped():
            """A first line that wraps without
            ending punctuation."""

        problem = check_docstrings._docstring_problem("x.wrapped", wrapped)
        assert "not a sentence" in problem

    def test_accepts_clean_docstring(self):
        def clean():
            """Do the thing."""

        assert check_docstrings._docstring_problem("x.clean", clean) is None
