"""Unit tests for the Palacharla-Kessler minimum-delta predictor."""

import pytest

from repro.predictors.mindelta import MinimumDeltaPredictor


class TestStrideDetection:
    def test_detects_unit_stride_as_block_stride(self):
        """Deltas smaller than the block size become one signed block."""
        predictor = MinimumDeltaPredictor(block_size=32)
        for i in range(6):
            predictor.train(0x100, 0x10000 + i * 8)
        assert predictor.region_stride(0x10000) == 32

    def test_detects_negative_small_stride(self):
        predictor = MinimumDeltaPredictor(block_size=32)
        # Descend within one 4 KB region.
        for i in range(6):
            predictor.train(0x100, 0x10FF0 - i * 8)
        assert predictor.region_stride(0x10FF0) == -32

    def test_detects_large_stride_exactly(self):
        predictor = MinimumDeltaPredictor(block_size=32)
        for i in range(6):
            predictor.train(0x100, 0x10000 + i * 256)
        assert predictor.region_stride(0x10000) == 256

    def test_minimum_over_history_window(self):
        """Two interleaved streams in one region: the minimum delta wins
        (the global-history weakness the paper contrasts with Farkas)."""
        predictor = MinimumDeltaPredictor(block_size=32, region_bytes=65536)
        for i in range(6):
            predictor.train(0x100, 0x10000 + i * 512)
            predictor.train(0x200, 0x10100 + i * 512)
        # The min delta between the two interleaved streams is 256.
        assert abs(predictor.region_stride(0x10000)) <= 512

    def test_regions_are_independent(self):
        predictor = MinimumDeltaPredictor(block_size=32, region_bytes=4096)
        for i in range(4):
            predictor.train(0x100, 0x10000 + i * 64)
            predictor.train(0x200, 0x80000 + i * 512)
        assert predictor.region_stride(0x10000) == 64
        assert predictor.region_stride(0x80000) == 512


class TestStreamInterface:
    def test_stream_state_carries_region_stride(self):
        predictor = MinimumDeltaPredictor(block_size=32)
        for i in range(5):
            predictor.train(0x100, 0x10000 + i * 128)
        state = predictor.make_stream_state(0x100, 0x10200)
        assert state.stride == 128
        assert predictor.next_prediction(state) == 0x10200 + 128

    def test_no_prediction_without_stride(self):
        predictor = MinimumDeltaPredictor()
        predictor.train(0x100, 0x10000)
        state = predictor.make_stream_state(0x100, 0x10000)
        assert predictor.next_prediction(state) is None

    def test_always_allocation_ready(self):
        assert MinimumDeltaPredictor().allocation_ready(0xABC)

    def test_table_capacity_evicts_lru_region(self):
        predictor = MinimumDeltaPredictor(region_bytes=4096, table_entries=2)
        predictor.train(0, 0x1000)
        predictor.train(0, 0x2000)
        predictor.train(0, 0x3000)  # evicts region of 0x1000
        assert predictor.region_stride(0x1000) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MinimumDeltaPredictor(region_bytes=0)
