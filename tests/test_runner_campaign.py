"""End-to-end campaign tests under real process isolation.

These spawn worker processes and (in the acceptance test) wait out a
real wall-clock timeout, so the long ones carry the ``slow`` marker:
deselect locally with ``-m "not slow"``.
"""

import itertools
import json
import os

import pytest

from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    FaultSpec,
    RunSpec,
    TraceFileSpec,
    WorkloadSpec,
    corrupt_trace_file,
)
from repro.sim import baseline_config, psb_config, stride_config
from repro.trace.io import save_trace
from repro.workloads import get_workload

INSTRUCTIONS = 1_000
WARMUP = 200


def _workload_spec(run_id, config, faults=None):
    return RunSpec(
        run_id=run_id,
        config=config,
        trace=WorkloadSpec("health", seed=1),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        faults=faults,
    )


def _campaign_specs(tmp_path):
    """Three healthy points plus a crash, a hang, and a corrupt trace."""
    trace_path = str(tmp_path / "corrupt.trace")
    save_trace(
        trace_path,
        itertools.islice(get_workload("health", seed=1), INSTRUCTIONS + 200),
    )
    corrupt_trace_file(trace_path, line_number=400)
    return [
        _workload_spec("health/base", baseline_config()),
        _workload_spec("health/stride", stride_config()),
        _workload_spec(
            "health/crash", baseline_config(), faults=FaultSpec(crash_at=100)
        ),
        _workload_spec(
            "health/hang", baseline_config(),
            faults=FaultSpec(hang_at=100, hang_seconds=60.0),
        ),
        RunSpec(
            run_id="health/corrupt",
            config=baseline_config(),
            trace=TraceFileSpec(trace_path),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
        ),
        _workload_spec("health/psb", psb_config()),
    ]


def test_process_isolation_matches_inline_result(tmp_path):
    spec = _workload_spec("health/base", baseline_config())
    inline = CampaignRunner(isolation="inline").run_one(spec)
    isolated = CampaignRunner(isolation="process").run_one(spec)
    assert isolated.ipc == inline.ipc
    assert isolated.cycles == inline.cycles


@pytest.mark.slow
def test_acceptance_faulted_campaign_completes_and_resumes(tmp_path):
    """The ISSUE acceptance campaign.

    A sweep with an injected crash, an injected hang (caught by the
    timeout), and a genuinely corrupt trace record must (1) complete
    every remaining point, (2) record the three failures in the
    manifest, and (3) after a simulated interrupt, resume from the
    checkpoint without re-running completed points and with identical
    results to an uninterrupted run.
    """
    specs = _campaign_specs(tmp_path)

    def runner(campaign_dir, **kwargs):
        return CampaignRunner(
            campaign_dir,
            timeout=2.5,
            retries=0,
            on_error="skip",
            isolation="process",
            **kwargs,
        )

    # --- uninterrupted reference run --------------------------------
    ref_dir = str(tmp_path / "reference")
    reference = runner(ref_dir).run(specs)
    assert set(reference.results) == {
        "health/base", "health/stride", "health/psb",
    }
    failure_kinds = {
        run_id: outcome.error_kind
        for run_id, outcome in reference.failures.items()
    }
    assert failure_kinds == {
        "health/crash": "SimulationError",
        "health/hang": "RunTimeoutError",
        "health/corrupt": "TraceFormatError",
    }
    manifest = json.load(open(os.path.join(ref_dir, MANIFEST_NAME)))
    assert manifest["status"] == "complete"
    assert manifest["ok"] == 3 and manifest["failed"] == 3
    assert {f["run_id"]: f["kind"] for f in manifest["failures"]} == failure_kinds

    # --- interrupted run: die after three terminal outcomes ----------
    camp_dir = str(tmp_path / "campaign")
    seen = []

    def interrupt_after_three(outcome):
        seen.append(outcome.run_id)
        if len(seen) == 3:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        runner(camp_dir, on_outcome=interrupt_after_three).run(specs)
    assert json.load(open(os.path.join(camp_dir, MANIFEST_NAME)))[
        "status"
    ] == "interrupted"

    # --- resume: completed points skipped, results identical ---------
    resumed = runner(camp_dir, resume=True).run(specs)
    assert resumed.resumed == seen  # exactly the pre-interrupt points
    checkpoint_lines = [
        line
        for line in open(os.path.join(camp_dir, CHECKPOINT_NAME))
        if line.strip()
    ]
    assert len(checkpoint_lines) == len(specs)  # no point ran twice

    assert {
        run_id: (result.ipc, result.cycles)
        for run_id, result in resumed.results.items()
    } == {
        run_id: (result.ipc, result.cycles)
        for run_id, result in reference.results.items()
    }
    assert {
        run_id: outcome.error_kind
        for run_id, outcome in resumed.failures.items()
    } == failure_kinds
    final_manifest = json.load(open(os.path.join(camp_dir, MANIFEST_NAME)))
    assert final_manifest["status"] == "complete"
    assert final_manifest["failed"] == 3


class TestCheckpointReplayEdgeCases:
    """Replay must shrug off the artifacts a hostile shutdown leaves."""

    def _two_specs(self):
        return [
            _workload_spec("health/base", baseline_config()),
            _workload_spec("health/stride", stride_config()),
        ]

    def test_duplicate_run_id_last_entry_wins(self, tmp_path):
        from repro.runner.checkpoint import encode_entry

        camp = str(tmp_path / "camp")
        specs = self._two_specs()
        first = CampaignRunner(camp, isolation="process").run(specs)
        # Re-append the base point's entry with doctored bookkeeping —
        # the kind of duplicate a crash between append and manifest
        # write can produce.  Replay must take the *last* entry.
        path = os.path.join(camp, CHECKPOINT_NAME)
        entry = json.loads(open(path).readline())
        entry.pop("crc32", None)
        entry["attempts"] = 7
        with open(path, "a") as handle:
            handle.write(encode_entry(entry) + "\n")
        resumed = CampaignRunner(
            camp, isolation="process", resume=True
        ).run(specs)
        assert set(resumed.resumed) == {"health/base", "health/stride"}
        assert resumed.outcomes["health/base"].attempts == 7
        assert resumed.results["health/base"].ipc == first.results[
            "health/base"
        ].ipc

    def test_torn_trailing_line_resumes_under_parallel_workers(
        self, tmp_path
    ):
        camp = str(tmp_path / "camp")
        specs = self._two_specs()
        reference = CampaignRunner(camp, isolation="process").run(specs)
        # Tear the final entry mid-line, as a kill -9 mid-append would.
        path = os.path.join(camp, CHECKPOINT_NAME)
        lines = open(path).read().splitlines()
        torn_id = json.loads(lines[-1])["run_id"]
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n" + lines[-1][:37])
        resumed = CampaignRunner(
            camp, workers=2, isolation="process", resume=True
        ).run(specs)
        # The torn point re-ran; the intact one replayed; numbers match.
        assert torn_id not in resumed.resumed
        assert len(resumed.resumed) == 1
        assert {
            run_id: result.ipc for run_id, result in resumed.results.items()
        } == {
            run_id: result.ipc
            for run_id, result in reference.results.items()
        }
        final = json.load(open(os.path.join(camp, MANIFEST_NAME)))
        assert final["status"] == "complete"
        assert final["ok"] == 2

    def test_fingerprint_mismatch_reruns_under_parallel_workers(
        self, tmp_path
    ):
        camp = str(tmp_path / "camp")
        CampaignRunner(camp, isolation="process").run(self._two_specs())
        changed = [
            RunSpec(
                run_id="health/base",
                config=baseline_config(),
                trace=WorkloadSpec("health", seed=1),
                max_instructions=INSTRUCTIONS + 500,
                warmup_instructions=WARMUP,
            ),
            _workload_spec("health/stride", stride_config()),
        ]
        resumed = CampaignRunner(
            camp, workers=2, isolation="process", resume=True
        ).run(changed)
        assert resumed.resumed == ["health/stride"]
        assert resumed.results["health/base"].instructions == (
            INSTRUCTIONS + 500 - WARMUP
        )


@pytest.mark.slow
def test_timeout_kills_hung_worker_and_campaign_continues(tmp_path):
    specs = [
        _workload_spec(
            "hang", baseline_config(),
            faults=FaultSpec(hang_at=50, hang_seconds=60.0),
        ),
        _workload_spec("after", baseline_config()),
    ]
    campaign = CampaignRunner(
        str(tmp_path / "camp"), timeout=2.0, retries=0, isolation="process"
    ).run(specs)
    assert campaign.failures["hang"].error_kind == "RunTimeoutError"
    assert "after" in campaign.results  # the campaign outlived the hang


class TestGracefulStop:
    """request_stop(): finish the current point, write a resumable
    ``interrupted`` manifest, and hand the rest to the next run."""

    def _four_specs(self):
        return [
            _workload_spec("health/base", baseline_config()),
            _workload_spec("health/stride", stride_config()),
            _workload_spec("health/psb", psb_config()),
            _workload_spec(
                "health/base-again", baseline_config()
            ),
        ]

    def test_serial_stop_interrupts_and_resume_completes(self, tmp_path):
        camp = str(tmp_path / "camp")
        specs = self._four_specs()
        runner = CampaignRunner(camp, isolation="inline")
        runner._on_outcome = lambda outcome: runner.request_stop()
        result = runner.run(specs)
        assert runner.stop_requested
        assert result.manifest["status"] == "interrupted"
        assert len(result.outcomes) == 1

        resumed = CampaignRunner(camp, isolation="inline", resume=True).run(
            specs
        )
        assert resumed.manifest["status"] == "complete"
        assert resumed.manifest["ok"] == 4
        assert resumed.manifest["resumed_from_checkpoint"] == 1
        # No point ran twice: one checkpoint line per run_id.
        with open(os.path.join(camp, CHECKPOINT_NAME)) as handle:
            run_ids = [
                json.loads(line)["run_id"]
                for line in handle
                if line.strip()
            ]
        assert sorted(run_ids) == sorted(set(run_ids))

    def test_stale_stop_request_does_not_leak_into_a_new_run(self, tmp_path):
        # run() clears any stop requested before it started, so a
        # runner reused after an interruption executes normally.
        camp = str(tmp_path / "camp")
        runner = CampaignRunner(camp, isolation="inline")
        runner.request_stop()
        result = runner.run(self._four_specs())
        assert not runner.stop_requested
        assert result.manifest["status"] == "complete"
        assert result.manifest["ok"] == 4

    def test_sigterm_with_handle_signals_stops_gracefully(self, tmp_path):
        import signal as _signal

        camp = str(tmp_path / "camp")
        runner = CampaignRunner(
            camp, isolation="inline", handle_signals=True
        )
        before = _signal.getsignal(_signal.SIGTERM)
        runner._on_outcome = lambda outcome: os.kill(
            os.getpid(), _signal.SIGTERM
        )
        result = runner.run(self._four_specs())
        # The signal stopped the campaign instead of killing the
        # process, and the previous handler is back in place.
        assert result.manifest["status"] == "interrupted"
        assert len(result.outcomes) == 1
        assert _signal.getsignal(_signal.SIGTERM) is before

    @pytest.mark.slow
    def test_parallel_stop_interrupts_and_resume_completes(self, tmp_path):
        camp = str(tmp_path / "camp")
        specs = self._four_specs()
        runner = CampaignRunner(camp, isolation="process", workers=2)
        runner._on_outcome = lambda outcome: runner.request_stop()
        result = runner.run(specs)
        assert result.manifest["status"] == "interrupted"
        assert len(result.outcomes) < 4

        resumed = CampaignRunner(camp, isolation="inline", resume=True).run(
            specs
        )
        assert resumed.manifest["status"] == "complete"
        assert resumed.manifest["ok"] == 4
        with open(os.path.join(camp, CHECKPOINT_NAME)) as handle:
            run_ids = [
                json.loads(line)["run_id"]
                for line in handle
                if line.strip()
            ]
        assert sorted(run_ids) == sorted(set(run_ids))
