"""Lease ownership semantics: acquisition, renewal, fencing, expiry.

Time is injected everywhere, so every race the lease protocol exists
to win — the zombie holder, the expired-then-reclaimed job, the
takeover mid-heartbeat — is reproduced deterministically, no sleeps.
"""

import json
import os

import pytest

from repro.errors import LeaseLostError
from repro.service.lease import Lease, LeaseManager


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def manager(tmp_path, clock):
    return LeaseManager(str(tmp_path / "leases"), ttl=30.0, clock=clock)


class TestAcquire:
    def test_fresh_acquisition_starts_at_generation_one(self, manager):
        lease = manager.acquire("job-a", "worker-1")
        assert lease is not None
        assert lease.generation == 1
        assert lease.owner == "worker-1"

    def test_live_lease_blocks_other_owners(self, manager):
        assert manager.acquire("job-a", "worker-1") is not None
        assert manager.acquire("job-a", "worker-2") is None

    def test_same_owner_may_reacquire(self, manager):
        first = manager.acquire("job-a", "worker-1")
        again = manager.acquire("job-a", "worker-1")
        assert again is not None
        # Re-acquisition still bumps the generation: the old handle is
        # fenced out, even in the same process.
        assert again.generation == first.generation + 1

    def test_expired_lease_is_claimable_with_bumped_generation(
        self, manager, clock
    ):
        first = manager.acquire("job-a", "worker-1")
        clock.advance(31.0)
        second = manager.acquire("job-a", "worker-2")
        assert second is not None
        assert second.generation == first.generation + 1

    def test_unreadable_lease_file_is_treated_as_absent(
        self, manager, tmp_path
    ):
        manager.acquire("job-a", "worker-1")
        path = os.path.join(manager.lease_dir, "job-a.lease")
        with open(path, "w") as handle:
            handle.write("{torn")
        assert manager.load("job-a") is None
        lease = manager.acquire("job-a", "worker-2")
        assert lease is not None

    def test_lease_file_is_valid_json(self, manager):
        manager.acquire("job-a", "worker-1")
        path = os.path.join(manager.lease_dir, "job-a.lease")
        with open(path) as handle:
            data = json.load(handle)
        assert data["job_id"] == "job-a"
        assert data["owner"] == "worker-1"


class TestRenew:
    def test_renewal_pushes_expiry_forward(self, manager, clock):
        lease = manager.acquire("job-a", "worker-1")
        clock.advance(20.0)
        renewed = manager.renew(lease)
        assert renewed.expires_at == clock.now + 30.0
        # The heartbeat keeps the lease alive past its original TTL.
        clock.advance(20.0)
        assert not manager.load("job-a").expired(clock.now)

    def test_renewing_a_vanished_lease_raises(self, manager):
        lease = manager.acquire("job-a", "worker-1")
        os.remove(os.path.join(manager.lease_dir, "job-a.lease"))
        with pytest.raises(LeaseLostError):
            manager.renew(lease)

    def test_renewing_after_takeover_raises(self, manager, clock):
        stale = manager.acquire("job-a", "worker-1")
        clock.advance(31.0)
        fresh = manager.acquire("job-a", "worker-2")
        assert fresh is not None
        with pytest.raises(LeaseLostError):
            manager.renew(stale)

    def test_renewing_an_expired_lease_raises(self, manager, clock):
        lease = manager.acquire("job-a", "worker-1")
        clock.advance(31.0)
        # Nobody took the job yet, but un-expiring a corpse would race
        # the reaper: the holder must re-acquire, not renew.
        with pytest.raises(LeaseLostError):
            manager.renew(lease)

    def test_stale_generation_cannot_renew(self, manager):
        stale = manager.acquire("job-a", "worker-1")
        manager.acquire("job-a", "worker-1")  # same owner, generation 2
        with pytest.raises(LeaseLostError):
            manager.renew(stale)


class TestRelease:
    def test_release_by_holder_removes_the_file(self, manager):
        lease = manager.acquire("job-a", "worker-1")
        assert manager.release(lease) is True
        assert manager.load("job-a") is None

    def test_release_by_fenced_holder_is_refused(self, manager, clock):
        stale = manager.acquire("job-a", "worker-1")
        clock.advance(31.0)
        manager.acquire("job-a", "worker-2")
        assert manager.release(stale) is False
        # The new holder's lease survives the stale release attempt.
        assert manager.load("job-a").owner == "worker-2"

    def test_double_release_is_false(self, manager):
        lease = manager.acquire("job-a", "worker-1")
        assert manager.release(lease) is True
        assert manager.release(lease) is False


class TestForceExpire:
    def test_force_expired_lease_fails_renewal_and_frees_the_job(
        self, manager
    ):
        lease = manager.acquire("job-a", "worker-1")
        manager.force_expire(lease)
        with pytest.raises(LeaseLostError):
            manager.renew(lease)
        assert manager.acquire("job-a", "worker-2") is not None

    def test_force_expiring_a_missing_lease_is_a_noop(self, manager):
        ghost = Lease(
            job_id="ghost", owner="w", generation=1,
            acquired_at=0.0, renewed_at=0.0, ttl=1.0,
        )
        manager.force_expire(ghost)  # must not raise
        assert manager.load("ghost") is None
