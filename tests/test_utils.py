"""Unit tests for repro.utils."""

import pytest

from repro.utils import (
    block_address,
    block_index,
    fits_signed,
    is_power_of_two,
    log2_int,
    min_bits_signed,
    sign_extend,
)


class TestBlockAddress:
    def test_aligns_down(self):
        assert block_address(0x1234, 32) == 0x1220

    def test_already_aligned(self):
        assert block_address(0x1220, 32) == 0x1220

    def test_zero(self):
        assert block_address(0, 64) == 0

    def test_block_index(self):
        assert block_index(0x40, 32) == 2
        assert block_index(0x5F, 32) == 2
        assert block_index(0x60, 32) == 3


class TestPowerOfTwo:
    def test_powers(self):
        for exponent in range(12):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2(self):
        assert log2_int(1) == 0
        assert log2_int(32) == 5
        assert log2_int(4096) == 12

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(48)


class TestSignedHelpers:
    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_sign_extend_negative(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x80, 8) == -128

    def test_sign_extend_truncates_high_bits(self):
        assert sign_extend(0x1FF, 8) == -1

    def test_fits_signed_bounds(self):
        assert fits_signed(127, 8)
        assert fits_signed(-128, 8)
        assert not fits_signed(128, 8)
        assert not fits_signed(-129, 8)

    def test_fits_signed_16_bits(self):
        # The paper's differential Markov entries are 16 bits.
        assert fits_signed(32767, 16)
        assert fits_signed(-32768, 16)
        assert not fits_signed(32768, 16)

    def test_min_bits_zero(self):
        assert min_bits_signed(0) == 1

    def test_min_bits_roundtrip(self):
        for value in (-70000, -129, -128, -1, 1, 127, 128, 65535):
            bits = min_bits_signed(value)
            assert fits_signed(value, bits)
            assert not fits_signed(value, bits - 1)
