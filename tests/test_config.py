"""Unit tests for repro.config."""

import pytest

from repro.config import (
    AllocationPolicy,
    BusConfig,
    CacheConfig,
    DisambiguationPolicy,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
)


class TestCacheConfig:
    def test_baseline_l1_geometry(self):
        config = SimConfig().l1_data
        assert config.size_bytes == 32 * 1024
        assert config.associativity == 4
        assert config.block_size == 32
        assert config.num_sets == 256
        assert config.num_blocks == 1024

    def test_baseline_l2_geometry(self):
        config = SimConfig().l2_unified
        assert config.size_bytes == 1024 * 1024
        assert config.block_size == 64
        assert config.hit_latency == 12

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            CacheConfig(
                name="bad", size_bytes=1024, associativity=2, block_size=24,
                hit_latency=1,
            )

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(
                name="bad", size_bytes=1000, associativity=3, block_size=32,
                hit_latency=1,
            )


class TestBusConfig:
    def test_paper_bandwidths(self):
        config = SimConfig()
        assert config.l1_l2_bus.bytes_per_cycle == 8
        assert config.l2_mem_bus.bytes_per_cycle == 4

    def test_transfer_cycles_rounds_up(self):
        bus = BusConfig(name="b", bytes_per_cycle=8)
        assert bus.transfer_cycles(32) == 4
        assert bus.transfer_cycles(33) == 5
        assert bus.transfer_cycles(1) == 1


class TestCoreConfig:
    def test_paper_parameters(self):
        core = SimConfig().core
        assert core.fetch_width == 8
        assert core.rob_entries == 128
        assert core.lsq_entries == 64
        assert core.mispredict_penalty == 8
        assert core.store_forward_latency == 2
        assert core.branch_predictions_per_cycle == 2
        assert core.disambiguation == DisambiguationPolicy.PERFECT_STORE_SETS


class TestSimConfigHelpers:
    def test_with_prefetcher(self):
        base = SimConfig()
        psb = base.with_prefetcher(
            PrefetchConfig(kind=PrefetcherKind.PREDICTOR_DIRECTED)
        )
        assert base.prefetch.kind == PrefetcherKind.NONE
        assert psb.prefetch.kind == PrefetcherKind.PREDICTOR_DIRECTED

    def test_with_l1_resizes_only_l1(self):
        resized = SimConfig().with_l1(16 * 1024, 4)
        assert resized.l1_data.size_bytes == 16 * 1024
        assert resized.l2_unified.size_bytes == 1024 * 1024

    def test_with_disambiguation(self):
        nodis = SimConfig().with_disambiguation(
            DisambiguationPolicy.NO_DISAMBIGUATION
        )
        assert nodis.core.disambiguation == DisambiguationPolicy.NO_DISAMBIGUATION

    def test_configs_are_frozen(self):
        config = SimConfig()
        with pytest.raises(Exception):
            config.warmup_instructions = 5

    def test_default_prefetcher_is_none(self):
        assert SimConfig().prefetch.kind == PrefetcherKind.NONE

    def test_stream_buffer_paper_constants(self):
        sb = PrefetchConfig().stream_buffers
        assert sb.num_buffers == 8
        assert sb.entries_per_buffer == 4
        assert sb.priority_max == 12
        assert sb.priority_hit_bonus == 2
        assert sb.priority_age_period == 10
        assert sb.confidence_threshold == 1
        assert sb.allocation == AllocationPolicy.CONFIDENCE

    def test_markov_paper_constants(self):
        markov = PrefetchConfig().markov
        assert markov.entries == 2048
        assert markov.delta_bits == 16
        assert markov.differential
