"""Unit tests for repro.config."""

import pytest

from repro.config import (
    AllocationPolicy,
    BusConfig,
    CacheConfig,
    CoreConfig,
    DisambiguationPolicy,
    MarkovPredictorConfig,
    MemoryConfig,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
    StreamBufferConfig,
    StridePredictorConfig,
    TlbConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_baseline_l1_geometry(self):
        config = SimConfig().l1_data
        assert config.size_bytes == 32 * 1024
        assert config.associativity == 4
        assert config.block_size == 32
        assert config.num_sets == 256
        assert config.num_blocks == 1024

    def test_baseline_l2_geometry(self):
        config = SimConfig().l2_unified
        assert config.size_bytes == 1024 * 1024
        assert config.block_size == 64
        assert config.hit_latency == 12

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            CacheConfig(
                name="bad", size_bytes=1024, associativity=2, block_size=24,
                hit_latency=1,
            )

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(
                name="bad", size_bytes=1000, associativity=3, block_size=32,
                hit_latency=1,
            )


class TestBusConfig:
    def test_paper_bandwidths(self):
        config = SimConfig()
        assert config.l1_l2_bus.bytes_per_cycle == 8
        assert config.l2_mem_bus.bytes_per_cycle == 4

    def test_transfer_cycles_rounds_up(self):
        bus = BusConfig(name="b", bytes_per_cycle=8)
        assert bus.transfer_cycles(32) == 4
        assert bus.transfer_cycles(33) == 5
        assert bus.transfer_cycles(1) == 1


class TestCoreConfig:
    def test_paper_parameters(self):
        core = SimConfig().core
        assert core.fetch_width == 8
        assert core.rob_entries == 128
        assert core.lsq_entries == 64
        assert core.mispredict_penalty == 8
        assert core.store_forward_latency == 2
        assert core.branch_predictions_per_cycle == 2
        assert core.disambiguation == DisambiguationPolicy.PERFECT_STORE_SETS


class TestSimConfigHelpers:
    def test_with_prefetcher(self):
        base = SimConfig()
        psb = base.with_prefetcher(
            PrefetchConfig(kind=PrefetcherKind.PREDICTOR_DIRECTED)
        )
        assert base.prefetch.kind == PrefetcherKind.NONE
        assert psb.prefetch.kind == PrefetcherKind.PREDICTOR_DIRECTED

    def test_with_l1_resizes_only_l1(self):
        resized = SimConfig().with_l1(16 * 1024, 4)
        assert resized.l1_data.size_bytes == 16 * 1024
        assert resized.l2_unified.size_bytes == 1024 * 1024

    def test_with_disambiguation(self):
        nodis = SimConfig().with_disambiguation(
            DisambiguationPolicy.NO_DISAMBIGUATION
        )
        assert nodis.core.disambiguation == DisambiguationPolicy.NO_DISAMBIGUATION

    def test_configs_are_frozen(self):
        config = SimConfig()
        with pytest.raises(Exception):
            config.warmup_instructions = 5

    def test_default_prefetcher_is_none(self):
        assert SimConfig().prefetch.kind == PrefetcherKind.NONE

    def test_stream_buffer_paper_constants(self):
        sb = PrefetchConfig().stream_buffers
        assert sb.num_buffers == 8
        assert sb.entries_per_buffer == 4
        assert sb.priority_max == 12
        assert sb.priority_hit_bonus == 2
        assert sb.priority_age_period == 10
        assert sb.confidence_threshold == 1
        assert sb.allocation == AllocationPolicy.CONFIDENCE

    def test_markov_paper_constants(self):
        markov = PrefetchConfig().markov
        assert markov.entries == 2048
        assert markov.delta_bits == 16
        assert markov.differential


class TestConstructionValidation:
    """Invalid values fail at construction with the offending field named,
    instead of blowing up deep inside the simulator."""

    def test_non_positive_cache_size(self):
        with pytest.raises(ConfigError) as excinfo:
            CacheConfig(
                name="bad", size_bytes=0, associativity=2, block_size=32,
                hit_latency=1,
            )
        assert "size_bytes" in excinfo.value.field

    def test_non_positive_associativity(self):
        with pytest.raises(ConfigError) as excinfo:
            CacheConfig(
                name="bad", size_bytes=1024, associativity=0, block_size=32,
                hit_latency=1,
            )
        assert "associativity" in excinfo.value.field

    def test_config_error_is_a_value_error(self):
        """Legacy callers catching ValueError still work."""
        with pytest.raises(ValueError):
            CacheConfig(
                name="bad", size_bytes=-1, associativity=2, block_size=32,
                hit_latency=1,
            )

    def test_zero_bandwidth_bus(self):
        with pytest.raises(ConfigError):
            BusConfig(name="bad", bytes_per_cycle=0)

    def test_zero_entry_stride_predictor(self):
        with pytest.raises(ConfigError) as excinfo:
            StridePredictorConfig(entries=0)
        assert "StridePredictorConfig.entries" == excinfo.value.field

    def test_zero_entry_markov_predictor(self):
        with pytest.raises(ConfigError):
            MarkovPredictorConfig(entries=0)

    def test_zero_entry_tlb(self):
        with pytest.raises(ConfigError):
            TlbConfig(entries=0)

    def test_non_power_of_two_page_size(self):
        with pytest.raises(ConfigError):
            TlbConfig(page_size=1000)

    def test_negative_memory_latency(self):
        with pytest.raises(ConfigError):
            MemoryConfig(access_latency=-1)

    def test_zero_width_core(self):
        with pytest.raises(ConfigError) as excinfo:
            CoreConfig(issue_width=0)
        assert "issue_width" in excinfo.value.field

    def test_zero_buffer_stream_config(self):
        with pytest.raises(ConfigError):
            StreamBufferConfig(num_buffers=0)

    def test_confidence_initial_above_max(self):
        with pytest.raises(ConfigError):
            StridePredictorConfig(confidence_max=7, confidence_initial=8)

    def test_confidence_threshold_outside_counter_range(self):
        with pytest.raises(ConfigError) as excinfo:
            PrefetchConfig(
                stream_buffers=StreamBufferConfig(confidence_threshold=8),
                stride=StridePredictorConfig(confidence_max=7),
            )
        assert "confidence_threshold" in excinfo.value.field

    def test_threshold_at_counter_max_is_allowed(self):
        config = PrefetchConfig(
            stream_buffers=StreamBufferConfig(confidence_threshold=7),
            stride=StridePredictorConfig(confidence_max=7),
        )
        assert config.stream_buffers.confidence_threshold == 7
