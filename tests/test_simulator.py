"""Tests for the end-to-end simulator driver and presets."""

import pytest

from repro.config import (
    AllocationPolicy,
    PrefetcherKind,
    SchedulingPolicy,
)
from repro.sim import (
    SimulationResult,
    Simulator,
    baseline_config,
    paper_configs,
    psb_config,
    simulate,
    stride_config,
)
from repro.sim.presets import PAPER_PREFETCH_LABELS, sequential_config
from repro.sim.results import best_of
from repro.sim.sweep import FIGURE10_CACHES, cache_sweep, run_configs
from repro.workloads import get_workload

RUN = dict(max_instructions=4000, warmup_instructions=1000)


class TestSimulate:
    def test_baseline_run_produces_stats(self):
        result = simulate(baseline_config(), get_workload("health"), **RUN)
        assert result.instructions == 3000
        assert result.cycles > 0
        assert 0.0 < result.ipc < 8.0
        assert 0.0 <= result.l1_miss_rate <= 1.0
        assert result.avg_load_latency >= 1.0
        assert result.prefetches_issued == 0

    def test_psb_run_issues_prefetches(self):
        result = simulate(
            psb_config(), get_workload("health"),
            max_instructions=20000, warmup_instructions=5000,
        )
        assert result.prefetches_issued > 0
        assert 0.0 <= result.prefetch_accuracy <= 1.0

    def test_deterministic(self):
        a = simulate(baseline_config(), get_workload("burg", seed=3), **RUN)
        b = simulate(baseline_config(), get_workload("burg", seed=3), **RUN)
        assert a.ipc == b.ipc
        assert a.cycles == b.cycles

    def test_simulator_object_exposes_parts(self):
        simulator = Simulator(psb_config())
        assert simulator.controller is not None
        assert simulator.hierarchy.prefetcher is simulator.controller

    def test_baseline_has_no_controller(self):
        assert Simulator(baseline_config()).controller is None


class TestResults:
    def test_speedup_over(self):
        base = SimulationResult(
            label="base", instructions=100, cycles=200, ipc=0.5,
            l1_miss_rate=0.1, avg_load_latency=2.0, load_fraction=0.3,
            store_fraction=0.1, branch_misprediction_rate=0.05,
            l1_l2_bus_utilization=0.2, l2_mem_bus_utilization=0.1,
        )
        better = SimulationResult(
            label="psb", instructions=100, cycles=160, ipc=0.625,
            l1_miss_rate=0.1, avg_load_latency=1.5, load_fraction=0.3,
            store_fraction=0.1, branch_misprediction_rate=0.05,
            l1_l2_bus_utilization=0.3, l2_mem_bus_utilization=0.1,
        )
        assert better.speedup_over(base) == pytest.approx(25.0)
        assert base.speedup_over(base) == 0.0

    def test_best_of(self):
        base = simulate(baseline_config(), get_workload("health"), **RUN)
        assert best_of({"only": base}) == "only"
        assert best_of({}) is None

    def test_summary_readable(self):
        result = simulate(baseline_config(), get_workload("health"), **RUN)
        assert "IPC" in result.summary()


class TestPresets:
    def test_paper_configs_labels(self):
        assert tuple(paper_configs()) == PAPER_PREFETCH_LABELS

    def test_stride_preset(self):
        config = stride_config()
        assert config.prefetch.kind == PrefetcherKind.STRIDE_PC
        assert config.prefetch.stream_buffers.allocation == AllocationPolicy.TWO_MISS
        assert (
            config.prefetch.stream_buffers.scheduling
            == SchedulingPolicy.ROUND_ROBIN
        )

    def test_psb_preset_defaults_to_best(self):
        config = psb_config()
        assert config.prefetch.kind == PrefetcherKind.PREDICTOR_DIRECTED
        assert config.prefetch.stream_buffers.allocation == AllocationPolicy.CONFIDENCE
        assert config.prefetch.stream_buffers.scheduling == SchedulingPolicy.PRIORITY

    def test_sequential_preset_runs(self):
        result = simulate(sequential_config(), get_workload("turb3d"), **RUN)
        assert result.cycles > 0


class TestSweeps:
    def test_run_configs(self):
        configs = {"Base": baseline_config(), "Stride": stride_config()}
        results = run_configs(
            configs, lambda: get_workload("turb3d"), **RUN
        )
        assert set(results) == {"Base", "Stride"}
        assert results["Stride"].label == "Stride"

    def test_cache_sweep_covers_figure10_geometries(self):
        results = cache_sweep(
            baseline_config(), lambda: get_workload("health"), **RUN
        )
        assert set(results) == {label for __, __, label in FIGURE10_CACHES}

    def test_smaller_cache_misses_more(self):
        big = simulate(
            baseline_config().with_l1(32 * 1024, 4), get_workload("health"),
            max_instructions=20000, warmup_instructions=5000,
        )
        small = simulate(
            baseline_config().with_l1(4 * 1024, 4), get_workload("health"),
            max_instructions=20000, warmup_instructions=5000,
        )
        assert small.l1_miss_rate >= big.l1_miss_rate
