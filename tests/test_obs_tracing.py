"""Event tracing: ring buffer, category filters, and JSONL IO."""

import pickle

import pytest

from repro.cli import MACHINES
from repro.errors import ConfigError
from repro.obs import EventTrace, parse_categories, read_jsonl
from repro.obs.tracing import CATEGORIES
from repro.sim.simulator import Simulator
from repro.workloads import get_workload


class TestEventTrace:
    def test_emit_and_read_back(self):
        trace = EventTrace()
        trace.emit(10, "alloc", "allocate", buffer=3)
        events = trace.events()
        assert events == [
            {"cycle": 10, "category": "alloc", "event": "allocate",
             "buffer": 3}
        ]

    def test_ring_overflow_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for cycle in range(5):
            trace.emit(cycle, "demand", "miss")
        assert len(trace) == 3
        assert trace.emitted == 5
        assert trace.dropped == 2
        assert [e["cycle"] for e in trace.events()] == [2, 3, 4]

    def test_category_filter_drops_silently(self):
        trace = EventTrace(categories=["alloc"])
        assert trace.wants("alloc")
        assert not trace.wants("demand")
        trace.emit(1, "demand", "miss")
        trace.emit(2, "alloc", "allocate")
        assert len(trace) == 1
        assert trace.emitted == 1  # filtered events never count

    def test_events_by_category(self):
        trace = EventTrace()
        trace.emit(1, "alloc", "allocate")
        trace.emit(2, "demand", "miss")
        assert [e["cycle"] for e in trace.events("demand")] == [2]

    def test_counts(self):
        trace = EventTrace()
        trace.emit(1, "prefetch", "issue")
        trace.emit(2, "prefetch", "issue")
        trace.emit(3, "prefetch", "hit")
        assert trace.counts() == {"prefetch/hit": 1, "prefetch/issue": 2}

    def test_clear(self):
        trace = EventTrace()
        trace.emit(1, "demand", "miss")
        trace.clear()
        assert len(trace) == 0
        assert trace.emitted == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            EventTrace(capacity=0)

    def test_rejects_unknown_category(self):
        with pytest.raises(ConfigError) as excinfo:
            EventTrace(categories=["alloc", "nonsense"])
        assert "nonsense" in str(excinfo.value)

    def test_pickles_config_only(self):
        trace = EventTrace(capacity=16, categories=["prefetch"])
        trace.emit(1, "prefetch", "issue")
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.capacity == 16
        assert clone.categories == frozenset({"prefetch"})
        assert len(clone) == 0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.emit(5, "alloc", "deny", pc=0x40, reason="filter")
        trace.emit(9, "demand", "miss", latency=120)
        path = str(tmp_path / "events.jsonl")
        assert trace.write_jsonl(path) == 2
        assert read_jsonl(path) == trace.events()

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"cycle": 1}\n\n{"cycle": 2}\n')
        assert [e["cycle"] for e in read_jsonl(str(path))] == [1, 2]


class TestParseCategories:
    def test_none_and_all_select_everything(self):
        assert parse_categories(None) is None
        assert parse_categories("all") is None
        assert parse_categories("  ") is None

    def test_comma_split(self):
        assert parse_categories("alloc, prefetch") == ["alloc", "prefetch"]


class TestSimulatorTracing:
    def test_psb_run_emits_expected_categories(self):
        trace = EventTrace()
        simulator = Simulator(MACHINES["psb"](), event_trace=trace)
        simulator.run(get_workload("health", seed=1), max_instructions=6_000)
        counts = trace.counts()
        assert counts.get("demand/miss", 0) > 0
        assert counts.get("alloc/allocate", 0) > 0
        assert counts.get("prefetch/issue", 0) > 0
        emitted = {key.split("/")[0] for key in counts}
        assert emitted <= set(CATEGORIES)

    def test_filter_restricts_emissions(self):
        trace = EventTrace(categories=["prefetch"])
        simulator = Simulator(MACHINES["psb"](), event_trace=trace)
        simulator.run(get_workload("health", seed=1), max_instructions=6_000)
        categories = {e["category"] for e in trace.events()}
        assert categories == {"prefetch"}

    def test_tracing_does_not_change_results(self):
        config = MACHINES["psb"]()
        plain = Simulator(config).run(
            get_workload("health", seed=1), max_instructions=6_000
        )
        traced_sim = Simulator(config, event_trace=EventTrace())
        traced = traced_sim.run(
            get_workload("health", seed=1), max_instructions=6_000
        )
        assert plain.cycles == traced.cycles
        assert plain.ipc == traced.ipc
        assert plain.extra == traced.extra

    def test_integrity_sweeps_traced_with_invariants(self):
        from repro.config import InvariantLevel

        trace = EventTrace(categories=["integrity"])
        config = MACHINES["base"]().with_invariants(InvariantLevel.CHEAP)
        simulator = Simulator(config, event_trace=trace)
        simulator.run(get_workload("health", seed=1), max_instructions=4_000)
        assert len(trace) > 0
        assert all(e["event"] == "sweep" for e in trace.events())
