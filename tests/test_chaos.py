"""Chaos-hardened campaign durability.

Every fault class :class:`~repro.runner.ChaosSpec` can inject — failed
and torn checkpoint appends, killed worker processes, corrupted
compiled-trace cache entries, bit-flipped snapshots, torn manifest
rewrites — must end in either transparent recovery or a precisely
audited failure.  The seeded acceptance test at the bottom runs a full
``workers=2`` campaign under a scheduled fault mix and requires exact
ok/poisoned tallies, a passing offline audit, and results identical to
a chaos-free campaign.
"""

import json
import os

import pytest

from repro.errors import ConfigError, SimulationError, TraceFormatError
from repro.integrity.snapshot import SimSnapshot
from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    ChaosEngine,
    ChaosSpec,
    CheckpointStore,
    RunSpec,
    WorkloadSpec,
    audit_campaign,
    corrupt_binary_file,
    execute_spec,
)
from repro.runner.checkpoint import iter_checkpoint_lines
from repro.sim import baseline_config, psb_config
from repro.sim.simulator import Simulator
from repro.trace.binfmt import compile_trace, load_binary_trace_list
from repro.workloads import (
    cache_path,
    cached_workload_trace,
    cache_stats,
    get_workload,
    reset_cache_stats,
)

INSTRUCTIONS = 1_000
WARMUP = 200


def _spec(run_id, config=None, seed=1):
    return RunSpec(
        run_id=run_id,
        config=config if config is not None else baseline_config(),
        trace=WorkloadSpec("health", seed=seed),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
    )


def _entry(run_id, status="ok", fingerprint="f00d"):
    return {
        "run_id": run_id,
        "status": status,
        "fingerprint": fingerprint,
        "attempts": 1,
        "elapsed_seconds": 0.1,
        "result": None,
        "error": (
            None if status == "ok"
            else {"kind": "SimulationError", "message": "boom"}
        ),
    }


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------


class TestChaosSpec:
    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="enospc_appends"):
            ChaosSpec(enospc_appends=(-1,))

    def test_unknown_cache_mode_rejected(self):
        with pytest.raises(ValueError, match="corrupt_cache"):
            ChaosSpec(corrupt_cache="melt")

    def test_kill_and_poison_must_be_disjoint(self):
        with pytest.raises(ValueError, match="both"):
            ChaosSpec(kill_points=(1, 2), poison_points=(2, 3))

    def test_noop_detection(self):
        assert ChaosSpec().is_noop
        assert not ChaosSpec(kill_points=(0,)).is_noop

    def test_scheduled_is_deterministic(self):
        assert ChaosSpec.scheduled(7, 4, poison=1) == ChaosSpec.scheduled(
            7, 4, poison=1
        )
        assert ChaosSpec.scheduled(7, 4) != ChaosSpec.scheduled(8, 4)

    def test_scheduled_shape(self):
        spec = ChaosSpec.scheduled(3, 10, poison=2)
        assert len(spec.poison_points) == 2
        assert not set(spec.kill_points) & set(spec.poison_points)
        for index in (
            spec.enospc_appends + spec.torn_appends
            + spec.kill_points + spec.poison_points
        ):
            assert 0 <= index < 10
        # ENOSPC and torn never target the same append (the write would
        # only experience one of them anyway).
        assert not set(spec.enospc_appends) & set(spec.torn_appends)
        assert spec.corrupt_cache == "bitflip"

    def test_scheduled_zero_intensity_only_poisons(self):
        assert ChaosSpec.scheduled(1, 5, intensity=0.0).is_noop
        spec = ChaosSpec.scheduled(1, 5, intensity=0.0, poison=1)
        assert spec.poison_points and not spec.kill_points
        assert not spec.enospc_appends and not spec.torn_appends

    def test_scheduled_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec.scheduled(1, 0)
        with pytest.raises(ValueError):
            ChaosSpec.scheduled(1, 4, intensity=1.5)
        with pytest.raises(ValueError):
            ChaosSpec.scheduled(1, 4, poison=5)

    def test_kill_points_need_parallel_workers(self, tmp_path):
        with pytest.raises(ConfigError, match="workers"):
            CampaignRunner(
                str(tmp_path), workers=1, chaos=ChaosSpec(kill_points=(0,))
            )


# ----------------------------------------------------------------------
# Checkpoint appends under fault
# ----------------------------------------------------------------------


class TestCheckpointFaults:
    def test_enospc_append_queues_then_flushes(self, tmp_path):
        engine = ChaosEngine(ChaosSpec(enospc_appends=(0,)))
        store = CheckpointStore(str(tmp_path), chaos=engine)
        assert store.append(_entry("a")) is False
        assert store.append_failures == 1
        assert store.pending_ids == ["a"]
        assert store.load() == {}
        assert store.flush_pending() == 0
        assert set(store.load()) == {"a"}
        assert engine.counters["checkpoint_enospc"] == 1

    def test_torn_append_fragment_is_healed_and_skipped(self, tmp_path):
        engine = ChaosEngine(ChaosSpec(torn_appends=(0,)))
        store = CheckpointStore(str(tmp_path), chaos=engine)
        assert store.append(_entry("torn")) is False
        # Half the line is on disk; replay must not see an entry.
        assert store.load() == {}
        # The next append starts on a fresh line past the fragment.
        assert store.append(_entry("clean")) is True
        assert set(store.load()) == {"clean"}
        problems = [
            problem
            for _, _, _, problem in iter_checkpoint_lines(
                store.checkpoint_path
            )
            if problem is not None
        ]
        assert problems == ["json"]
        # The torn entry itself retries durably at flush time.
        assert store.flush_pending() == 0
        assert set(store.load()) == {"torn", "clean"}

    def test_crc_rejects_bit_rot(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append(_entry("a"))
        with open(store.checkpoint_path) as handle:
            line = handle.read()
        # Valid JSON, one field quietly altered: only the CRC can tell.
        rotted = line.replace('"attempts": 1', '"attempts": 9')
        assert rotted != line
        with open(store.checkpoint_path, "w") as handle:
            handle.write(rotted)
        assert store.load() == {}
        problems = [
            problem
            for _, _, _, problem in iter_checkpoint_lines(
                store.checkpoint_path
            )
        ]
        assert problems == ["crc"]

    def test_legacy_lines_without_crc_still_replay(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.checkpoint_path, "w") as handle:
            handle.write(json.dumps(_entry("old")) + "\n")
        assert set(store.load()) == {"old"}


# ----------------------------------------------------------------------
# Compiled-trace cache corruption
# ----------------------------------------------------------------------


class TestCacheCorruption:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        reset_cache_stats()
        yield
        reset_cache_stats()

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corruption_is_detected_by_checksum(self, tmp_path, mode):
        path = str(tmp_path / "t.rtb")
        compile_trace(
            path, get_workload("health", seed=1), limit=200
        )
        corrupt_binary_file(path, mode, seed=3)
        with pytest.raises(TraceFormatError):
            load_binary_trace_list(path)

    def test_corrupt_entry_recompiles_and_counts(self):
        import itertools

        first = cached_workload_trace("health", seed=5, instructions=150)
        corrupt_binary_file(cache_path("health", 5, 150), "bitflip", seed=1)
        again = cached_workload_trace("health", seed=5, instructions=150)
        assert again == first == list(
            itertools.islice(get_workload("health", seed=5), 150)
        )
        stats = cache_stats()
        assert stats["corrupt_recompiled"] == 1
        # The healed entry is a normal hit afterwards.
        cached_workload_trace("health", seed=5, instructions=150)
        assert cache_stats()["hits"] == stats["hits"] + 1

    def test_prewarm_revalidates_and_heals(self):
        from repro.workloads import prewarm_workload_trace

        assert prewarm_workload_trace("health", seed=6, instructions=120)
        corrupt_binary_file(
            cache_path("health", 6, 120), "truncate", seed=1
        )
        assert prewarm_workload_trace("health", seed=6, instructions=120)
        assert cache_stats()["corrupt_recompiled"] == 1
        assert load_binary_trace_list(
            cache_path("health", 6, 120)
        ) == cached_workload_trace("health", seed=6, instructions=120)

    def test_corrupt_binary_file_rejects_unknown_mode(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"data")
        with pytest.raises(ValueError):
            corrupt_binary_file(str(path), "shred")


# ----------------------------------------------------------------------
# Snapshot corruption
# ----------------------------------------------------------------------


def _snapshot(tmp_path):
    snapshots = []
    Simulator(psb_config()).run(
        get_workload("health", seed=1),
        max_instructions=INSTRUCTIONS,
        label="snap",
        snapshot_every=400,
        snapshot_sink=snapshots.append,
    )
    path = str(tmp_path / "run.snap")
    snapshots[0].save(path)
    return path


class TestSnapshotCorruption:
    def test_verify_catches_payload_bit_flip(self):
        snapshot = SimSnapshot(b"machine-state", cycle=10,
                               records_consumed=5, label="x")
        snapshot.payload = b"machine-stats"
        with pytest.raises(SimulationError, match="corrupt snapshot"):
            snapshot.verify()

    def test_load_rejects_bit_flipped_file(self, tmp_path):
        path = _snapshot(tmp_path)
        corrupt_binary_file(path, "bitflip", seed=2)
        with pytest.raises(SimulationError):
            SimSnapshot.load(path)

    def test_load_rejects_truncated_file(self, tmp_path):
        path = _snapshot(tmp_path)
        corrupt_binary_file(path, "truncate", seed=2)
        with pytest.raises(SimulationError):
            SimSnapshot.load(path)

    def test_execute_spec_quarantines_and_reruns(self, tmp_path):
        path = _snapshot(tmp_path)
        corrupt_binary_file(path, "bitflip", seed=2)
        spec = _spec("quarantine", psb_config())
        result = execute_spec(spec, snapshot_path=path)
        # The attempt ran from scratch and flagged the quarantine...
        assert result.extra["snapshot_quarantined"] == 1.0
        assert "resumed_from_cycle" not in result.extra
        # ...and the damaged file was kept aside for post-mortem.
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_retry_with_corrupted_snapshot_still_succeeds(self, tmp_path):
        from repro.runner import FaultSpec

        # The first attempt crashes mid-run leaving a snapshot; chaos
        # bit-flips it before the retry, which must quarantine and
        # recover rather than resume garbage machine state.
        spec = RunSpec(
            run_id="flaky",
            config=psb_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=INSTRUCTIONS,
            faults=FaultSpec(crash_at=500, crash_attempts=1),
        )
        campaign = CampaignRunner(
            str(tmp_path), retries=1, isolation="inline",
            snapshot_every=200, backoff_base=0.0,
            chaos=ChaosSpec(corrupt_snapshot_retries=(0,)),
        ).run([spec])
        outcome = campaign.outcomes["flaky"]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.result.extra["snapshot_quarantined"] == 1.0
        quarantined = list((tmp_path / "snapshots").glob("*.corrupt"))
        assert len(quarantined) == 1
        report = audit_campaign(str(tmp_path))
        assert report.ok
        assert report.stats["snapshots_quarantined"] == 1


# ----------------------------------------------------------------------
# Torn manifest writes
# ----------------------------------------------------------------------


class TestTornManifest:
    def test_previous_manifest_survives(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        first = store.write_manifest(
            status="complete", total=1, completed=["a"],
            resumed=[], failures=[],
        )
        engine = ChaosEngine(ChaosSpec(torn_manifest_writes=(0,)))
        torn_store = CheckpointStore(str(tmp_path), chaos=engine)
        with pytest.raises(OSError):
            torn_store.write_manifest(
                status="complete", total=2, completed=["a", "b"],
                resumed=[], failures=[],
            )
        assert store.read_manifest() == first
        litter = list(tmp_path.glob(MANIFEST_NAME + ".tmp.*"))
        assert len(litter) == 1
        report = audit_campaign(str(tmp_path))
        assert [issue.code for issue in report.warnings] == ["manifest.tmp"]

    def test_campaign_absorbs_the_torn_write(self, tmp_path):
        campaign = CampaignRunner(
            str(tmp_path), isolation="inline",
            chaos=ChaosSpec(torn_manifest_writes=(0,)),
        ).run([_spec("only")])
        # The run itself succeeded; only the summary write was lost.
        assert campaign.outcomes["only"].ok
        assert campaign.manifest is None
        assert not os.path.exists(str(tmp_path / MANIFEST_NAME))
        report = audit_campaign(str(tmp_path))
        assert [issue.code for issue in report.errors] == [
            "manifest.missing"
        ]


# ----------------------------------------------------------------------
# The worker watchdog
# ----------------------------------------------------------------------


class TestWorkerWatchdog:
    def test_killed_worker_is_respawned_and_point_recovers(self, tmp_path):
        specs = [_spec("victim"), _spec("bystander", seed=2)]
        campaign = CampaignRunner(
            str(tmp_path), workers=2, isolation="process",
            backoff_base=0.0, chaos=ChaosSpec(kill_points=(0,)),
        ).run(specs)
        assert campaign.outcomes["victim"].ok
        assert campaign.outcomes["bystander"].ok
        manifest = campaign.manifest
        assert manifest["ok"] == 2
        assert manifest["poisoned"] == 0
        assert manifest["chaos"]["counters"]["worker_kills"] == 1

    def test_repeated_deaths_poison_the_point(self, tmp_path):
        specs = [_spec("cursed"), _spec("fine", seed=2)]
        campaign = CampaignRunner(
            str(tmp_path), workers=2, isolation="process",
            backoff_base=0.0, max_worker_kills=2,
            chaos=ChaosSpec(poison_points=(0,)),
        ).run(specs)
        outcome = campaign.failures["cursed"]
        assert outcome.status == "poisoned"
        assert not outcome.ok
        assert outcome.error_kind == "WorkerPoisonedError"
        assert "worker died 2 times" in outcome.error_message
        assert campaign.outcomes["fine"].ok
        manifest = campaign.manifest
        assert manifest["ok"] == 1
        assert manifest["failed"] == 0
        assert manifest["poisoned"] == 1
        record = next(
            r for r in manifest["failures"] if r["run_id"] == "cursed"
        )
        assert record["status"] == "poisoned"
        assert record["kind"] == "WorkerPoisonedError"
        # The poisoned terminal state is durable and audit-clean.
        report = audit_campaign(str(tmp_path))
        assert report.ok, report.summary()
        assert report.stats["entries_poisoned"] == 1

    def test_unkillable_pool_falls_back_to_inline(self, tmp_path):
        # Every launch of every point is killed; long before the kill
        # budget runs out, the consecutive-death streak declares the
        # pool dead and the campaign finishes inline — all points ok.
        specs = [_spec("p0"), _spec("p1", seed=2)]
        campaign = CampaignRunner(
            str(tmp_path), workers=2, isolation="process",
            backoff_base=0.0, max_worker_kills=10,
            inline_fallback_after=2,
            chaos=ChaosSpec(poison_points=(0, 1)),
        ).run(specs)
        assert campaign.outcomes["p0"].ok
        assert campaign.outcomes["p1"].ok
        manifest = campaign.manifest
        assert manifest["ok"] == 2
        assert manifest["poisoned"] == 0
        # At least the first two launches were killed before fallback
        # (a relaunch may slip in while the second death is in flight,
        # so the exact count depends on completion timing).
        assert manifest["chaos"]["counters"]["worker_kills"] >= 2

    def test_poisoned_point_replays_on_resume(self, tmp_path):
        specs = [_spec("cursed"), _spec("fine", seed=2)]
        CampaignRunner(
            str(tmp_path), workers=2, isolation="process",
            backoff_base=0.0, max_worker_kills=1,
            chaos=ChaosSpec(poison_points=(0,)),
        ).run(specs)
        # A chaos-free resume trusts the checkpoint: the poisoned
        # terminal outcome is replayed, not re-run.
        resumed = CampaignRunner(
            str(tmp_path), workers=2, isolation="process", resume=True
        ).run(specs)
        assert set(resumed.resumed) == {"cursed", "fine"}
        assert resumed.failures["cursed"].status == "poisoned"
        assert resumed.manifest["poisoned"] == 1


# ----------------------------------------------------------------------
# The seeded acceptance campaign
# ----------------------------------------------------------------------


class TestSeededChaosCampaign:
    def test_scheduled_campaign_matches_clean_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        specs = [_spec(f"p{i}", seed=i + 1) for i in range(4)]
        clean = CampaignRunner(
            str(tmp_path / "clean"), workers=2, isolation="process"
        ).run(specs)

        chaos = ChaosSpec.scheduled(7, points=len(specs), poison=1)
        # seed 7 over 4 points: point 3 poisoned, point 1 killed once,
        # append 1 ENOSPC, append 2 torn, every cache entry bit-flipped.
        assert chaos.poison_points == (3,)
        camp = str(tmp_path / "chaos")
        campaign = CampaignRunner(
            camp, workers=2, isolation="process",
            backoff_base=0.0, max_worker_kills=2, chaos=chaos,
        ).run(specs)

        manifest = campaign.manifest
        assert manifest["status"] == "complete"
        assert manifest["ok"] == 3
        assert manifest["failed"] == 0
        assert manifest["poisoned"] == 1
        assert campaign.failures["p3"].status == "poisoned"
        # Injected damage all fired...
        counters = manifest["chaos"]["counters"]
        assert counters["checkpoint_enospc"] == 1
        assert counters["checkpoint_torn"] == 1
        assert counters["worker_kills"] >= 2
        assert counters["cache_corrupted"] == len(specs)
        # ...and none of it is visible in the surviving results.
        for run_id in ("p0", "p1", "p2"):
            chaotic, reference = (
                campaign.results[run_id], clean.results[run_id],
            )
            assert (chaotic.ipc, chaotic.cycles, chaotic.instructions) == (
                reference.ipc, reference.cycles, reference.instructions
            )
        # Every durability gap healed: the checkpoint is complete and
        # the offline audit finds nothing worse than the torn-line scar.
        assert "checkpoint_gaps" not in manifest
        report = audit_campaign(camp)
        assert report.ok, report.summary()
        assert report.stats["checkpoint_entries"] == 4
        assert {issue.code for issue in report.warnings} <= {
            "checkpoint.line.json"
        }
