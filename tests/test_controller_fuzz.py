"""Property-based fuzzing of the stream-buffer controller.

Drives the controller with random miss streams and cycle advances and
checks structural invariants that must hold whatever the input:

- no two occupied entries (across all buffers) hold the same block;
- entry-state bookkeeping stays consistent;
- prefetches used never exceed prefetches issued;
- every buffer's priority stays inside its saturating range.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AllocationPolicy,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.sfm import StrideFilteredMarkovPredictor
from repro.streambuf.buffer import EntryState
from repro.streambuf.controller import StreamBufferController

BLOCK = 32

#: A fuzz step: miss (pc index, block index) or a number of idle cycles.
_steps = st.lists(
    st.one_of(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=300),
        ),
        st.integers(min_value=1, max_value=30),
    ),
    max_size=120,
)

_policies = st.sampled_from(
    [
        (AllocationPolicy.ALWAYS, SchedulingPolicy.ROUND_ROBIN),
        (AllocationPolicy.TWO_MISS, SchedulingPolicy.ROUND_ROBIN),
        (AllocationPolicy.CONFIDENCE, SchedulingPolicy.PRIORITY),
        (AllocationPolicy.CONFIDENCE, SchedulingPolicy.ROUND_ROBIN),
    ]
)


def _check_invariants(controller):
    seen_blocks = set()
    for buffer in controller.buffers:
        priority = int(buffer.priority)
        assert 0 <= priority <= buffer.priority.maximum
        for entry in buffer.entries:
            if entry.state == EntryState.FREE:
                continue
            assert buffer.allocated
            assert entry.block % BLOCK == 0
            assert entry.block not in seen_blocks, "duplicate stream block"
            seen_blocks.add(entry.block)
            if entry.state in (EntryState.IN_FLIGHT, EntryState.READY):
                assert entry.ready_cycle >= 0
    assert controller.prefetches_used <= controller.prefetches_issued + 1


class TestControllerFuzz:
    @settings(max_examples=40, deadline=None)
    @given(steps=_steps, policies=_policies)
    def test_invariants_hold_under_random_miss_streams(self, steps, policies):
        allocation, scheduling = policies
        config = StreamBufferConfig(allocation=allocation, scheduling=scheduling)
        controller = StreamBufferController(
            config, StrideFilteredMarkovPredictor(), BLOCK
        )
        controller.attach(MemoryHierarchy(SimConfig()))
        cycle = 0
        for step in steps:
            if isinstance(step, tuple):
                pc_index, block_index = step
                pc = 0x1000 + pc_index * 4
                addr = 0x100000 + block_index * BLOCK
                sb_ready = controller.probe(addr, cycle)
                controller.on_l1_miss(
                    pc, addr, cycle, sb_hit=sb_ready is not None
                )
            else:
                for __ in range(step):
                    cycle += 1
                    controller.tick(cycle)
            _check_invariants(controller)

    @settings(max_examples=20, deadline=None)
    @given(steps=_steps)
    def test_probe_is_one_shot(self, steps):
        """A block taken from a stream buffer is gone: probing the same
        block again without a new prefetch must miss."""
        config = StreamBufferConfig(
            allocation=AllocationPolicy.ALWAYS,
            scheduling=SchedulingPolicy.ROUND_ROBIN,
        )
        controller = StreamBufferController(
            config, StrideFilteredMarkovPredictor(), BLOCK
        )
        controller.attach(MemoryHierarchy(SimConfig()))
        cycle = 0
        for step in steps:
            if isinstance(step, tuple):
                pc_index, block_index = step
                addr = 0x100000 + block_index * BLOCK
                first = controller.probe(addr, cycle)
                if first is not None:
                    assert controller.probe(addr, cycle) is None
                controller.on_l1_miss(
                    0x1000 + pc_index * 4, addr, cycle,
                    sb_hit=first is not None,
                )
            else:
                for __ in range(step):
                    cycle += 1
                    controller.tick(cycle)
