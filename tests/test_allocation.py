"""Unit tests for stream-buffer allocation filters (Section 4.3)."""

from repro.config import AllocationPolicy, SchedulingPolicy, StreamBufferConfig
from repro.predictors.base import AddressPredictor, StreamState
from repro.streambuf.allocation import (
    AlwaysAllocate,
    ConfidenceAllocationFilter,
    TwoMissFilter,
    make_allocation_filter,
)
from repro.streambuf.buffer import StreamBuffer


class _FakePredictor(AddressPredictor):
    """Predictor stub with controllable confidence/readiness."""

    def __init__(self, confidence=0, ready=False):
        self.confidence = confidence
        self.ready = ready

    def train(self, pc, address):
        return False

    def make_stream_state(self, pc, address):
        return StreamState(pc, address)

    def next_prediction(self, state):
        return None

    def confidence_for(self, pc):
        return self.confidence

    def allocation_ready(self, pc):
        return self.ready


def _buffers(count=4, priority_max=12):
    return [StreamBuffer(i, 4, priority_max) for i in range(count)]


def _allocate_all(buffers, priority=0, cycle=0):
    for buffer in buffers:
        buffer.allocate(StreamState(0x900 + buffer.index, 0), cycle, priority)


class TestAlwaysAllocate:
    def test_prefers_unallocated(self):
        buffers = _buffers()
        buffers[0].allocate(StreamState(0x1, 0), cycle=0)
        victim = AlwaysAllocate().choose_victim(0x100, _FakePredictor(), buffers)
        assert victim is buffers[1]

    def test_lru_when_full(self):
        buffers = _buffers(2)
        _allocate_all(buffers)
        buffers[0].last_use_cycle = 100
        buffers[1].last_use_cycle = 50
        victim = AlwaysAllocate().choose_victim(0x100, _FakePredictor(), buffers)
        assert victim is buffers[1]


class TestTwoMissFilter:
    def test_denies_unready_load(self):
        victim = TwoMissFilter().choose_victim(
            0x100, _FakePredictor(ready=False), _buffers()
        )
        assert victim is None

    def test_admits_ready_load(self):
        victim = TwoMissFilter().choose_victim(
            0x100, _FakePredictor(ready=True), _buffers()
        )
        assert victim is not None


class TestConfidenceFilter:
    def _filter(self, threshold=1):
        config = StreamBufferConfig(
            allocation=AllocationPolicy.CONFIDENCE,
            confidence_threshold=threshold,
        )
        return ConfidenceAllocationFilter(config)

    def test_denies_below_threshold(self):
        victim = self._filter().choose_victim(
            0x100, _FakePredictor(confidence=0), _buffers()
        )
        assert victim is None

    def test_admits_into_unallocated_buffer(self):
        victim = self._filter().choose_victim(
            0x100, _FakePredictor(confidence=1), _buffers()
        )
        assert victim is not None
        assert not victim.allocated

    def test_must_beat_a_buffer(self):
        """A load only reallocates when some buffer's priority is <= its
        confidence — productive buffers protect themselves."""
        buffers = _buffers(2)
        _allocate_all(buffers, priority=9)
        victim = self._filter().choose_victim(
            0x100, _FakePredictor(confidence=5), buffers
        )
        assert victim is None

    def test_picks_lowest_priority_beatable(self):
        buffers = _buffers(3)
        _allocate_all(buffers)
        buffers[0].priority.set(3)
        buffers[1].priority.set(1)
        buffers[2].priority.set(9)
        victim = self._filter().choose_victim(
            0x100, _FakePredictor(confidence=5), buffers
        )
        assert victim is buffers[1]

    def test_lru_breaks_priority_tie(self):
        buffers = _buffers(2)
        _allocate_all(buffers, priority=2)
        buffers[0].last_use_cycle = 70
        buffers[1].last_use_cycle = 30
        victim = self._filter().choose_victim(
            0x100, _FakePredictor(confidence=5), buffers
        )
        assert victim is buffers[1]


class TestFactory:
    def test_builds_each_policy(self):
        for policy, cls in [
            (AllocationPolicy.ALWAYS, AlwaysAllocate),
            (AllocationPolicy.TWO_MISS, TwoMissFilter),
            (AllocationPolicy.CONFIDENCE, ConfidenceAllocationFilter),
        ]:
            config = StreamBufferConfig(
                allocation=policy, scheduling=SchedulingPolicy.ROUND_ROBIN
            )
            assert isinstance(make_allocation_filter(config), cls)
