"""Unit tests for load/store disambiguation policies (Section 6.1)."""

from repro.config import DisambiguationPolicy
from repro.cpu.storesets import StoreTracker, word_of


class TestWordOf:
    def test_aligns_to_eight_bytes(self):
        assert word_of(0x1007) == 0x1000
        assert word_of(0x1008) == 0x1008


class TestPerfectStoreSets:
    def _tracker(self):
        return StoreTracker(DisambiguationPolicy.PERFECT_STORE_SETS)

    def test_independent_load_has_no_dependence(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(1, 0x1000)
        assert tracker.dependence_for_load(0x2000) is None

    def test_same_word_load_depends_and_forwards(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(1, 0x1000)
        assert tracker.dependence_for_load(0x1004) == 1
        assert tracker.forwards(0x1004) == 1
        assert tracker.forwarded_loads == 1

    def test_youngest_store_wins(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(1, 0x1000)
        tracker.note_store_dispatched(5, 0x1000)
        assert tracker.dependence_for_load(0x1000) == 5

    def test_retired_store_forgotten(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(1, 0x1000)
        tracker.note_store_retired(1, 0x1000)
        assert tracker.dependence_for_load(0x1000) is None

    def test_retire_does_not_forget_younger_store(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(1, 0x1000)
        tracker.note_store_dispatched(5, 0x1000)
        tracker.note_store_retired(1, 0x1000)
        assert tracker.dependence_for_load(0x1000) == 5


class TestNoDisambiguation:
    def _tracker(self):
        return StoreTracker(DisambiguationPolicy.NO_DISAMBIGUATION)

    def test_every_load_waits_for_last_store(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(3, 0x1000)
        assert tracker.dependence_for_load(0x999000) == 3
        assert tracker.serialized_loads == 1

    def test_no_store_in_flight(self):
        tracker = self._tracker()
        assert tracker.dependence_for_load(0x1000) is None

    def test_previous_store_chains(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(3, 0x1000)
        assert tracker.previous_store() == 3
        tracker.note_store_dispatched(7, 0x2000)
        assert tracker.previous_store() == 7

    def test_reset_stats(self):
        tracker = self._tracker()
        tracker.note_store_dispatched(3, 0x1000)
        tracker.dependence_for_load(0x5000)
        tracker.reset_stats()
        assert tracker.serialized_loads == 0
