"""Tests for the Figure 4 analysis and report rendering."""

import itertools

from repro.analysis.markov_bits import markov_delta_bits
from repro.analysis.report import ascii_bar_chart, ascii_table
from repro.trace.record import InstrKind, TraceRecord
from repro.workloads import get_workload


class TestMarkovBits:
    def test_small_deltas_need_few_bits(self):
        # Loads at one PC missing every block: deltas of 32 bytes.
        records = [
            TraceRecord(InstrKind.LOAD, 0x100, addr=0x100000 + i * 4096)
            for i in range(64)
        ]
        analysis = markov_delta_bits(records, max_instructions=10_000)
        assert analysis.transitions == 63
        assert analysis.coverage_at(14) == 1.0
        assert analysis.coverage_at(8) == 0.0

    def test_hits_do_not_produce_transitions(self):
        records = [
            TraceRecord(InstrKind.LOAD, 0x100, addr=0x100000)
            for __ in range(10)
        ]
        analysis = markov_delta_bits(records, max_instructions=100)
        assert analysis.transitions == 0  # one miss, nine hits

    def test_transitions_are_per_pc(self):
        # Two PCs interleaved: each strides by one page; the per-PC
        # deltas are 4096 (13 signed bits), not the interleaved 2048.
        records = []
        for i in range(32):
            records.append(
                TraceRecord(InstrKind.LOAD, 0x100, addr=0x100000 + i * 4096)
            )
            records.append(
                TraceRecord(InstrKind.LOAD, 0x200, addr=0x800000 + i * 4096)
            )
        analysis = markov_delta_bits(records, max_instructions=1_000)
        assert analysis.coverage_at(14) == 1.0
        assert analysis.coverage_at(13) == 0.0  # 4096 needs exactly 14 signed bits

    def test_sixteen_bits_cover_most_of_every_workload(self):
        """The paper's headline claim for Figure 4."""
        for name in ("health", "deltablue"):
            trace = itertools.islice(get_workload(name), 30_000)
            analysis = markov_delta_bits(trace, max_instructions=30_000)
            assert analysis.coverage_at(16) > 0.85

    def test_coverage_curve_monotone(self):
        trace = itertools.islice(get_workload("burg"), 20_000)
        analysis = markov_delta_bits(trace, max_instructions=20_000)
        curve = analysis.coverage_curve(range(1, 33))
        assert curve == sorted(curve)


class TestReport:
    def test_ascii_table_aligns(self):
        text = ascii_table(
            ["name", "ipc"], [["health", 0.5], ["turb3d", 1.08]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "health" in text
        assert all(len(line) <= 40 for line in lines)

    def test_ascii_bar_chart(self):
        text = ascii_bar_chart({"a": 50.0, "b": 25.0}, width=10, unit="%")
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_negative_values(self):
        text = ascii_bar_chart({"down": -10.0, "up": 20.0})
        assert "-" in text.splitlines()[0]

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}, title="empty") == "empty"
