"""Unit tests for the gshare branch predictor."""

import pytest

from repro.cpu.branch import GsharePredictor


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(history_bits=10)
        results = [predictor.update(0x400, True) for __ in range(50)]
        assert all(results[10:])

    def test_learns_alternating_with_history(self):
        """gshare's history lets it learn T/N/T/N perfectly."""
        predictor = GsharePredictor(history_bits=10)
        outcomes = [bool(i % 2) for i in range(300)]
        results = [predictor.update(0x400, taken) for taken in outcomes]
        assert all(results[-50:])

    def test_random_stream_mispredicts(self):
        import random

        rng = random.Random(3)
        predictor = GsharePredictor(history_bits=10)
        for __ in range(500):
            predictor.update(rng.randrange(0, 1 << 20) * 4, rng.random() < 0.5)
        assert predictor.misprediction_rate > 0.3

    def test_counts(self):
        predictor = GsharePredictor()
        predictor.update(0x400, True)
        assert predictor.predictions == 1

    def test_reset_stats(self):
        predictor = GsharePredictor()
        predictor.update(0x400, False)
        predictor.reset_stats()
        assert predictor.predictions == 0
        assert predictor.mispredictions == 0

    def test_predict_without_update(self):
        predictor = GsharePredictor()
        before = predictor.predictions
        predictor.predict(0x400)
        assert predictor.predictions == before

    def test_rejects_bad_history_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)

    def test_distinct_branches_decorrelated(self):
        """Two branches with opposite biases should both be predictable."""
        predictor = GsharePredictor(history_bits=12)
        correct = 0
        total = 0
        for i in range(400):
            correct += predictor.update(0x1000, True)
            correct += predictor.update(0x2000, False)
            total += 2
        assert correct / total > 0.8
