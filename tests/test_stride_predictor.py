"""Unit tests for the two-delta stride predictor."""

from repro.config import StridePredictorConfig
from repro.predictors.stride import StrideEntry, TwoDeltaStrideTable


class TestStrideEntry:
    def test_two_delta_requires_repeat(self):
        entry = StrideEntry(pc=0x100, address=0, confidence_max=7)
        entry.observe(32)  # stride 32, seen once
        assert entry.two_delta_stride == 0
        entry.observe(64)  # stride 32, seen twice in a row
        assert entry.two_delta_stride == 32

    def test_one_off_stride_does_not_disturb(self):
        """The point of two-delta: a single irregular access keeps the
        confirmed stride."""
        entry = StrideEntry(pc=0x100, address=0, confidence_max=7)
        for address in (32, 64, 96):
            entry.observe(address)
        assert entry.two_delta_stride == 32
        entry.observe(1000)  # one irregular jump
        assert entry.two_delta_stride == 32

    def test_stride_change_needs_two_observations(self):
        entry = StrideEntry(pc=0x100, address=0, confidence_max=7)
        entry.observe(32)
        entry.observe(64)
        entry.observe(128)  # stride 64 once
        assert entry.two_delta_stride == 32
        entry.observe(192)  # stride 64 twice
        assert entry.two_delta_stride == 64

    def test_predicted_address(self):
        entry = StrideEntry(pc=0x100, address=0, confidence_max=7)
        entry.observe(32)
        entry.observe(64)
        assert entry.predicted_address == 96


class TestTwoDeltaStrideTable:
    def test_train_reports_correctness(self):
        table = TwoDeltaStrideTable()
        assert not table.train(0x100, 0)  # first touch allocates
        assert not table.train(0x100, 32)
        assert not table.train(0x100, 64)  # two-delta becomes 32 now
        assert table.train(0x100, 96)  # predicted 64 + 32

    def test_confidence_tracks_accuracy(self):
        table = TwoDeltaStrideTable()
        for i in range(8):
            table.train(0x100, i * 32)
        assert table.confidence_for(0x100) >= 5
        table.train(0x100, 10_000)
        table.train(0x100, 77_777)
        assert table.confidence_for(0x100) <= 4

    def test_confidence_unknown_pc(self):
        assert TwoDeltaStrideTable().confidence_for(0xDEAD) == 0

    def test_allocation_ready_needs_repeated_stride(self):
        table = TwoDeltaStrideTable()
        table.train(0x100, 0)
        table.train(0x100, 32)
        assert not table.allocation_ready(0x100)
        table.train(0x100, 64)
        assert table.allocation_ready(0x100)

    def test_set_associative_replacement(self):
        config = StridePredictorConfig(entries=4, associativity=2)
        table = TwoDeltaStrideTable(config)
        # Two sets; PCs 0, 2, 4 all map to set 0.
        table.train(0, 0)
        table.train(2, 0)
        table.train(0, 32)  # touch PC 0 -> PC 2 becomes LRU
        table.train(4, 0)  # evicts PC 2
        assert table.lookup(0) is not None
        assert table.lookup(2) is None
        assert table.lookup(4) is not None

    def test_stream_state_copies_stride_and_confidence(self):
        table = TwoDeltaStrideTable()
        for i in range(6):
            table.train(0x100, i * 64)
        state = table.make_stream_state(0x100, 320)
        assert state.stride == 64
        assert state.confidence >= 2
        assert state.last_address == 320

    def test_next_prediction_walks_stride(self):
        table = TwoDeltaStrideTable()
        for i in range(4):
            table.train(0x100, i * 64)
        state = table.make_stream_state(0x100, 256)
        assert table.next_prediction(state) == 320
        assert table.next_prediction(state) == 384

    def test_next_prediction_none_without_stride(self):
        table = TwoDeltaStrideTable()
        table.train(0x100, 0)
        state = table.make_stream_state(0x100, 0)
        assert table.next_prediction(state) is None

    def test_accuracy_statistic(self):
        table = TwoDeltaStrideTable()
        for i in range(10):
            table.train(0x100, i * 32)
        assert 0.0 < table.accuracy < 1.0
