"""Tests for trace serialization."""

import io
import itertools

import pytest

from repro.trace.io import (
    TraceFormatError,
    load_trace,
    load_trace_list,
    save_trace,
)
from repro.trace.record import InstrKind, TraceRecord
from repro.workloads import get_workload


def _sample_records():
    return [
        TraceRecord(InstrKind.LOAD, 0x1000, addr=0xDEADBEEF, dep1=3),
        TraceRecord(InstrKind.STORE, 0x1004, addr=0x8000, dep2=1),
        TraceRecord(InstrKind.BRANCH, 0x1008, taken=True, dep1=2),
        TraceRecord(InstrKind.BRANCH, 0x100C, taken=False),
        TraceRecord(InstrKind.IALU, 0x1010),
        TraceRecord(InstrKind.IMUL, 0x1014, dep1=1, dep2=2),
        TraceRecord(InstrKind.IDIV, 0x1018),
        TraceRecord(InstrKind.FADD, 0x101C),
        TraceRecord(InstrKind.FMUL, 0x1020),
        TraceRecord(InstrKind.FDIV, 0x1024),
        TraceRecord(InstrKind.NOP, 0x1028),
    ]


class TestRoundTrip:
    def test_stream_round_trip(self):
        buffer = io.StringIO()
        written = save_trace(buffer, _sample_records())
        assert written == len(_sample_records())
        buffer.seek(0)
        assert load_trace_list(buffer) == _sample_records()

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_trace(path, _sample_records())
        assert load_trace_list(path) == _sample_records()

    def test_limit(self):
        buffer = io.StringIO()
        written = save_trace(buffer, _sample_records(), limit=3)
        assert written == 3
        buffer.seek(0)
        assert len(load_trace_list(buffer)) == 3

    def test_workload_round_trip(self, tmp_path):
        path = str(tmp_path / "health.trace")
        original = list(itertools.islice(get_workload("health"), 2000))
        save_trace(path, iter(original))
        assert load_trace_list(path) == original


class TestErrors:
    def test_bad_header(self):
        buffer = io.StringIO("not a trace\nL 1000 2000 0 0\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(buffer))

    def test_bad_record(self):
        buffer = io.StringIO("# repro-trace v1\nZ 1000\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(load_trace(buffer))
        assert "line 2" in str(excinfo.value)

    def test_truncated_record(self):
        buffer = io.StringIO("# repro-trace v1\nL 1000\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(buffer))

    def test_blank_lines_and_comments_ignored(self):
        buffer = io.StringIO(
            "# repro-trace v1\n\n# comment\nA 1000 0 0\n"
        )
        records = load_trace_list(buffer)
        assert len(records) == 1
        assert records[0].kind == InstrKind.IALU

    def test_error_carries_line_number_and_text(self):
        buffer = io.StringIO("# repro-trace v1\nA 1000 0 0\nZ zz zz\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(load_trace(buffer))
        assert excinfo.value.line_number == 3
        assert excinfo.value.line == "Z zz zz"

    def test_error_is_part_of_the_taxonomy(self):
        from repro.errors import ReproError, TraceFormatError as canonical

        assert TraceFormatError is canonical
        assert issubclass(TraceFormatError, ReproError)
        assert issubclass(TraceFormatError, ValueError)

    def test_missing_file_raises_trace_format_error(self):
        with pytest.raises(TraceFormatError):
            list(load_trace("/nonexistent/path.trace"))


class TestNonStrictMode:
    _TEXT = (
        "# repro-trace v1\n"
        "A 1000 0 0\n"
        "Z broken one\n"
        "\n"
        "# a comment\n"
        "L 1004 8000 0 0\n"
        "L nothex 8000 0 0\n"
        "B 1008 1 0 0\n"
    )

    def test_skips_and_counts_bad_records(self):
        errors = []
        records = load_trace_list(
            io.StringIO(self._TEXT), strict=False, errors=errors
        )
        assert len(records) == 3
        assert len(errors) == 2
        assert [e.line_number for e in errors] == [3, 7]
        assert errors[0].line == "Z broken one"

    def test_skipping_without_collecting_errors(self):
        records = load_trace_list(io.StringIO(self._TEXT), strict=False)
        assert len(records) == 3

    def test_strict_default_still_raises(self):
        with pytest.raises(TraceFormatError):
            load_trace_list(io.StringIO(self._TEXT))

    def test_bad_header_raises_even_when_lenient(self):
        with pytest.raises(TraceFormatError):
            load_trace_list(io.StringIO("garbage\nA 1000 0 0\n"), strict=False)


class TestSimulationOnLoadedTrace:
    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim import baseline_config, simulate

        path = str(tmp_path / "t.trace")
        original = list(itertools.islice(get_workload("burg"), 6000))
        save_trace(path, iter(original))
        direct = simulate(
            baseline_config(), iter(original),
            max_instructions=6000, warmup_instructions=1000,
        )
        reloaded = simulate(
            baseline_config(), load_trace(path),
            max_instructions=6000, warmup_instructions=1000,
        )
        assert direct.ipc == reloaded.ipc
        assert direct.cycles == reloaded.cycles
