"""Whole-machine fuzzing: random traces through the full simulator.

Whatever the trace, a simulation must terminate, retire everything it
fetched, and produce self-consistent statistics under every prefetcher.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PrefetcherKind
from repro.sim import baseline_config, psb_config, simulate, stride_config
from repro.sim.presets import demand_markov_config, next_line_config
from repro.trace.record import InstrKind, TraceRecord

_kinds = st.sampled_from(list(InstrKind))


@st.composite
def _records(draw):
    kind = draw(_kinds)
    pc = draw(st.integers(min_value=0, max_value=63)) * 4 + 0x1000
    addr = 0
    taken = False
    if kind in (InstrKind.LOAD, InstrKind.STORE):
        addr = draw(st.integers(min_value=0, max_value=4095)) * 32 + 0x10000
    if kind == InstrKind.BRANCH:
        taken = draw(st.booleans())
    dep1 = draw(st.integers(min_value=0, max_value=20))
    dep2 = draw(st.integers(min_value=0, max_value=20))
    return TraceRecord(kind, pc, addr=addr, taken=taken, dep1=dep1, dep2=dep2)


_traces = st.lists(_records(), min_size=0, max_size=400)

_configs = st.sampled_from(
    ["base", "stride", "psb", "next-line", "demand-markov"]
)


def _config_of(name):
    return {
        "base": baseline_config,
        "stride": stride_config,
        "psb": psb_config,
        "next-line": next_line_config,
        "demand-markov": demand_markov_config,
    }[name]()


class TestSimulatorFuzz:
    @settings(max_examples=30, deadline=None)
    @given(trace=_traces, config_name=_configs)
    def test_any_trace_terminates_with_sane_stats(self, trace, config_name):
        result = simulate(_config_of(config_name), iter(trace))
        assert result.instructions == len(trace)
        assert result.cycles >= 1
        assert 0.0 <= result.ipc <= 8.0
        assert 0.0 <= result.l1_miss_rate <= 1.0
        assert 0.0 <= result.prefetch_accuracy <= 1.0
        assert 0.0 <= result.l1_l2_bus_utilization <= 1.0
        assert result.prefetches_used <= result.prefetches_issued + 1

    @settings(max_examples=15, deadline=None)
    @given(trace=_traces)
    def test_simulation_is_deterministic(self, trace):
        first = simulate(psb_config(), iter(trace))
        second = simulate(psb_config(), iter(trace))
        assert first.cycles == second.cycles
        assert first.ipc == second.ipc
        assert first.prefetches_issued == second.prefetches_issued

    @settings(max_examples=15, deadline=None)
    @given(trace=_traces)
    def test_prefetching_never_breaks_execution(self, trace):
        """Prefetchers change timing, never the amount of retired work."""
        base = simulate(baseline_config(), iter(trace))
        psb = simulate(psb_config(), iter(trace))
        assert base.instructions == psb.instructions
