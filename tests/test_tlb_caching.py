"""Tests for the Section 4.5 stream-buffer TLB translation caching."""

from dataclasses import replace

from repro.sim import psb_config
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

RUN = dict(max_instructions=20_000, warmup_instructions=5_000)


def _run_with_tlb_caching(enabled):
    config = psb_config()
    stream_buffers = replace(
        config.prefetch.stream_buffers, cache_tlb_translations=enabled
    )
    config = config.with_prefetcher(
        replace(config.prefetch, stream_buffers=stream_buffers)
    )
    simulator = Simulator(config)
    result = simulator.run(get_workload("turb3d"), **RUN)
    return result, simulator.hierarchy


class TestTlbCaching:
    def test_caching_reduces_tlb_accesses(self):
        """With translations cached in the buffers, the TLB is consulted
        only when a stream crosses a page boundary."""
        __, without = _run_with_tlb_caching(False)
        __, with_cache = _run_with_tlb_caching(True)
        assert with_cache.tlb.accesses < without.tlb.accesses

    def test_performance_unchanged(self):
        """Section 4.5: the paper observed no benefit or loss from TLB
        handling, because the benchmarks barely miss the TLB."""
        result_without, __ = _run_with_tlb_caching(False)
        result_with, __ = _run_with_tlb_caching(True)
        assert abs(result_with.ipc - result_without.ipc) < 0.15 * max(
            result_with.ipc, result_without.ipc
        )

    def test_same_stream_same_page_skips_tlb(self):
        """Unit-level: consecutive same-page prefetches use the cached
        translation; a page crossing re-walks."""
        from repro.config import AllocationPolicy, SimConfig, StreamBufferConfig
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.streambuf.controller import (
            SequentialPredictor,
            StreamBufferController,
        )

        sb_config = StreamBufferConfig(
            cache_tlb_translations=True, allocation=AllocationPolicy.ALWAYS
        )
        controller = StreamBufferController(
            sb_config, SequentialPredictor(32), 32
        )
        hierarchy = MemoryHierarchy(SimConfig())
        controller.attach(hierarchy)
        controller.on_l1_miss(0x100, 0x8000, 0, sb_hit=False)
        for cycle in range(1, 400):
            controller.tick(cycle)
        # The stream stayed inside one page after the first walk.
        issued = controller.prefetches_issued
        assert issued >= 3
        assert hierarchy.tlb.accesses < issued
