"""The offline campaign auditor (``repro-sim audit``).

Each tampering scenario drives one audit rule: a clean campaign passes,
recovered damage surfaces as warnings, and every way the artifacts can
*disagree with each other* is an error with a stable issue code.
"""

import json
import os

import pytest

from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    CheckpointStore,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
    audit_campaign,
)
from repro.runner.checkpoint import encode_entry
from repro.sim import baseline_config, stride_config

INSTRUCTIONS = 1_000
WARMUP = 200


def _spec(run_id, config=None, faults=None, seed=1):
    return RunSpec(
        run_id=run_id,
        config=config if config is not None else baseline_config(),
        trace=WorkloadSpec("health", seed=seed),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        faults=faults,
    )


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """One real mixed campaign every test copies before tampering."""
    directory = tmp_path_factory.mktemp("audited") / "camp"
    CampaignRunner(str(directory), isolation="inline").run(
        [
            _spec("ok1"),
            _spec("ok2", stride_config()),
            _spec("bad", faults=FaultSpec(crash_at=100)),
        ]
    )
    return directory


@pytest.fixture()
def camp(campaign_dir, tmp_path):
    """A private tamperable copy of the reference campaign."""
    import shutil

    target = tmp_path / "camp"
    shutil.copytree(campaign_dir, target)
    return target


def _codes(report):
    return [issue.code for issue in report.issues]


def _edit_manifest(camp, mutate):
    path = camp / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


def _append_entry(camp, entry):
    with open(camp / CHECKPOINT_NAME, "a") as handle:
        handle.write(encode_entry(entry) + "\n")


class TestCleanCampaign:
    def test_passes_with_no_issues(self, camp):
        report = audit_campaign(str(camp))
        assert report.ok
        assert report.issues == []
        assert report.stats["checkpoint_entries"] == 3
        assert report.stats["entries_ok"] == 2
        assert report.stats["entries_failed"] == 1
        assert "PASS" in report.summary()

    def test_missing_directory_is_an_error(self, tmp_path):
        report = audit_campaign(str(tmp_path / "nowhere"))
        assert _codes(report) == ["campaign.missing"]
        assert not report.ok


class TestCheckpointRules:
    def test_torn_line_is_a_warning(self, camp):
        with open(camp / CHECKPOINT_NAME, "a") as handle:
            handle.write('{"run_id": "torn", "status"')
        report = audit_campaign(str(camp))
        assert report.ok  # recovered damage, not a lie
        assert _codes(report) == ["checkpoint.line.json"]
        assert report.stats["checkpoint_corrupt_lines"] == 1

    def test_bit_rotted_line_is_a_warning(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"attempts": 1', '"attempts": 8')
        # Rotting an entry drops it from replay, so the manifest now
        # over-counts relative to the checkpoint — within gap slack 0
        # that is also an error, which is exactly the point: silent
        # corruption must not audit clean.
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "checkpoint.line.crc" in _codes(report)

    def test_duplicate_entry_same_fingerprint_is_flagged(self, camp):
        original = json.loads(
            (camp / CHECKPOINT_NAME).read_text().splitlines()[0]
        )
        original.pop("crc32", None)
        _append_entry(camp, original)
        report = audit_campaign(str(camp))
        assert "checkpoint.duplicate" in _codes(report)
        assert report.ok

    def test_shared_fingerprint_across_run_ids_is_flagged(self, camp):
        clone = json.loads(
            (camp / CHECKPOINT_NAME).read_text().splitlines()[0]
        )
        clone.pop("crc32", None)
        clone["run_id"] = "ok1-again"
        _append_entry(camp, clone)
        report = audit_campaign(str(camp))
        assert "checkpoint.fingerprint.shared" in _codes(report)

    def test_unknown_status_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "weird", "status": "maybe", "fingerprint": "f"},
        )
        report = audit_campaign(str(camp))
        assert "entry.status" in _codes(report)
        assert not report.ok

    def test_ok_entry_without_result_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "hollow", "status": "ok", "fingerprint": "f",
             "result": None},
        )
        report = audit_campaign(str(camp))
        assert "entry.result.missing" in _codes(report)

    def test_tampered_result_breaks_roundtrip(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = path.read_text().splitlines()
        entry = json.loads(lines[0])
        entry.pop("crc32", None)
        assert entry["status"] == "ok"
        # A field result_from_dict does not preserve: silent extras.
        entry["result"]["not_a_simulation_field"] = 1
        lines[0] = encode_entry(entry)
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "entry.result.roundtrip" in _codes(report)
        assert not report.ok

    def test_failed_entry_without_error_detail_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "mute", "status": "failed", "fingerprint": "f",
             "error": {"kind": "SimulationError"}},
        )
        report = audit_campaign(str(camp))
        assert "entry.error.missing" in _codes(report)

    def test_fully_unreadable_checkpoint_is_an_error(self, camp):
        (camp / CHECKPOINT_NAME).write_text("garbage\nmore garbage\n")
        report = audit_campaign(str(camp))
        assert "checkpoint.unreadable" in _codes(report)
        assert not report.ok


class TestManifestRules:
    def test_missing_manifest_is_an_error(self, camp):
        os.unlink(camp / MANIFEST_NAME)
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.missing"]

    def test_truncated_manifest_is_an_error(self, camp):
        text = (camp / MANIFEST_NAME).read_text()
        (camp / MANIFEST_NAME).write_text(text[: len(text) // 2])
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.unreadable"]

    def test_inflated_ok_count_is_an_error(self, camp):
        _edit_manifest(camp, lambda m: m.update(ok=m["ok"] + 1))
        report = audit_campaign(str(camp))
        assert "manifest.ok.count" in _codes(report)
        assert "manifest.tally.ok" in _codes(report)

    def test_unbacked_metric_is_an_error(self, camp):
        def mutate(manifest):
            manifest["metrics"]["ghost"] = manifest["metrics"]["ok1"]
            manifest["ok"] += 1

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.ok.unbacked" in _codes(report)

    def test_status_flip_is_an_error(self, camp):
        # The checkpoint says "bad" failed; claim it succeeded.
        def mutate(manifest):
            record = manifest["failures"].pop()
            manifest["failed"] -= 1
            manifest["ok"] += 1
            manifest["metrics"][record["run_id"]] = manifest["metrics"]["ok1"]

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.ok.disagrees" in _codes(report)
        assert not report.ok

    def test_fabricated_failure_is_an_error(self, camp):
        def mutate(manifest):
            manifest["failures"].append(
                {"run_id": "ok1", "status": "failed",
                 "kind": "SimulationError", "message": "no it didn't"}
            )

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.failure.disagrees" in _codes(report)

    def test_wrong_total_is_an_error(self, camp):
        _edit_manifest(camp, lambda m: m.update(total_points=5))
        report = audit_campaign(str(camp))
        assert "manifest.total" in _codes(report)

    def test_declared_gap_excuses_a_missing_entry(self, camp):
        # Drop one ok entry from the checkpoint but declare the gap, as
        # the runner does when an append never lands: warning, not error.
        path = camp / CHECKPOINT_NAME
        lines = [
            line for line in path.read_text().splitlines()
            if '"run_id": "ok2"' not in line
        ]
        path.write_text("\n".join(lines) + "\n")
        _edit_manifest(camp, lambda m: m.update(checkpoint_gaps=["ok2"]))
        report = audit_campaign(str(camp))
        assert report.ok, report.summary()
        assert _codes(report) == ["manifest.checkpoint_gaps"]

    def test_undeclared_missing_entry_is_an_error(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = [
            line for line in path.read_text().splitlines()
            if '"run_id": "ok2"' not in line
        ]
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "manifest.ok.unbacked" in _codes(report)
        assert not report.ok


class TestLitterRules:
    def test_stale_snapshot_is_a_warning(self, camp):
        snapshots = camp / "snapshots"
        snapshots.mkdir()
        (snapshots / "deadbeef.snap").write_bytes(b"x")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["snapshot.stale"]
        assert report.stats["snapshots_stale"] == 1

    def test_quarantined_snapshot_is_a_warning(self, camp):
        snapshots = camp / "snapshots"
        snapshots.mkdir()
        (snapshots / "deadbeef.snap.corrupt").write_bytes(b"x")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["snapshot.quarantined"]

    def test_orphaned_manifest_tmp_is_a_warning(self, camp):
        (camp / (MANIFEST_NAME + ".tmp.123.abcd")).write_text("{half")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.tmp"]


class TestAuditCli:
    def test_pass_and_exit_codes(self, camp, capsys):
        from repro.cli import main

        assert main(["audit", str(camp)]) == 0
        assert "PASS" in capsys.readouterr().out
        _edit_manifest(camp, lambda m: m.update(total_points=9))
        assert main(["audit", str(camp)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, camp, capsys):
        from repro.cli import main

        with open(camp / CHECKPOINT_NAME, "a") as handle:
            handle.write('{"torn')
        assert main(["audit", str(camp)]) == 0
        assert main(["audit", str(camp), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "checkpoint.line.json" in out
