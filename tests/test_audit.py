"""The offline campaign auditor (``repro-sim audit``).

Each tampering scenario drives one audit rule: a clean campaign passes,
recovered damage surfaces as warnings, and every way the artifacts can
*disagree with each other* is an error with a stable issue code.
"""

import json
import os

import pytest

from repro.runner import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CampaignRunner,
    CheckpointStore,
    FaultSpec,
    RunSpec,
    WorkloadSpec,
    audit_campaign,
)
from repro.runner.checkpoint import encode_entry
from repro.sim import baseline_config, stride_config

INSTRUCTIONS = 1_000
WARMUP = 200


def _spec(run_id, config=None, faults=None, seed=1):
    return RunSpec(
        run_id=run_id,
        config=config if config is not None else baseline_config(),
        trace=WorkloadSpec("health", seed=seed),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        faults=faults,
    )


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """One real mixed campaign every test copies before tampering."""
    directory = tmp_path_factory.mktemp("audited") / "camp"
    CampaignRunner(str(directory), isolation="inline").run(
        [
            _spec("ok1"),
            _spec("ok2", stride_config()),
            _spec("bad", faults=FaultSpec(crash_at=100)),
        ]
    )
    return directory


@pytest.fixture()
def camp(campaign_dir, tmp_path):
    """A private tamperable copy of the reference campaign."""
    import shutil

    target = tmp_path / "camp"
    shutil.copytree(campaign_dir, target)
    return target


def _codes(report):
    return [issue.code for issue in report.issues]


def _edit_manifest(camp, mutate):
    path = camp / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


def _append_entry(camp, entry):
    with open(camp / CHECKPOINT_NAME, "a") as handle:
        handle.write(encode_entry(entry) + "\n")


class TestCleanCampaign:
    def test_passes_with_no_issues(self, camp):
        report = audit_campaign(str(camp))
        assert report.ok
        assert report.issues == []
        assert report.stats["checkpoint_entries"] == 3
        assert report.stats["entries_ok"] == 2
        assert report.stats["entries_failed"] == 1
        assert "PASS" in report.summary()

    def test_missing_directory_is_an_error(self, tmp_path):
        report = audit_campaign(str(tmp_path / "nowhere"))
        assert _codes(report) == ["campaign.missing"]
        assert not report.ok


class TestCheckpointRules:
    def test_torn_line_is_a_warning(self, camp):
        with open(camp / CHECKPOINT_NAME, "a") as handle:
            handle.write('{"run_id": "torn", "status"')
        report = audit_campaign(str(camp))
        assert report.ok  # recovered damage, not a lie
        assert _codes(report) == ["checkpoint.line.json"]
        assert report.stats["checkpoint_corrupt_lines"] == 1

    def test_bit_rotted_line_is_a_warning(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"attempts": 1', '"attempts": 8')
        # Rotting an entry drops it from replay, so the manifest now
        # over-counts relative to the checkpoint — within gap slack 0
        # that is also an error, which is exactly the point: silent
        # corruption must not audit clean.
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "checkpoint.line.crc" in _codes(report)

    def test_duplicate_entry_same_fingerprint_is_flagged(self, camp):
        original = json.loads(
            (camp / CHECKPOINT_NAME).read_text().splitlines()[0]
        )
        original.pop("crc32", None)
        _append_entry(camp, original)
        report = audit_campaign(str(camp))
        assert "checkpoint.duplicate" in _codes(report)
        assert report.ok

    def test_shared_fingerprint_across_run_ids_is_flagged(self, camp):
        clone = json.loads(
            (camp / CHECKPOINT_NAME).read_text().splitlines()[0]
        )
        clone.pop("crc32", None)
        clone["run_id"] = "ok1-again"
        _append_entry(camp, clone)
        report = audit_campaign(str(camp))
        assert "checkpoint.fingerprint.shared" in _codes(report)

    def test_unknown_status_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "weird", "status": "maybe", "fingerprint": "f"},
        )
        report = audit_campaign(str(camp))
        assert "entry.status" in _codes(report)
        assert not report.ok

    def test_ok_entry_without_result_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "hollow", "status": "ok", "fingerprint": "f",
             "result": None},
        )
        report = audit_campaign(str(camp))
        assert "entry.result.missing" in _codes(report)

    def test_tampered_result_breaks_roundtrip(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = path.read_text().splitlines()
        entry = json.loads(lines[0])
        entry.pop("crc32", None)
        assert entry["status"] == "ok"
        # A field result_from_dict does not preserve: silent extras.
        entry["result"]["not_a_simulation_field"] = 1
        lines[0] = encode_entry(entry)
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "entry.result.roundtrip" in _codes(report)
        assert not report.ok

    def test_failed_entry_without_error_detail_is_an_error(self, camp):
        _append_entry(
            camp,
            {"run_id": "mute", "status": "failed", "fingerprint": "f",
             "error": {"kind": "SimulationError"}},
        )
        report = audit_campaign(str(camp))
        assert "entry.error.missing" in _codes(report)

    def test_fully_unreadable_checkpoint_is_an_error(self, camp):
        (camp / CHECKPOINT_NAME).write_text("garbage\nmore garbage\n")
        report = audit_campaign(str(camp))
        assert "checkpoint.unreadable" in _codes(report)
        assert not report.ok


class TestManifestRules:
    def test_missing_manifest_is_an_error(self, camp):
        os.unlink(camp / MANIFEST_NAME)
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.missing"]

    def test_truncated_manifest_is_an_error(self, camp):
        text = (camp / MANIFEST_NAME).read_text()
        (camp / MANIFEST_NAME).write_text(text[: len(text) // 2])
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.unreadable"]

    def test_inflated_ok_count_is_an_error(self, camp):
        _edit_manifest(camp, lambda m: m.update(ok=m["ok"] + 1))
        report = audit_campaign(str(camp))
        assert "manifest.ok.count" in _codes(report)
        assert "manifest.tally.ok" in _codes(report)

    def test_unbacked_metric_is_an_error(self, camp):
        def mutate(manifest):
            manifest["metrics"]["ghost"] = manifest["metrics"]["ok1"]
            manifest["ok"] += 1

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.ok.unbacked" in _codes(report)

    def test_status_flip_is_an_error(self, camp):
        # The checkpoint says "bad" failed; claim it succeeded.
        def mutate(manifest):
            record = manifest["failures"].pop()
            manifest["failed"] -= 1
            manifest["ok"] += 1
            manifest["metrics"][record["run_id"]] = manifest["metrics"]["ok1"]

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.ok.disagrees" in _codes(report)
        assert not report.ok

    def test_fabricated_failure_is_an_error(self, camp):
        def mutate(manifest):
            manifest["failures"].append(
                {"run_id": "ok1", "status": "failed",
                 "kind": "SimulationError", "message": "no it didn't"}
            )

        _edit_manifest(camp, mutate)
        report = audit_campaign(str(camp))
        assert "manifest.failure.disagrees" in _codes(report)

    def test_wrong_total_is_an_error(self, camp):
        _edit_manifest(camp, lambda m: m.update(total_points=5))
        report = audit_campaign(str(camp))
        assert "manifest.total" in _codes(report)

    def test_declared_gap_excuses_a_missing_entry(self, camp):
        # Drop one ok entry from the checkpoint but declare the gap, as
        # the runner does when an append never lands: warning, not error.
        path = camp / CHECKPOINT_NAME
        lines = [
            line for line in path.read_text().splitlines()
            if '"run_id": "ok2"' not in line
        ]
        path.write_text("\n".join(lines) + "\n")
        _edit_manifest(camp, lambda m: m.update(checkpoint_gaps=["ok2"]))
        report = audit_campaign(str(camp))
        assert report.ok, report.summary()
        assert _codes(report) == ["manifest.checkpoint_gaps"]

    def test_undeclared_missing_entry_is_an_error(self, camp):
        path = camp / CHECKPOINT_NAME
        lines = [
            line for line in path.read_text().splitlines()
            if '"run_id": "ok2"' not in line
        ]
        path.write_text("\n".join(lines) + "\n")
        report = audit_campaign(str(camp))
        assert "manifest.ok.unbacked" in _codes(report)
        assert not report.ok


class TestLitterRules:
    def test_stale_snapshot_is_a_warning(self, camp):
        snapshots = camp / "snapshots"
        snapshots.mkdir()
        (snapshots / "deadbeef.snap").write_bytes(b"x")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["snapshot.stale"]
        assert report.stats["snapshots_stale"] == 1

    def test_quarantined_snapshot_is_a_warning(self, camp):
        snapshots = camp / "snapshots"
        snapshots.mkdir()
        (snapshots / "deadbeef.snap.corrupt").write_bytes(b"x")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["snapshot.quarantined"]

    def test_orphaned_manifest_tmp_is_a_warning(self, camp):
        (camp / (MANIFEST_NAME + ".tmp.123.abcd")).write_text("{half")
        report = audit_campaign(str(camp))
        assert _codes(report) == ["manifest.tmp"]


class TestAuditCli:
    def test_pass_and_exit_codes(self, camp, capsys):
        from repro.cli import main

        assert main(["audit", str(camp)]) == 0
        assert "PASS" in capsys.readouterr().out
        _edit_manifest(camp, lambda m: m.update(total_points=9))
        assert main(["audit", str(camp)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, camp, capsys):
        from repro.cli import main

        with open(camp / CHECKPOINT_NAME, "a") as handle:
            handle.write('{"torn')
        assert main(["audit", str(camp)]) == 0
        assert main(["audit", str(camp), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "checkpoint.line.json" in out


# -- service directories -----------------------------------------------


@pytest.fixture(scope="module")
def service_dir_ref(tmp_path_factory):
    """One real finished service job every test copies before tampering.

    Built with the production machinery end to end: submit through the
    store, claim with a real lease, run the campaign, record the
    completion — so a clean copy passes the strict audit by construction.
    """
    from repro.service import JobStore, normalize_spec
    from repro.service.http import build_campaign

    directory = tmp_path_factory.mktemp("service") / "svc"
    store = JobStore(str(directory))
    spec = normalize_spec({
        "workload": "health",
        "machines": "base,stride",
        "instructions": INSTRUCTIONS,
        "warmup": WARMUP,
        "isolation": "inline",
    })
    record, _ = store.submit(spec)
    claimed, lease = store.claim("audit-fixture")
    specs, runner_kwargs = build_campaign(spec)
    CampaignRunner(store.run_dir(record.job_id), **runner_kwargs).run(specs)
    with open(
        os.path.join(store.run_dir(record.job_id), MANIFEST_NAME)
    ) as handle:
        manifest = json.load(handle)
    store.complete(
        claimed, lease, "done",
        summary={
            key: manifest.get(key)
            for key in ("total_points", "ok", "failed", "poisoned")
        },
    )
    return directory


@pytest.fixture()
def svc(service_dir_ref, tmp_path):
    """A private tamperable copy of the reference service directory."""
    import shutil

    target = tmp_path / "svc"
    shutil.copytree(service_dir_ref, target)
    return target


def _job_id(svc):
    from repro.runner.checkpoint import iter_checkpoint_lines

    for _, _, entry, problem in iter_checkpoint_lines(
        str(svc / "jobs.jsonl"), key="job_id"
    ):
        if problem is None:
            return entry["job_id"]
    raise AssertionError("no job in fixture store")


def _job_record(svc):
    from repro.runner.checkpoint import iter_checkpoint_lines

    records = {}
    for _, _, entry, problem in iter_checkpoint_lines(
        str(svc / "jobs.jsonl"), key="job_id"
    ):
        if problem is None:
            records[entry["job_id"]] = entry
    return records[_job_id(svc)]


def _append_job(svc, entry):
    with open(svc / "jobs.jsonl", "a") as handle:
        handle.write(encode_entry(entry) + "\n")


def _write_lease(svc, job_id, age=0.0, ttl=30.0, owner="w1"):
    import time

    lease_dir = svc / "leases"
    lease_dir.mkdir(exist_ok=True)
    now = time.time()
    (lease_dir / f"{job_id}.lease").write_text(json.dumps({
        "job_id": job_id,
        "owner": owner,
        "generation": 1,
        "acquired_at": now - age,
        "renewed_at": now - age,
        "ttl": ttl,
    }))


class TestServiceClean:
    def test_detection(self, svc, camp):
        from repro.runner import is_service_dir

        assert is_service_dir(str(svc))
        assert not is_service_dir(str(camp))
        assert not is_service_dir(str(svc / "nowhere"))

    def test_clean_service_passes_strict(self, svc):
        from repro.runner import audit_service

        report = audit_service(str(svc))
        assert report.ok
        assert report.issues == []
        assert report.stats["jobs"] == 1
        assert report.stats["jobs_done"] == 1
        assert report.stats["leases"] == 0
        assert report.stats["job_runs_audited"] == 1

    def test_missing_directory_is_an_error(self, tmp_path):
        from repro.runner import audit_service

        report = audit_service(str(tmp_path / "nowhere"))
        assert _codes(report) == ["service.missing"]


class TestJobStoreRules:
    def test_torn_job_line_is_a_warning(self, svc):
        from repro.runner import audit_service

        with open(svc / "jobs.jsonl", "a") as handle:
            handle.write('{"job_id": "torn", "sta')
        report = audit_service(str(svc))
        assert _codes(report) == ["jobs.line.json"]
        assert report.stats["job_corrupt_lines"] == 1

    def test_wholly_unreadable_log_is_an_error(self, svc):
        from repro.runner import audit_service

        (svc / "jobs.jsonl").write_text("garbage\nmore garbage\n")
        report = audit_service(str(svc))
        assert "jobs.unreadable" in _codes(report)
        assert not report.ok

    def test_unknown_state_is_an_error(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["state"] = "dancing"
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.state" in _codes(report)

    def test_done_without_summary_is_an_error(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["summary"] = None
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.summary.missing" in _codes(report)

    def test_failed_without_error_taxonomy_is_an_error(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["state"] = "failed"
        record["error"] = {"kind": "", "message": ""}
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.error.missing" in _codes(report)

    def test_terminal_job_with_owner_is_an_error(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["owner"] = "zombie-worker"
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.owner.terminal" in _codes(report)

    def test_mixed_rev_entries_are_a_collision_error(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["rev"] = "0badc0de"
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.rev.collision" in _codes(report)
        assert not report.ok

    def test_legacy_entries_mixed_with_keyed_ones_collide(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record.pop("rev", None)
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.rev.collision" in _codes(report)

    def test_forged_rev_keyed_id_is_an_error(self, svc):
        from repro.service import job_id_of

        from repro.runner import audit_service

        record = _job_record(svc)
        record["spec"] = dict(record["spec"], seed=999)
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.id.mismatch" in _codes(report)
        assert not report.ok

    def test_legacy_spec_only_log_replays_clean(self, svc, tmp_path):
        """A pre-revision-keying log (no rev fields anywhere) audits
        with no rev collisions and only a migration warning at worst."""
        from repro.service import job_id_of

        from repro.runner import audit_service

        record = _job_record(svc)
        spec = dict(record["spec"], seed=777)
        legacy = {
            "job_id": job_id_of(spec),  # legacy spec-only address
            "state": "queued",
            "spec": spec,
            "submitted_at": 1.0,
            "updated_at": 1.0,
            "claims": 0,
            "expiries": 0,
        }
        _append_job(svc, legacy)
        report = audit_service(str(svc))
        assert "job.rev.collision" not in _codes(report)
        assert "job.id.mismatch" not in _codes(report)


class TestLeaseRules:
    def test_unparsable_lease_is_an_error(self, svc):
        from repro.runner import audit_service

        lease_dir = svc / "leases"
        lease_dir.mkdir(exist_ok=True)
        (lease_dir / "ghost.lease").write_text("{torn")
        report = audit_service(str(svc))
        assert "lease.unparsable" in _codes(report)

    def test_lease_for_unknown_job_is_orphaned(self, svc):
        from repro.runner import audit_service

        _write_lease(svc, "no-such-job")
        report = audit_service(str(svc))
        assert "lease.orphaned" in _codes(report)

    def test_lease_for_finished_job_is_orphaned(self, svc):
        from repro.runner import audit_service

        _write_lease(svc, _job_id(svc))
        report = audit_service(str(svc))
        assert "lease.orphaned" in _codes(report)

    def test_expired_lease_on_running_job_is_a_warning(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["state"] = "running"
        record["owner"] = "w1"
        _append_job(svc, record)
        _write_lease(svc, record["job_id"], age=120.0, ttl=30.0)
        report = audit_service(str(svc))
        assert "lease.expired" in _codes(report)
        # An expired lease is recoverable damage, not a contradiction.
        assert report.ok

    def test_running_job_without_lease_is_a_warning(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["state"] = "running"
        record["owner"] = "w1"
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.running.unleased" in _codes(report)
        assert report.ok


class TestJobRunRules:
    def test_done_job_without_manifest_is_an_error(self, svc):
        from repro.runner import audit_service

        os.remove(svc / "runs" / _job_id(svc) / MANIFEST_NAME)
        report = audit_service(str(svc))
        assert "job.manifest.missing" in _codes(report)

    def test_incomplete_manifest_on_done_job_is_an_error(self, svc):
        from repro.runner import audit_service

        path = svc / "runs" / _job_id(svc) / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["status"] = "interrupted"
        path.write_text(json.dumps(manifest))
        report = audit_service(str(svc))
        assert "job.manifest.status" in _codes(report)

    def test_store_summary_must_agree_with_the_manifest(self, svc):
        from repro.runner import audit_service

        record = _job_record(svc)
        record["summary"] = dict(record["summary"], ok=99)
        _append_job(svc, record)
        report = audit_service(str(svc))
        assert "job.manifest.disagrees" in _codes(report)

    def test_run_dir_issues_surface_with_the_job_prefix(self, svc):
        from repro.runner import audit_service

        job_id = _job_id(svc)
        with open(svc / "runs" / job_id / CHECKPOINT_NAME, "a") as handle:
            handle.write('{"torn')
        report = audit_service(str(svc))
        torn = [
            issue for issue in report.issues
            if issue.code == "checkpoint.line.json"
        ]
        assert torn and f"job {job_id!r}:" in torn[0].message


class TestServiceLitter:
    def test_orphaned_tmp_files_are_warnings(self, svc):
        (svc / "jobs.jsonl.tmp.123").write_text("{half")
        leases = svc / "leases"
        leases.mkdir(exist_ok=True)
        (leases / "x.lease.tmp.9").write_text("{half")
        from repro.runner import audit_service

        report = audit_service(str(svc))
        assert _codes(report) == ["service.tmp", "service.tmp"]
        assert report.stats["service_tmp_files"] == 2
