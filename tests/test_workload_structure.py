"""Structural tests: each stand-in exhibits its paper-documented mechanism."""

import itertools
from collections import Counter

from repro.trace.record import InstrKind
from repro.workloads import get_workload
from repro.workloads.burg import BurgWorkload
from repro.workloads.deltablue import DeltaBlueWorkload
from repro.workloads.health import HealthWorkload
from repro.workloads.sis import SisWorkload
from repro.workloads.turb3d import Turb3dWorkload


def _loads(name, count, **kwargs):
    stream = get_workload(name, **kwargs)
    return [r for r in itertools.islice(stream, count) if r.is_load]


class TestHealthStructure:
    def test_chase_addresses_repeat_across_sweeps(self):
        """The lists are static apart from rare relinks, so the second
        sweep's chase sequence mostly matches the first — the property
        the Markov predictor lives on.  The chase PC is identified
        structurally: it is the dependence-chained heap load."""
        workload = HealthWorkload(seed=3)
        sweep_len = workload.num_lists * workload.nodes_per_list
        loads = []
        examined = 0
        for record in workload.generate():
            examined += 1
            assert examined < 100 * sweep_len, "chase loads not found"
            if record.is_load and record.dep1 > 0 and record.addr % 64 == 0:
                loads.append(record.addr)
            if len(loads) >= 2 * sweep_len:
                break
        first, second = loads[:sweep_len], loads[sweep_len:2 * sweep_len]
        matches = sum(1 for a, b in zip(first, second) if a == b)
        assert matches / sweep_len > 0.8

    def test_working_set_exceeds_l1(self):
        workload = HealthWorkload()
        footprint = workload.num_lists * workload.nodes_per_list * 64
        assert footprint > 32 * 1024

    def test_chase_deltas_fit_markov_entries(self):
        from repro.utils import fits_signed

        loads = _loads("health", 20_000)
        chase = [r.addr for r in loads if r.dep1 > 0 and r.addr % 64 == 0]
        in_range = sum(
            1 for a, b in zip(chase, chase[1:]) if fits_signed(b - a, 16)
        )
        assert in_range / max(1, len(chase) - 1) > 0.9


class TestBurgStructure:
    def test_walks_follow_recurring_paths(self):
        """The rule set is finite, so entire walk sequences recur.

        Every walk starts at the tree root, so the root address splits
        the chase-load stream into individual walks.
        """
        workload = BurgWorkload(seed=2)
        pc_walk = 0x10000
        root = None
        walks = []
        current = []
        for record in itertools.islice(workload.generate(), 40_000):
            if not (record.is_load and record.pc == pc_walk):
                continue
            if root is None:
                root = record.addr
            if record.addr == root and current:
                walks.append(tuple(current))
                current = []
            current.append(record.addr)
        counts = Counter(walks)
        assert counts and counts.most_common(1)[0][1] >= 2

    def test_tree_nodes_allocated_depth_first(self):
        workload = BurgWorkload()
        from repro.workloads.base import HeapModel

        addresses = workload._build_tree(HeapModel())
        # DFS order: the left child of the root is adjacent to the root.
        assert addresses[1] == addresses[0] + 32


class TestDeltaBlueStructure:
    def test_arena_recycles_addresses(self):
        workload = DeltaBlueWorkload(seed=1, churn_chance=0.5)
        initial = workload.num_chains * workload.chain_length * 48
        seen_before = set()
        reused = 0
        for record in itertools.islice(workload.generate(), 200_000):
            if not record.is_store:
                continue
            if record.addr in seen_before:
                reused += 1
            seen_before.add(record.addr)
        assert reused > 0  # the arena wrapped and reused memory

    def test_plan_then_execute_revisits_chain(self):
        workload = DeltaBlueWorkload(seed=1)
        plan_pc = None
        exec_pc = None
        plan_addrs = []
        exec_addrs = []
        for record in itertools.islice(workload.generate(), 3000):
            if not record.is_load:
                continue
            if plan_pc is None and record.dep1 > 3:
                plan_pc = record.pc
            if record.pc == plan_pc:
                plan_addrs.append(record.addr)
        assert len(plan_addrs) > 10


class TestSisStructure:
    def test_more_scan_streams_than_buffers(self):
        workload = SisWorkload()
        assert workload.num_tables > 8

    def test_scan_addresses_advance_monotonically_per_table(self):
        loads = _loads("sis", 6000)
        per_pc = {}
        for record in loads:
            per_pc.setdefault(record.pc, []).append(record.addr)
        scan_streams = [
            addrs for addrs in per_pc.values()
            if len(addrs) > 10 and addrs[0] >= 0x6000_0000
        ]
        assert scan_streams
        for addrs in scan_streams:
            diffs = [b - a for a, b in zip(addrs, addrs[1:]) if b != a]
            forward = sum(1 for d in diffs if d > 0)
            assert forward / max(1, len(diffs)) > 0.9


class TestTurb3dStructure:
    def test_three_distinct_strides(self):
        """x, y, and z sweeps stride by element, row, and plane."""
        workload = Turb3dWorkload()
        strides = set()
        last_by_pc = {}
        for record in itertools.islice(workload.generate(), 120_000):
            if not record.is_load:
                continue
            previous = last_by_pc.get(record.pc)
            if previous is not None:
                delta = record.addr - previous
                if delta > 0:
                    strides.add(delta)
            last_by_pc[record.pc] = record.addr
        assert 8 in strides  # x: element
        assert workload.nx * 8 in strides  # y: row
        assert workload.nx * workload.ny * 8 in strides  # z: plane

    def test_fp_heavy_mix(self):
        counts = Counter(
            r.kind for r in itertools.islice(get_workload("turb3d"), 10_000)
        )
        fp = counts[InstrKind.FADD] + counts[InstrKind.FMUL]
        assert fp / 10_000 > 0.3
