"""Tests for the command-line interface."""

import json
import os

import pytest

import repro.cli as cli
from repro.cli import MACHINES, main
from repro.trace.io import load_trace_list


class TestWorkloadsCommand:
    def test_lists_all_six(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("health", "burg", "deltablue", "gs", "sis", "turb3d"):
            assert name in out


class TestRunCommand:
    def test_runs_baseline(self, capsys):
        code = main(
            ["run", "health", "--machine", "base", "--instructions", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "prefetches issued" in out

    def test_runs_psb(self, capsys):
        code = main(
            ["run", "health", "--machine", "psb",
             "--instructions", "8000", "--warmup", "2000"]
        )
        assert code == 0
        assert "prefetch accuracy" in capsys.readouterr().out

    def test_every_machine_name_is_buildable(self):
        for maker in MACHINES.values():
            config = maker()
            assert config.l1_data.size_bytes == 32 * 1024

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "quake"])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["run", "health", "--machine", "warp-drive"])


class TestCompareCommand:
    def test_prints_all_machines(self, capsys):
        code = main(
            ["compare", "turb3d", "--instructions", "4000", "--warmup", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for label in ("Base", "Stride", "ConfAlloc-Priority"):
            assert label in out


class TestTraceCommand:
    def test_writes_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.trace")
        code = main(
            ["trace", "burg", "--out", path, "--instructions", "500"]
        )
        assert code == 0
        records = load_trace_list(path)
        assert len(records) == 500
        assert "wrote 500 records" in capsys.readouterr().out


class TestSweepCommand:
    _FAST = ["--instructions", "2000", "--warmup", "500", "--no-isolate"]

    def test_runs_selected_machines(self, capsys):
        code = main(
            ["sweep", "health", "--machines", "base,psb"] + self._FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base" in out and "psb" in out and "ok" in out

    def test_writes_campaign_state(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        code = main(
            ["sweep", "health", "--machines", "base", "--campaign-dir", d]
            + self._FAST
        )
        assert code == 0
        manifest = json.load(open(os.path.join(d, "manifest.json")))
        assert manifest["status"] == "complete"
        assert manifest["ok"] == 1

    def test_resume_skips_completed(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        args = (
            ["sweep", "health", "--machines", "base", "--campaign-dir", d]
            + self._FAST
        )
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_parallel_workers_all_points_ok(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        code = main(
            ["sweep", "health", "--machines", "base,stride,psb",
             "--instructions", "2000", "--warmup", "500",
             "--workers", "2", "--progress", "--campaign-dir", d]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count(" ok ") >= 3 or "ok" in captured.out
        assert "campaign complete" in captured.err  # --progress narration
        manifest = json.load(open(os.path.join(d, "manifest.json")))
        assert manifest["status"] == "complete"
        assert manifest["ok"] == 3 and manifest["failed"] == 0
        assert manifest["policy"]["workers"] == 2

    def test_workers_with_no_isolate_exits_one(self, capsys):
        code = main(
            ["sweep", "health", "--machines", "base", "--workers", "2"]
            + self._FAST
        )
        assert code == 1
        assert "isolation" in capsys.readouterr().err


class TestExitCodes:
    def test_success_exits_zero(self):
        assert main(["workloads"]) == 0

    def test_repro_error_exits_one_with_message(self, capsys):
        code = main(
            ["sweep", "health", "--machines", "warp-drive",
             "--instructions", "100", "--no-isolate"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "repro-sim: error:" in captured.err
        assert "Traceback" not in captured.err

    def test_resume_without_campaign_dir_exits_one(self, capsys):
        code = main(
            ["sweep", "health", "--resume", "--instructions", "100",
             "--no-isolate"]
        )
        assert code == 1
        assert "campaign_dir" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def interrupted():
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_command_workloads", interrupted)
        assert main(["workloads"]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestServiceCommands:
    def test_service_commands_are_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("serve", "submit", "jobs", "audit"):
            assert command in out

    def test_audit_autodetects_a_service_dir(self, tmp_path, capsys):
        from repro.service import JobStore, normalize_spec

        store = JobStore(str(tmp_path / "svc"))
        store.submit(normalize_spec({"workload": "health"}))
        assert main(["audit", str(tmp_path / "svc")]) == 0
        out = capsys.readouterr().out
        assert "jobs_queued: 1" in out

    def test_submit_against_unreachable_server_exits_one(self, capsys):
        code = main([
            "submit", "health",
            "--server", "http://127.0.0.1:1",  # reserved port: refused
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_jobs_against_unreachable_server_exits_one(self, capsys):
        code = main(["jobs", "--server", "http://127.0.0.1:1"])
        assert code == 1
        assert "error" in capsys.readouterr().err.lower()
