"""Tests for the command-line interface."""

import pytest

from repro.cli import MACHINES, main
from repro.trace.io import load_trace_list


class TestWorkloadsCommand:
    def test_lists_all_six(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("health", "burg", "deltablue", "gs", "sis", "turb3d"):
            assert name in out


class TestRunCommand:
    def test_runs_baseline(self, capsys):
        code = main(
            ["run", "health", "--machine", "base", "--instructions", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "prefetches issued" in out

    def test_runs_psb(self, capsys):
        code = main(
            ["run", "health", "--machine", "psb",
             "--instructions", "8000", "--warmup", "2000"]
        )
        assert code == 0
        assert "prefetch accuracy" in capsys.readouterr().out

    def test_every_machine_name_is_buildable(self):
        for maker in MACHINES.values():
            config = maker()
            assert config.l1_data.size_bytes == 32 * 1024

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "quake"])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["run", "health", "--machine", "warp-drive"])


class TestCompareCommand:
    def test_prints_all_machines(self, capsys):
        code = main(
            ["compare", "turb3d", "--instructions", "4000", "--warmup", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for label in ("Base", "Stride", "ConfAlloc-Priority"):
            assert label in out


class TestTraceCommand:
    def test_writes_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.trace")
        code = main(
            ["trace", "burg", "--out", path, "--instructions", "500"]
        )
        assert code == 0
        records = load_trace_list(path)
        assert len(records) == 500
        assert "wrote 500 records" in capsys.readouterr().out
