"""Campaign progress tracking (``repro.obs.progress``)."""

import pytest

from repro.obs import CampaignProgress
from repro.runner import CampaignRunner, FaultSpec, RunSpec, WorkloadSpec
from repro.sim import baseline_config


def _outcome(run_id, ok=True, elapsed=2.0, resumed=False):
    from repro.runner.campaign import RunOutcome

    return RunOutcome(
        run_id=run_id,
        status="ok" if ok else "failed",
        attempts=1,
        error_kind=None if ok else "SimulationError",
        resumed=resumed,
        elapsed_seconds=elapsed,
    )


class TestTallies:
    def test_counts_and_in_flight(self):
        progress = CampaignProgress(clock=lambda: 0.0)
        progress.begin(4, workers=2)
        progress.point_started("a")
        progress.point_started("b")
        assert progress.in_flight == {"a", "b"}
        progress.point_finished(_outcome("a"))
        progress.point_finished(_outcome("b", ok=False))
        assert progress.done == 2
        assert progress.failed == 1
        assert progress.in_flight == set()
        assert progress.remaining == 2
        snapshot = progress.snapshot()
        assert snapshot["done"] == 2 and snapshot["failed"] == 1
        assert snapshot["elapsed"] == {"a": 2.0, "b": 2.0}

    def test_eta_spreads_over_workers(self):
        progress = CampaignProgress(clock=lambda: 0.0)
        progress.begin(6, workers=2)
        progress.point_finished(_outcome("a", elapsed=4.0))
        progress.point_finished(_outcome("b", elapsed=2.0))
        # avg 3s x 4 remaining / 2 workers
        assert progress.eta_seconds() == pytest.approx(6.0)

    def test_eta_excludes_resumed_points(self):
        progress = CampaignProgress(clock=lambda: 0.0)
        progress.begin(3)
        progress.point_finished(_outcome("free", elapsed=0.0, resumed=True))
        assert progress.eta_seconds() is None  # nothing actually executed
        progress.point_finished(_outcome("real", elapsed=5.0))
        assert progress.eta_seconds() == pytest.approx(5.0)
        assert progress.resumed == 1

    def test_emit_lines(self):
        lines = []
        progress = CampaignProgress(emit=lines.append, clock=lambda: 0.0)
        progress.begin(2, workers=2)
        progress.point_started("a")
        progress.point_finished(_outcome("a", elapsed=1.25))
        progress.finish("complete")
        assert lines[0].startswith("[1/2] a: ok in 1.2s")
        assert "campaign complete: 1 ok, 0 failed" in lines[1]

    def test_failed_line_names_the_kind(self):
        lines = []
        progress = CampaignProgress(emit=lines.append, clock=lambda: 0.0)
        progress.begin(1)
        progress.point_finished(_outcome("bad", ok=False))
        assert "FAILED (SimulationError)" in lines[0]

    def test_poisoned_points_are_tallied_and_named(self):
        from repro.runner.campaign import RunOutcome

        poisoned = RunOutcome(
            run_id="cursed",
            status="poisoned",
            attempts=3,
            error_kind="WorkerPoisonedError",
            elapsed_seconds=1.0,
        )
        lines = []
        progress = CampaignProgress(emit=lines.append, clock=lambda: 0.0)
        progress.begin(2)
        progress.point_finished(poisoned)
        progress.point_finished(_outcome("bad", ok=False))
        # Poisoned is a subset of failed, surfaced separately.
        assert progress.failed == 2
        assert progress.poisoned == 1
        assert "POISONED (WorkerPoisonedError)" in lines[0]
        snapshot = progress.snapshot()
        assert snapshot["poisoned"] == 1
        progress.finish("complete")
        assert "(1 poisoned)" in lines[-1]


class TestRunnerIntegration:
    def _specs(self):
        return [
            RunSpec(
                run_id=run_id,
                config=baseline_config(),
                trace=WorkloadSpec("health", seed=1),
                max_instructions=1_000,
                warmup_instructions=200,
                faults=faults,
            )
            for run_id, faults in [
                ("good", None),
                ("bad", FaultSpec(corrupt_at=50)),
            ]
        ]

    def test_serial_campaign_drives_the_hooks(self):
        lines = []
        progress = CampaignProgress(emit=lines.append)
        CampaignRunner(isolation="inline", progress=progress).run(
            self._specs()
        )
        assert progress.total == 2
        assert progress.done == 2
        assert progress.failed == 1
        assert progress.in_flight == set()
        assert len(lines) == 3  # two points + the finish line
        assert "campaign complete: 1 ok, 1 failed" in lines[-1]

    def test_parallel_campaign_drives_the_hooks(self):
        progress = CampaignProgress()
        CampaignRunner(
            workers=2, isolation="process", progress=progress
        ).run(self._specs())
        assert progress.done == 2
        assert progress.failed == 1
        assert progress.in_flight == set()
        assert set(progress.elapsed) == {"good", "bad"}
