"""Unit tests for stream-buffer schedulers (Section 4.4)."""

from repro.config import SchedulingPolicy, StreamBufferConfig
from repro.predictors.base import StreamState
from repro.streambuf.buffer import StreamBuffer
from repro.streambuf.scheduling import (
    PriorityScheduler,
    RoundRobinScheduler,
    make_scheduler,
)


def _buffers(count=4):
    buffers = [StreamBuffer(i, 4, priority_max=12) for i in range(count)]
    for buffer in buffers:
        buffer.allocate(StreamState(0x100 + buffer.index, 0), cycle=0)
    return buffers


def _always(buffer):
    return True


class TestRoundRobin:
    def test_rotates_between_calls(self):
        scheduler = RoundRobinScheduler()
        buffers = _buffers()
        picks = [
            scheduler.pick_for_prediction(buffers, _always).index
            for __ in range(6)
        ]
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_skips_ineligible(self):
        scheduler = RoundRobinScheduler()
        buffers = _buffers()
        eligible = lambda buffer: buffer.index % 2 == 1
        picks = [
            scheduler.pick_for_prediction(buffers, eligible).index
            for __ in range(4)
        ]
        assert picks == [1, 3, 1, 3]

    def test_none_when_no_candidates(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick_for_prediction(_buffers(), lambda b: False) is None

    def test_independent_pointers(self):
        scheduler = RoundRobinScheduler()
        buffers = _buffers()
        assert scheduler.pick_for_prediction(buffers, _always).index == 0
        assert scheduler.pick_for_prefetch(buffers, _always).index == 0


class TestPriority:
    def test_highest_priority_wins(self):
        scheduler = PriorityScheduler()
        buffers = _buffers()
        buffers[2].priority.set(9)
        assert scheduler.pick_for_prediction(buffers, _always) is buffers[2]

    def test_recency_breaks_ties(self):
        scheduler = PriorityScheduler()
        buffers = _buffers(2)
        for buffer in buffers:
            buffer.priority.set(5)
        buffers[0].last_use_cycle = 10
        buffers[1].last_use_cycle = 90
        assert scheduler.pick_for_prefetch(buffers, _always) is buffers[1]

    def test_respects_eligibility(self):
        scheduler = PriorityScheduler()
        buffers = _buffers()
        buffers[0].priority.set(12)
        eligible = lambda buffer: buffer.index != 0
        assert scheduler.pick_for_prediction(buffers, eligible) is not buffers[0]

    def test_none_when_empty(self):
        scheduler = PriorityScheduler()
        assert scheduler.pick_for_prefetch(_buffers(), lambda b: False) is None


class TestFactory:
    def test_builds_each_policy(self):
        rr = make_scheduler(
            StreamBufferConfig(scheduling=SchedulingPolicy.ROUND_ROBIN)
        )
        pri = make_scheduler(
            StreamBufferConfig(scheduling=SchedulingPolicy.PRIORITY)
        )
        assert isinstance(rr, RoundRobinScheduler)
        assert isinstance(pri, PriorityScheduler)
