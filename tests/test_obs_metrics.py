"""The metrics registry: instruments, null sink, and sampling."""

import pickle

import pytest

from repro.cli import MACHINES
from repro.obs.metrics import (
    MISS_LATENCY_BOUNDS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    metric_name,
)
from repro.sim.simulator import Simulator
from repro.workloads import get_workload


class TestInstruments:
    def test_counter_increments(self):
        counter = CounterMetric("c")
        counter.increment()
        counter.increment(5)
        assert counter.read() == 6.0

    def test_gauge_holds_latest(self):
        gauge = GaugeMetric("g")
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.read() == -1.0

    def test_metric_name(self):
        assert metric_name("sb3", "priority") == "sb3.priority"


class TestHistogramBoundaries:
    def test_value_on_bound_lands_in_that_bucket(self):
        hist = HistogramMetric("h", bounds=(10.0, 20.0))
        hist.observe(10.0)  # inclusive upper bound
        hist.observe(10.1)
        hist.observe(20.0)
        assert hist.buckets() == {"le_10": 1, "le_20": 2, "overflow": 0}

    def test_above_last_bound_overflows(self):
        hist = HistogramMetric("h", bounds=(1.0,))
        hist.observe(1.0)
        hist.observe(1.0001)
        assert hist.overflow == 1
        assert hist.total == 2

    def test_mean_and_read(self):
        hist = HistogramMetric("h", bounds=(100.0,))
        assert hist.mean == 0.0
        hist.observe(10.0)
        hist.observe(20.0)
        assert hist.mean == 15.0
        assert hist.read() == 2.0

    def test_reset_zeroes_everything(self):
        hist = HistogramMetric("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(99.0)
        hist.reset()
        assert hist.total == 0
        assert hist.overflow == 0
        assert hist.buckets() == {"le_1": 0, "le_2": 0, "overflow": 0}

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", bounds=())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            HistogramMetric("h", bounds=(2.0, 1.0))

    def test_default_latency_bounds_are_increasing(self):
        assert list(MISS_LATENCY_BOUNDS) == sorted(set(MISS_LATENCY_BOUNDS))


class TestDisabledSink:
    def test_disabled_registry_hands_out_shared_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a", "x") is NULL_COUNTER
        assert registry.gauge("a", "y") is NULL_GAUGE
        assert registry.histogram("a", "z", (1.0,)) is NULL_HISTOGRAM
        # Every request returns the very same object: no allocation.
        assert registry.counter("b", "other") is NULL_COUNTER

    def test_null_instruments_discard_updates(self):
        NULL_COUNTER.increment(100)
        NULL_GAUGE.set(42.0)
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_COUNTER.read() == 0.0
        assert NULL_GAUGE.read() == 0.0
        assert NULL_HISTOGRAM.read() == 0.0

    def test_disabled_registry_allocates_no_state(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a", "x").increment()
        registry.probe("a", "p", lambda: 1.0)
        registry.sample(100)
        registry.sample(200)
        assert registry.samples == []
        assert registry.snapshot() == {}
        assert registry._counters == {}
        assert registry._probes == {}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled


class TestSampling:
    def test_sample_reads_instruments_and_probes(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "events")
        registry.probe("p", "value", lambda: 7.0)
        counter.increment(3)
        registry.sample(100)
        counter.increment()
        registry.sample(200)
        assert registry.sample_cycles() == [100, 200]
        assert registry.series("c.events") == [(100, 3.0), (200, 4.0)]
        assert registry.series("p.value") == [(100, 7.0), (200, 7.0)]

    def test_same_cycle_sampled_once(self):
        registry = MetricsRegistry()
        registry.counter("c", "n")
        registry.sample(50)
        registry.sample(50)
        assert registry.sample_cycles() == [50]

    def test_probe_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.probe("core", "retired", lambda: 1.0)
        registry.probe("core", "retired", lambda: 2.0)
        assert registry.snapshot() == {"core.retired": 2.0}

    def test_to_payload_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "n").increment()
        hist = registry.histogram("h", "lat", (10.0,))
        hist.observe(5.0)
        registry.sample(10)
        payload = registry.to_payload()
        assert payload["final"]["c.n"] == 1.0
        assert payload["histograms"]["h.lat"]["buckets"] == {
            "le_10": 1, "overflow": 0,
        }
        assert payload["samples"][0]["cycle"] == 10

    def test_registry_pickles_disabled(self):
        registry = MetricsRegistry()
        registry.counter("c", "n").increment()
        registry.sample(1)
        clone = pickle.loads(pickle.dumps(registry))
        assert not clone.enabled
        assert clone.samples == []


def _run(config, instructions=4_000):
    simulator = Simulator(config)
    result = simulator.run(
        get_workload("health", seed=1), max_instructions=instructions
    )
    return simulator, result


class TestSimulatorSampling:
    def test_samples_land_on_interval_boundaries(self):
        config = MACHINES["psb"]().with_metrics(500)
        simulator, result = _run(config)
        cycles = simulator.obs.metrics.sample_cycles()
        assert cycles[0] == 0
        # Every sample except the last (final cycle) is on a boundary.
        assert all(cycle % 500 == 0 for cycle in cycles[:-1])
        assert cycles[-1] == result.cycles
        assert cycles == sorted(cycles)

    def test_event_driven_and_stepped_sample_identical_cycles(self):
        """The acceptance property: the skip-ahead fast path must stop
        at metric boundaries, putting samples on the same cycles as the
        cycle-stepped loop — with identical values."""
        base = MACHINES["psb"]().with_metrics(750)
        fast_sim, fast = _run(base.with_event_driven(True))
        slow_sim, slow = _run(base.with_event_driven(False))
        assert fast.cycles == slow.cycles
        fast_rows = fast_sim.obs.metrics.samples
        slow_rows = slow_sim.obs.metrics.samples
        assert [r["cycle"] for r in fast_rows] == [
            r["cycle"] for r in slow_rows
        ]
        assert fast_rows == slow_rows

    def test_results_bit_identical_with_metrics_on(self):
        config = MACHINES["psb"]()
        __, plain = _run(config)
        __, observed = _run(config.with_metrics(250))
        assert plain.cycles == observed.cycles
        assert plain.ipc == observed.ipc
        assert plain.l1_miss_rate == observed.l1_miss_rate
        assert plain.prefetch_accuracy == observed.prefetch_accuracy
        assert plain.extra == observed.extra

    def test_disabled_config_builds_null_context(self):
        simulator = Simulator(MACHINES["psb"]())
        assert not simulator.obs.active
        assert simulator.obs.metrics is NULL_REGISTRY
        assert simulator.hierarchy.obs_trace is None
        assert simulator.hierarchy.obs_latency_hist is None

    def test_component_metrics_present(self):
        config = MACHINES["psb"]().with_metrics(1000)
        simulator, __ = _run(config)
        final = simulator.obs.metrics.snapshot()
        for key in (
            "core.retired", "hierarchy.demand_misses", "l1.accesses",
            "bus_l1_l2.busy_cycles", "mshr_l1.allocations", "tlb.misses",
            "prefetcher.prefetches_issued", "predictor.accuracy",
            "scheduler.prediction_grants", "sb0.priority", "sb7.hits",
            "hierarchy.miss_latency",
        ):
            assert key in final, key

    def test_latency_histogram_counts_misses(self):
        config = MACHINES["base"]().with_metrics(1000)
        simulator, result = _run(config)
        hist = simulator.obs.metrics.to_payload()["histograms"][
            "hierarchy.miss_latency"
        ]
        assert hist["total"] > 0
        assert hist["mean"] > 0
