"""Unit tests for repro.stats."""

from repro.stats import Accumulator, Counter, Histogram, StatGroup, percent, ratio


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("x")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestAccumulator:
    def test_empty_mean_is_zero(self):
        assert Accumulator("lat").mean == 0.0

    def test_mean(self):
        acc = Accumulator("lat")
        for sample in (1, 2, 3, 10):
            acc.add(sample)
        assert acc.mean == 4.0
        assert acc.count == 4
        assert acc.maximum == 10

    def test_reset(self):
        acc = Accumulator("lat")
        acc.add(5)
        acc.reset()
        assert acc.count == 0
        assert acc.mean == 0.0


class TestHistogram:
    def test_fraction_at_or_below(self):
        hist = Histogram("bits")
        hist.add(8, 3)
        hist.add(16, 6)
        hist.add(24, 1)
        assert hist.total == 10
        assert hist.fraction_at_or_below(8) == 0.3
        assert hist.fraction_at_or_below(16) == 0.9
        assert hist.fraction_at_or_below(24) == 1.0

    def test_empty_fraction(self):
        assert Histogram("bits").fraction_at_or_below(16) == 0.0

    def test_cumulative_is_monotone(self):
        hist = Histogram("bits")
        for key in (2, 5, 5, 9, 14, 30):
            hist.add(key)
        curve = hist.cumulative(list(range(32)))
        assert curve == sorted(curve)
        assert curve[-1] == 1.0


class TestRates:
    def test_ratio_zero_denominator(self):
        assert ratio(5, 0) == 0.0

    def test_ratio(self):
        assert ratio(1, 4) == 0.25

    def test_percent(self):
        assert percent(1, 4) == 25.0


class TestStatGroup:
    def test_set_get(self):
        group = StatGroup("base")
        group.set("ipc", 1.5)
        assert group.get("ipc") == 1.5
