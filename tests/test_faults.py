"""Tests for the deterministic fault-injection harness itself."""

import itertools

import pytest

from repro.errors import TraceFormatError
from repro.runner.faults import (
    FaultSpec,
    InjectedCrash,
    corrupt_trace_file,
    inject_faults,
)
from repro.trace.io import load_trace_list, save_trace
from repro.workloads import get_workload


def _records(n=50):
    return list(itertools.islice(get_workload("health", seed=1), n))


class TestFaultSpec:
    def test_noop_by_default(self):
        assert FaultSpec().is_noop

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            FaultSpec(crash_at=-1)

    def test_picklable(self):
        import pickle

        spec = FaultSpec(crash_at=5, crash_attempts=1, corrupt_at=9)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestInjection:
    def test_passthrough_without_faults(self):
        records = _records()
        assert list(inject_faults(iter(records), FaultSpec())) == records

    def test_crash_at_exact_index(self):
        records = _records()
        spec = FaultSpec(crash_at=10)
        out = []
        with pytest.raises(InjectedCrash):
            for record in inject_faults(iter(records), spec):
                out.append(record)
        assert out == records[:10]  # records before the fault pass through

    def test_crash_is_deterministic_across_replays(self):
        spec = FaultSpec(crash_at=7)
        for _ in range(3):
            with pytest.raises(InjectedCrash):
                list(inject_faults(iter(_records()), spec))

    def test_crash_heals_after_crash_attempts(self):
        records = _records()
        spec = FaultSpec(crash_at=10, crash_attempts=2)
        for attempt in (0, 1):
            with pytest.raises(InjectedCrash):
                list(inject_faults(iter(records), spec, attempt=attempt))
        healed = list(inject_faults(iter(records), spec, attempt=2))
        assert healed == records

    def test_corrupt_raises_trace_format_error(self):
        spec = FaultSpec(corrupt_at=4)
        with pytest.raises(TraceFormatError) as excinfo:
            list(inject_faults(iter(_records()), spec))
        assert excinfo.value.line_number == 6  # header + 1-based offset
        assert not excinfo.value.retryable

    def test_corrupt_wins_over_crash_at_same_index(self):
        spec = FaultSpec(crash_at=4, corrupt_at=4)
        with pytest.raises(TraceFormatError):
            list(inject_faults(iter(_records()), spec))


class TestCorruptTraceFile:
    def test_clobbers_one_line(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(path, iter(_records(20)))
        original = corrupt_trace_file(path, line_number=5)
        assert original  # the displaced record text is returned
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace_list(path)
        assert excinfo.value.line_number == 5
        assert "corrupt" in excinfo.value.line

    def test_non_strict_load_skips_the_corruption(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(path, iter(_records(20)))
        corrupt_trace_file(path, line_number=5)
        errors = []
        records = load_trace_list(path, strict=False, errors=errors)
        assert len(records) == 19
        assert len(errors) == 1

    def test_rejects_out_of_range_line(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(path, iter(_records(3)))
        with pytest.raises(ValueError):
            corrupt_trace_file(path, line_number=99)
