"""Tests for the shared stream-buffer entry pool (beyond the paper).

Covers :mod:`repro.streambuf.sharing` end to end:

- policy unit behaviour: free-credit grants, the steal margin,
  credence's binary trust classes, youngest-entry eviction;
- the fixed policy is bit-identical to the default configuration on
  all six paper workloads, event-driven and stepped;
- pool-conservation invariants catch seeded corruption;
- snapshot/resume is bit-identical under every policy;
- the reallocation path returns a dead stream's entries to the pool
  *before* the new stream claims the buffer (regression);
- the adversarial ``many_streams`` workload: a pooled policy beats the
  fixed partition (the acceptance criterion for the sharing work).
"""

import dataclasses

import pytest

from repro.config import (
    AllocationPolicy,
    BufferSharing,
    InvariantLevel,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
)
from repro.errors import IntegrityError
from repro.integrity import resume_run
from repro.integrity.invariants import check_stream_buffers
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim import psb_config
from repro.sim.simulator import Simulator, simulate
from repro.streambuf.buffer import EntryState, StreamBufferEntry
from repro.streambuf.controller import SequentialPredictor, StreamBufferController
from repro.streambuf.sharing import (
    _STEAL_MARGIN,
    CredenceSharing,
    EntryPool,
    FixedSharing,
    HarmonicSharing,
    make_sharing_policy,
)
from repro.workloads import PAPER_WORKLOADS, get_workload

BLOCK = 32
POLICIES = [BufferSharing.FIXED, BufferSharing.HARMONIC, BufferSharing.CREDENCE]


def _controller(sharing=BufferSharing.HARMONIC, **overrides):
    config = StreamBufferConfig(
        allocation=AllocationPolicy.ALWAYS,
        scheduling=SchedulingPolicy.ROUND_ROBIN,
        sharing=sharing,
        **overrides,
    )
    controller = StreamBufferController(
        config, SequentialPredictor(BLOCK), BLOCK
    )
    controller.attach(MemoryHierarchy(SimConfig()))
    return controller


def _allocate(controller, pc, addr, cycle=0):
    """Allocate a stream and return its buffer."""
    before = controller.allocations
    controller.on_l1_miss(pc, addr, cycle, sb_hit=False)
    assert controller.allocations == before + 1
    for buffer in controller.buffers:
        if buffer.allocated and buffer.state.pc == pc:
            return buffer
    raise AssertionError("allocation did not land in any buffer")


def _grant(controller, buffer, count, cycle=0):
    """Pull ``count`` entries from the pool into ``buffer``."""
    for _ in range(count):
        entry = controller.sharing.take_entry(buffer, cycle)
        assert entry is not None
        entry.hold_prediction(0x1000 + 64 * len(buffer.entries), cycle)


class TestEntryPool:
    def test_free_tracks_allocated(self):
        pool = EntryPool(8)
        assert pool.free == 8
        pool.allocated = 3
        assert pool.free == 5

    def test_reset_stats_keeps_occupancy(self):
        pool = EntryPool(8)
        pool.allocated = 4
        pool.acquires = 9
        pool.steals = 2
        pool.reset_stats()
        assert pool.allocated == 4
        assert pool.acquires == 0 and pool.steals == 0


class TestPolicyFactory:
    def test_dispatch(self):
        fixed = StreamBufferConfig(sharing=BufferSharing.FIXED)
        assert isinstance(make_sharing_policy(fixed), FixedSharing)
        harm = StreamBufferConfig(sharing=BufferSharing.HARMONIC)
        assert isinstance(make_sharing_policy(harm), HarmonicSharing)
        cred = StreamBufferConfig(sharing=BufferSharing.CREDENCE)
        assert isinstance(make_sharing_policy(cred), CredenceSharing)

    def test_fixed_has_no_pool(self):
        controller = _controller(BufferSharing.FIXED)
        assert controller.pool is None
        for buffer in controller.buffers:
            assert len(buffer.entries) == controller.config.entries_per_buffer

    def test_pooled_buffers_start_empty(self):
        controller = _controller(BufferSharing.HARMONIC)
        assert controller.pool is not None
        assert controller.pool.size == controller.config.pool_size
        for buffer in controller.buffers:
            assert len(buffer.entries) == 0


class TestPooledGrants:
    def test_free_credit_grant(self):
        controller = _controller(pool_entries=4)
        buffer = _allocate(controller, 0x100, 0x8000)
        entry = controller.sharing.take_entry(buffer, cycle=1)
        assert entry is not None and entry in buffer.entries
        assert controller.pool.allocated == 1
        assert controller.pool.acquires == 1
        assert controller.pool.steals == 0

    def test_release_entry_returns_credit(self):
        controller = _controller(pool_entries=4)
        buffer = _allocate(controller, 0x100, 0x8000)
        entry = controller.sharing.take_entry(buffer, cycle=1)
        controller.sharing.release_entry(buffer, entry)
        assert controller.pool.allocated == 0
        assert controller.pool.releases == 1
        assert entry not in buffer.entries

    def test_release_stream_returns_whole_queue(self):
        controller = _controller(pool_entries=4)
        buffer = _allocate(controller, 0x100, 0x8000)
        _grant(controller, buffer, 3)
        controller.sharing.release_stream(buffer)
        assert len(buffer.entries) == 0
        assert controller.pool.allocated == 0
        assert controller.pool.releases == 3

    def test_wants_prediction_false_without_entries_or_victims(self):
        controller = _controller(pool_entries=2)
        buffer = _allocate(controller, 0x100, 0x8000)
        _grant(controller, buffer, 2)  # soaks the whole pool itself
        # The only possible victim is the requester: no port interest.
        assert not controller.sharing.wants_prediction(buffer, epoch=5)


class TestStealMargin:
    def test_steal_requires_margin(self):
        controller = _controller(pool_entries=4)
        rich = _allocate(controller, 0x100, 0x8000)
        poor = _allocate(controller, 0x200, 0x20000)
        _grant(controller, rich, 4)  # pool now full, all with `rich`
        # 4 >= 0 + margin: the steal is allowed and rebalances.
        entry = controller.sharing.take_entry(poor, cycle=10)
        assert entry is not None and entry in poor.entries
        assert controller.pool.steals == 1
        assert len(rich.entries) == 3 and len(poor.entries) == 1

    def test_steal_denied_inside_margin(self):
        controller = _controller(pool_entries=4)
        rich = _allocate(controller, 0x100, 0x8000)
        poor = _allocate(controller, 0x200, 0x20000)
        _grant(controller, rich, 3)
        _grant(controller, poor, 1)
        # 3 < 1 + margin: stealing would just slosh entries back and
        # forth (the livelock the margin exists to break).
        entry = controller.sharing.take_entry(poor, cycle=10)
        assert entry is None
        assert controller.pool.denials == 1
        assert controller.pool.steals == 0

    def test_steal_takes_youngest_and_clears_it(self):
        controller = _controller(pool_entries=4)
        rich = _allocate(controller, 0x100, 0x8000)
        poor = _allocate(controller, 0x200, 0x20000)
        for cycle in (1, 2, 3, 4):
            entry = controller.sharing.take_entry(rich, cycle)
            entry.hold_prediction(0x1000 * cycle, cycle)
        youngest_block = 0x1000 * 4
        assert all(e.occupied for e in rich.entries)
        stolen = controller.sharing.take_entry(poor, cycle=10)
        assert stolen is not None
        assert stolen.state == EntryState.FREE  # handed over cleared
        assert youngest_block not in [e.block for e in rich.entries]

    def test_stolen_live_prefetch_counts_discarded(self):
        controller = _controller(pool_entries=4)
        rich = _allocate(controller, 0x100, 0x8000)
        poor = _allocate(controller, 0x200, 0x20000)
        for cycle in (1, 2, 3, 4):
            entry = controller.sharing.take_entry(rich, cycle)
            entry.hold_prediction(0x1000 * cycle, cycle)
        rich.entries[-1].mark_in_flight(ready_cycle=50)  # the youngest
        before = controller.prefetches_discarded
        controller.sharing.take_entry(poor, cycle=10)
        assert controller.pool.evicted_inflight == 1
        assert controller.prefetches_discarded == before + 1


class TestCredenceTrust:
    def _pair(self):
        controller = _controller(BufferSharing.CREDENCE, pool_entries=4)
        a = _allocate(controller, 0x100, 0x8000)
        b = _allocate(controller, 0x200, 0x20000)
        return controller, a, b

    def test_advice_bit_is_upper_half(self):
        controller, a, _ = self._pair()
        half = controller.config.priority_max // 2
        a.priority.set(half)
        assert controller.sharing._trusted(a)
        a.priority.set(half - 1)
        assert not controller.sharing._trusted(a)

    def test_trusted_steals_from_untrusted_without_margin(self):
        controller, rich, poor = self._pair()
        rich.priority.set(0)  # untrusted
        poor.priority.set(controller.config.priority_max)  # trusted
        _grant(controller, rich, 3)
        _grant(controller, poor, 1)
        # Within one class harmonic would deny (3 < 1 + margin); across
        # trust classes the advice bit overrides queue lengths.
        entry = controller.sharing.take_entry(poor, cycle=10)
        assert entry is not None
        assert controller.pool.steals == 1

    def test_untrusted_never_evicts_trusted(self):
        controller, rich, poor = self._pair()
        rich.priority.set(controller.config.priority_max)  # trusted
        poor.priority.set(0)  # untrusted
        _grant(controller, rich, 4)
        entry = controller.sharing.take_entry(poor, cycle=10)
        assert entry is None
        assert controller.pool.denials == 1

    def test_same_class_falls_back_to_margin_rule(self):
        controller, rich, poor = self._pair()
        rich.priority.set(controller.config.priority_max)
        poor.priority.set(controller.config.priority_max)
        _grant(controller, rich, 4)
        assert controller.sharing.take_entry(poor, cycle=10) is not None
        assert controller.pool.steals == 1  # 4 >= 0 + margin
        _grant(controller, poor, 1)  # now 3 vs 2 via free credit? pool full
        # rich=3, poor=2: inside the margin, denied.
        assert controller.sharing.take_entry(poor, cycle=11) is None
        assert controller.pool.denials == 1


class TestReallocationReturnsEntriesFirst:
    """Regression: stream death must free pool credit *before* the new
    stream claims the buffer, so the same cycle's prediction pass can
    spend it (the freed entries were invisible for a full allocation
    round otherwise)."""

    def test_release_precedes_allocate(self):
        controller = _controller(pool_entries=4, num_buffers=1)
        buffer = _allocate(controller, 0x100, 0x8000)
        _grant(controller, buffer, 4)
        assert controller.pool.free == 0
        seen = []
        original = buffer.allocate

        def spying_allocate(state, cycle, priority=0):
            seen.append(controller.pool.allocated)
            return original(state, cycle, priority=priority)

        buffer.allocate = spying_allocate
        controller.on_l1_miss(0x900, 0x90000, cycle=20, sb_hit=False)
        assert seen == [0], "entries still held when the new stream claimed"
        assert controller.pool.free == 4
        assert controller.pool.releases == 4
        # The freed credit is immediately spendable.
        assert controller.sharing.take_entry(buffer, cycle=20) is not None
        assert controller.pool.acquires == 5


class TestPoolInvariants:
    def _live_controller(self):
        controller = _controller(pool_entries=8)
        rich = _allocate(controller, 0x100, 0x8000)
        _grant(controller, rich, 3)
        check_stream_buffers(controller)  # clean before corruption
        return controller, rich

    def test_clean_state_passes(self):
        self._live_controller()

    def test_conservation_catches_count_drift(self):
        controller, _ = self._live_controller()
        controller.pool.allocated += 1
        with pytest.raises(IntegrityError) as exc:
            check_stream_buffers(controller)
        assert "pool.conservation" in str(exc.value)

    def test_ownership_catches_shared_entry(self):
        controller, rich = self._live_controller()
        other = controller.buffers[1]
        other.entries.append(rich.entries[0])
        controller.pool.allocated += 1
        with pytest.raises(IntegrityError) as exc:
            check_stream_buffers(controller)
        assert "pool.ownership" in str(exc.value)

    def test_capacity_catches_oversubscription(self):
        controller, rich = self._live_controller()
        overrun = controller.pool.size - controller.pool.allocated + 1
        for _ in range(overrun):
            rich.entries.append(StreamBufferEntry())
        controller.pool.allocated += overrun
        with pytest.raises(IntegrityError) as exc:
            check_stream_buffers(controller)
        assert "pool.capacity" in str(exc.value)

    @pytest.mark.parametrize(
        "sharing", [BufferSharing.HARMONIC, BufferSharing.CREDENCE]
    )
    def test_full_invariants_clean_on_many_streams(self, sharing):
        config = psb_config().with_sharing(sharing).with_invariants(
            InvariantLevel.FULL
        )
        result = simulate(
            config,
            get_workload("many_streams", seed=1),
            max_instructions=4_000,
        )
        assert result.instructions == 4_000


class TestFixedBitIdentity:
    """`--buffer-sharing fixed` IS the pre-sharing simulator: explicit
    fixed sharing must not perturb a single counter on any paper
    workload, in either drive mode."""

    @pytest.mark.parametrize("workload", PAPER_WORKLOADS)
    @pytest.mark.parametrize("event", [True, False], ids=["event", "stepped"])
    def test_fixed_matches_default(self, workload, event):
        base = psb_config().with_event_driven(event)
        explicit = base.with_sharing(BufferSharing.FIXED)
        trace = lambda: get_workload(workload, seed=1)
        reference = simulate(base, trace(), max_instructions=4_000)
        fixed = simulate(explicit, trace(), max_instructions=4_000)
        for field in dataclasses.fields(type(reference)):
            if field.name == "extra":
                continue
            assert getattr(fixed, field.name) == getattr(
                reference, field.name
            ), field.name


class TestSnapshotResume:
    @pytest.mark.parametrize("sharing", POLICIES, ids=lambda s: s.value)
    def test_resume_is_bit_identical(self, sharing):
        config = psb_config().with_sharing(sharing)
        trace = lambda: get_workload("many_streams", seed=1)
        reference = simulate(
            config, trace(), max_instructions=6_000, label="ref"
        )
        snapshots = []
        Simulator(config).run(
            trace(),
            max_instructions=6_000,
            label="ref",
            snapshot_every=2_000,
            snapshot_sink=snapshots.append,
        )
        assert snapshots
        middle = snapshots[len(snapshots) // 2]
        resumed = resume_run(middle, trace())
        for field in dataclasses.fields(type(reference)):
            if field.name == "extra":
                continue
            assert getattr(resumed, field.name) == getattr(
                reference, field.name
            ), field.name

    @pytest.mark.parametrize(
        "sharing", [BufferSharing.HARMONIC, BufferSharing.CREDENCE]
    )
    def test_pool_state_survives_snapshot(self, sharing):
        config = psb_config().with_sharing(sharing)
        snapshots = []
        Simulator(config).run(
            get_workload("many_streams", seed=1),
            max_instructions=6_000,
            snapshot_every=3_000,
            snapshot_sink=snapshots.append,
        )
        simulator, _state = snapshots[-1].restore()
        controller = simulator.controller
        assert controller.pool is not None
        owned = sum(len(b.entries) for b in controller.buffers)
        assert owned == controller.pool.allocated
        check_stream_buffers(controller)


class TestManyStreamsAcceptance:
    """The adversarial workload: sharing must beat the fixed partition
    (ISSUE acceptance; the full table lives in docs/buffer_sharing.md)."""

    def _ipc(self, sharing):
        config = psb_config().with_sharing(sharing)
        result = simulate(
            config,
            get_workload("many_streams", seed=1),
            max_instructions=30_000,
            warmup_instructions=8_000,
        )
        return result.ipc

    def test_pooled_policies_beat_fixed(self):
        fixed = self._ipc(BufferSharing.FIXED)
        harmonic = self._ipc(BufferSharing.HARMONIC)
        credence = self._ipc(BufferSharing.CREDENCE)
        assert harmonic > fixed * 1.02
        assert credence > fixed * 1.02
