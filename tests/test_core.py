"""Unit tests for the out-of-order core timing model."""

import pytest

from repro.config import CoreConfig, DisambiguationPolicy, SimConfig
from repro.cpu.core import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import InstrKind, TraceRecord


def _run(records, core_config=None, sim_config=None, **kwargs):
    sim_config = sim_config or SimConfig()
    hierarchy = MemoryHierarchy(sim_config)
    core = OutOfOrderCore(core_config or sim_config.core, hierarchy)
    stats = core.run(records, **kwargs)
    return stats, core, hierarchy


def _alu(count, dep=0):
    return [TraceRecord(InstrKind.IALU, 0x1000 + 4 * i, dep1=dep) for i in range(count)]


class TestThroughput:
    def test_independent_alus_reach_high_ipc(self):
        stats, __, __ = _run(_alu(4000))
        assert stats.retired == 4000
        assert stats.ipc > 4.0

    def test_dependent_chain_is_serial(self):
        stats, __, __ = _run(_alu(2000, dep=1))
        assert stats.ipc < 1.2

    def test_retire_width_caps_ipc(self):
        stats, __, __ = _run(_alu(4000))
        assert stats.ipc <= 8.0

    def test_divider_chain_slow(self):
        records = [
            TraceRecord(InstrKind.IDIV, 0x1000 + 4 * i, dep1=1) for i in range(200)
        ]
        stats, __, __ = _run(records)
        assert stats.ipc < 0.12


class TestMemory:
    def test_load_latency_recorded(self):
        records = [TraceRecord(InstrKind.LOAD, 0x1000, addr=0x8000)]
        stats, __, __ = _run(records)
        assert stats.loads == 1
        assert stats.load_latency.count == 1
        assert stats.load_latency.mean > 100  # cold miss to DRAM

    def test_l1_hit_is_fast(self):
        records = [
            TraceRecord(InstrKind.LOAD, 0x1000, addr=0x8000),
            TraceRecord(InstrKind.LOAD, 0x1004, addr=0x8000, dep1=1),
        ]
        stats, __, __ = _run(records)
        assert stats.load_latency.maximum > 100
        # Second load waited on the first, then hit the L1.
        assert stats.load_latency.total - stats.load_latency.maximum <= 2

    def test_pointer_chase_serializes_misses(self):
        records = []
        for i in range(50):
            records.append(
                TraceRecord(
                    InstrKind.LOAD, 0x1000, addr=0x10000 + i * 4096, dep1=1 if i else 0
                )
            )
        stats, __, __ = _run(records)
        assert stats.ipc < 0.05  # every load waits for the previous miss

    def test_store_does_not_stall_retire(self):
        records = [TraceRecord(InstrKind.STORE, 0x1000, addr=0x8000)] + _alu(100)
        stats, __, __ = _run(records)
        assert stats.cycles < 120  # did not wait for the store miss


class TestStoreForwarding:
    def test_same_word_load_forwards(self):
        records = [
            TraceRecord(InstrKind.STORE, 0x1000, addr=0x8000),
            TraceRecord(InstrKind.LOAD, 0x1004, addr=0x8000),
        ]
        stats, __, hierarchy = _run(records)
        assert stats.forwarded_loads == 1
        # Forwarded loads never touch the memory hierarchy.
        assert hierarchy.demand_accesses == 1  # just the store

    def test_forward_latency_two_cycles(self):
        records = [
            TraceRecord(InstrKind.STORE, 0x1000, addr=0x8000),
            TraceRecord(InstrKind.LOAD, 0x1004, addr=0x8000),
        ]
        stats, __, __ = _run(records)
        assert stats.load_latency.mean == 2.0

    def test_nodis_serializes_behind_unrelated_store(self):
        records = [
            TraceRecord(InstrKind.LOAD, 0x1000, addr=0x80000),  # long miss
            TraceRecord(InstrKind.STORE, 0x1004, addr=0x80000, dep1=1),
            TraceRecord(InstrKind.LOAD, 0x1008, addr=0x20000),  # unrelated
        ]
        config = SimConfig()
        fast = _run(records, sim_config=config)[0]
        nodis_core = CoreConfig(disambiguation=DisambiguationPolicy.NO_DISAMBIGUATION)
        slow = _run(records, core_config=nodis_core, sim_config=config)[0]
        assert slow.cycles > fast.cycles


class TestBranches:
    def test_predictable_branches_cheap(self):
        records = []
        for i in range(2000):
            records.append(TraceRecord(InstrKind.IALU, 0x1000))
            records.append(TraceRecord(InstrKind.BRANCH, 0x2000, taken=True))
        stats, core, __ = _run(records)
        assert core.branch_predictor.misprediction_rate < 0.05
        assert stats.ipc > 3.0

    def test_random_branches_cost_cycles(self):
        import random

        rng = random.Random(11)
        predictable = []
        unpredictable = []
        for i in range(1500):
            predictable.append(TraceRecord(InstrKind.BRANCH, 0x2000, taken=True))
            unpredictable.append(
                TraceRecord(InstrKind.BRANCH, 0x2000, taken=rng.random() < 0.5)
            )
        fast = _run(predictable)[0]
        slow = _run(unpredictable)[0]
        assert slow.cycles > fast.cycles * 3

    def test_branch_count(self):
        records = [TraceRecord(InstrKind.BRANCH, 0x2000, taken=True)] * 10
        stats, __, __ = _run(records)
        assert stats.branches == 10


class TestWindow:
    def test_rob_limits_runahead(self):
        """A load miss at the ROB head must stall retirement; independent
        work beyond the 128-entry window cannot proceed."""
        records = [TraceRecord(InstrKind.LOAD, 0x1000, addr=0x80000)] + _alu(1000)
        stats, __, __ = _run(records)
        # The miss takes ~140 cycles; with an infinite window 1000 ALUs
        # would finish underneath it (IPC ~7); the ROB prevents that.
        assert stats.cycles > 200

    def test_max_instructions_caps_run(self):
        stats, __, __ = _run(_alu(5000), max_instructions=1000)
        assert stats.retired == 1000


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        records = _alu(3000)
        full = _run(records)[0]
        windowed = _run(_alu(3000), warmup_instructions=1000)[0]
        assert windowed.retired == 2000
        assert windowed.cycles < full.cycles

    def test_warmup_callback_invoked(self):
        called = []
        _run(_alu(2000), warmup_instructions=500,
             on_warmup_end=lambda: called.append(True))
        assert called == [True]


class TestDeadlockGuard:
    def test_wedged_core_raises(self):
        class BrokenHierarchy(MemoryHierarchy):
            def access(self, pc, address, cycle, is_store=False):
                from repro.memory.hierarchy import AccessResult

                return AccessResult(10**9, "mem", True, 10**9)

        config = SimConfig()
        hierarchy = BrokenHierarchy(config)
        core = OutOfOrderCore(config.core, hierarchy)
        records = [TraceRecord(InstrKind.LOAD, 0x1000, addr=0x8000)]
        with pytest.raises(RuntimeError):
            core.run(records)
