"""SMARTS-style sampled simulation: config, driver, resume, integration.

The sampled estimator's contract has three legs, each pinned here:

- **Determinism** — window placement is a pure function of record
  counts, so the sampled result is bit-identical between the
  event-driven and cycle-stepped core loops, across snapshot
  resume seams, and under chaos-killed campaign workers.
- **Accuracy** — the stitched IPC stays within the stated error bound
  of the detailed reference (the full six-workload gate lives in
  ``bench --sampling``; here a fast subset plus the 1M acceptance
  workload keep the bound honest in the test suite).
- **Isolation** — sampling must never perturb the detailed path, and
  incompatible combinations (run-level warm-up, golden checking,
  cross-mode snapshot resume) fail loudly.
"""

import pytest

from repro.config import SamplingConfig, SimConfig
from repro.errors import ConfigError, IntegrityError, SimulationError
from repro.integrity.golden import run_golden
from repro.integrity.snapshot import SimSnapshot, resume_run
from repro.memory.hierarchy import PrefetcherPort
from repro.runner import (
    CampaignRunner,
    ChaosSpec,
    RunSpec,
    WorkloadSpec,
    execute_spec,
)
from repro.sampling import FastForwardEngine, resume_sampled, run_sampled
from repro.sim import baseline_config, psb_config
from repro.sim.presets import next_line_config
from repro.sim.simulator import Simulator
from repro.trace.binfmt import compile_trace
from repro.workloads import cached_workload_trace


def _result_key(result):
    """Every architectural field plus the per-window rows."""
    return (
        result.instructions,
        result.cycles,
        result.ipc,
        result.l1_miss_rate,
        result.avg_load_latency,
        result.prefetches_issued,
        result.prefetches_used,
        result.forwarded_loads,
        tuple(sorted(
            (k, v) for k, v in result.extra.items()
            if k != "resumed_from_cycle"
        )),
    )


# ----------------------------------------------------------------------
# SamplingConfig
# ----------------------------------------------------------------------


class TestSamplingConfig:
    def test_defaults(self):
        config = SamplingConfig()
        assert (config.period, config.window, config.warmup) == (
            50_000, 1_000, 500
        )
        assert config.detailed_per_period == 1_500

    def test_with_sampling_round_trip(self):
        config = SimConfig().with_sampling(period=10_000, window=400,
                                           warmup=100)
        assert config.sampling == SamplingConfig(10_000, 400, 100)
        assert SimConfig().sampling is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0},
            {"period": -5},
            {"window": 0},
            {"warmup": -1},
            # The detailed stretch must leave room for a gap.
            {"period": 1_000, "window": 800, "warmup": 200},
            {"period": 1_000, "window": 1_200, "warmup": 0},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingConfig(**kwargs)


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------


class TestGuards:
    def test_run_level_warmup_rejected(self):
        simulator = Simulator(psb_config().with_sampling())
        records = cached_workload_trace("health", seed=1, instructions=100)
        with pytest.raises(SimulationError, match="warm"):
            simulator.run(records, max_instructions=100,
                          warmup_instructions=50)

    def test_golden_check_rejected(self):
        spec = RunSpec(
            run_id="golden-sampled",
            config=psb_config().with_sampling(period=2_000, window=200,
                                              warmup=100),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=4_000,
            warmup_instructions=0,
            golden_check=True,
        )
        with pytest.raises(ConfigError, match="sampl"):
            execute_spec(spec)

    def test_driver_requires_sampling_config(self):
        simulator = Simulator(psb_config())
        with pytest.raises(SimulationError, match="sampling"):
            run_sampled(simulator, iter(()), max_instructions=10)


# ----------------------------------------------------------------------
# Mode-independence and determinism
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_event_and_stepped_loops_agree_bitwise(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=120_000)
        config = psb_config().with_sampling(period=40_000, window=1_000,
                                            warmup=500)
        event = Simulator(config).run(records, max_instructions=120_000)
        stepped = Simulator(config.with_event_driven(False)).run(
            records, max_instructions=120_000
        )
        assert event.extra["windows"] >= 2
        assert _result_key(event) == _result_key(stepped)

    def test_rerun_is_bit_identical(self):
        records = cached_workload_trace("gs", seed=1, instructions=60_000)
        config = psb_config().with_sampling(period=20_000, window=500,
                                            warmup=250)
        first = Simulator(config).run(records, max_instructions=60_000)
        second = Simulator(config).run(records, max_instructions=60_000)
        assert _result_key(first) == _result_key(second)

    def test_windows_sit_on_the_midpoint_grid(self):
        # 3 periods of 30k with a 1.5k detailed stretch: the fast-forward
        # engine replays everything else, so ff + measured + warmup
        # accounts for every record.
        records = cached_workload_trace("health", seed=1,
                                        instructions=90_000)
        config = psb_config().with_sampling(period=30_000, window=1_000,
                                            warmup=500)
        result = Simulator(config).run(records, max_instructions=90_000)
        assert result.extra["windows"] == 3.0
        assert result.extra["measured_instructions"] == 3_000.0
        consumed = (
            result.extra["ff_instructions"]
            + result.extra["measured_instructions"]
            + 3 * 500
        )
        assert consumed == 90_000.0


# ----------------------------------------------------------------------
# Accuracy
# ----------------------------------------------------------------------


class TestErrorBound:
    @pytest.mark.parametrize("workload,bound", [
        ("turb3d", 0.25),
        ("sis", 0.20),
    ])
    def test_short_trace_error(self, workload, bound):
        records = cached_workload_trace(workload, seed=1,
                                        instructions=200_000)
        config = psb_config()
        detailed = Simulator(config).run(
            records, max_instructions=200_000, warmup_instructions=0
        )
        sampled = Simulator(
            config.with_sampling(period=50_000, window=1_000, warmup=500)
        ).run(records, max_instructions=200_000)
        error = abs(sampled.ipc - detailed.ipc) / detailed.ipc
        assert error <= bound, (
            f"{workload}: sampled {sampled.ipc:.4f} vs detailed "
            f"{detailed.ipc:.4f} ({error * 100:.1f}% > {bound * 100:.0f}%)"
        )

    @pytest.mark.slow
    def test_acceptance_scale_error(self):
        # The worst of the six workloads at the acceptance scale
        # (dominated by its long cold-start transient; see
        # docs/performance.md) must stay inside the stated bound.
        records = cached_workload_trace("health", seed=1,
                                        instructions=1_000_000)
        config = psb_config()
        detailed = Simulator(config).run(
            records, max_instructions=1_000_000, warmup_instructions=0
        )
        sampled = Simulator(config.with_sampling()).run(
            records, max_instructions=1_000_000
        )
        error = abs(sampled.ipc - detailed.ipc) / detailed.ipc
        assert error <= 0.20
        assert sampled.extra["windows"] == 20.0

    def test_detailed_mode_untouched_by_sampling_import(self):
        # The detailed path must produce the same result whether or not
        # the sampling subsystem was ever exercised in the process.
        records = cached_workload_trace("health", seed=1,
                                        instructions=20_000)
        config = psb_config()
        before = Simulator(config).run(records, max_instructions=20_000,
                                       warmup_instructions=0)
        Simulator(
            config.with_sampling(period=5_000, window=300, warmup=100)
        ).run(records, max_instructions=20_000)
        after = Simulator(config).run(records, max_instructions=20_000,
                                      warmup_instructions=0)
        assert (before.ipc, before.cycles) == (after.ipc, after.cycles)


# ----------------------------------------------------------------------
# Snapshots: mode tag, cross-mode refusal, bit-identical resume
# ----------------------------------------------------------------------


class TestSampledSnapshots:
    def _sampled_run(self, records, config, sink=None):
        return Simulator(config).run(
            records,
            max_instructions=100_000,
            label="snap",
            snapshot_every=1_500,
            snapshot_sink=sink,
        )

    def test_snapshots_carry_the_sampled_mode(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=100_000)
        config = psb_config().with_sampling(period=20_000, window=1_000,
                                            warmup=500)
        snapshots = []
        self._sampled_run(records, config, snapshots.append)
        assert snapshots
        assert all(s.mode == "sampled" for s in snapshots)

    def test_detailed_snapshots_stay_detailed(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=3_000)
        snapshots = []
        Simulator(psb_config()).run(
            records, max_instructions=3_000,
            snapshot_every=500, snapshot_sink=snapshots.append,
        )
        assert snapshots
        assert all(s.mode == "detailed" for s in snapshots)

    def test_legacy_pickles_backfill_detailed_mode(self):
        snapshot = SimSnapshot(b"payload", cycle=1, records_consumed=1,
                               label="old")
        state = snapshot.__getstate__()
        del state["mode"]
        revived = SimSnapshot.__new__(SimSnapshot)
        revived.__setstate__(state)
        assert revived.mode == "detailed"

    def test_cross_mode_resume_refused_both_ways(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=100_000)
        sampled_config = psb_config().with_sampling(
            period=20_000, window=1_000, warmup=500
        )
        sampled_snaps, detailed_snaps = [], []
        self._sampled_run(records, sampled_config, sampled_snaps.append)
        Simulator(psb_config()).run(
            records, max_instructions=3_000,
            snapshot_every=500, snapshot_sink=detailed_snaps.append,
        )
        with pytest.raises(IntegrityError, match="sampled"):
            resume_run(sampled_snaps[0], records)
        with pytest.raises(IntegrityError, match="detailed"):
            resume_sampled(detailed_snaps[0], records)

    def test_resume_is_bit_identical(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=100_000)
        config = psb_config().with_sampling(period=20_000, window=1_000,
                                            warmup=500)
        snapshots = []
        whole = self._sampled_run(records, config, snapshots.append)
        assert snapshots
        for snapshot in (snapshots[0], snapshots[-1]):
            resumed = resume_sampled(snapshot, records)
            assert resumed.extra["resumed_from_cycle"] == float(
                snapshot.cycle
            )
            assert _result_key(resumed) == _result_key(whole)


# ----------------------------------------------------------------------
# Campaign integration: process isolation, chaos, manifests
# ----------------------------------------------------------------------


def _sampled_spec(run_id, seed=1):
    return RunSpec(
        run_id=run_id,
        config=psb_config().with_sampling(period=20_000, window=1_000,
                                          warmup=500),
        trace=WorkloadSpec("health", seed=seed),
        max_instructions=60_000,
        warmup_instructions=0,
    )


class TestSampledCampaigns:
    def test_execute_spec_runs_sampled(self):
        result = execute_spec(_sampled_spec("one"))
        assert result.extra["sampled"] == 1.0
        assert result.extra["windows"] >= 1.0

    def test_manifest_marks_sampled_points(self, tmp_path):
        campaign = CampaignRunner(
            str(tmp_path), isolation="inline"
        ).run([_sampled_spec("health/psb")])
        point = campaign.manifest["metrics"]["health/psb"]
        assert point["sampled"] is True
        assert point["windows"] >= 1
        assert "ipc_ci95" in point

    @pytest.mark.slow
    def test_chaos_killed_campaign_is_bit_identical(self, tmp_path):
        specs = [_sampled_spec("p0", seed=1), _sampled_spec("p1", seed=2)]
        clean = CampaignRunner(
            str(tmp_path / "clean"), workers=2, isolation="process",
            snapshot_every=1_500,
        ).run(specs)
        chaotic = CampaignRunner(
            str(tmp_path / "chaos"), workers=2, isolation="process",
            snapshot_every=1_500, backoff_base=0.0,
            chaos=ChaosSpec(kill_points=(0,)),
        ).run(specs)
        assert chaotic.manifest["ok"] == 2
        assert chaotic.manifest["chaos"]["counters"]["worker_kills"] >= 1
        for run_id in ("p0", "p1"):
            reference = clean.results[run_id]
            survivor = chaotic.results[run_id]
            assert (survivor.ipc, survivor.cycles,
                    survivor.instructions) == (
                reference.ipc, reference.cycles, reference.instructions
            )
            assert survivor.extra["windows"] == reference.extra["windows"]


# ----------------------------------------------------------------------
# The fast-forward engine and warming API
# ----------------------------------------------------------------------


class _RecordingPrefetcher(PrefetcherPort):
    def __init__(self):
        self.calls = []

    def on_l1_miss(self, pc, addr, cycle, sb_hit):
        self.calls.append((pc, addr, cycle, sb_hit))


class TestFastForward:
    def test_warm_l1_miss_defaults_to_on_l1_miss(self):
        port = _RecordingPrefetcher()
        port.warm_l1_miss(0x400, 0x8000)
        assert port.calls == [(0x400, 0x8000, 0, False)]

    def test_replay_counts_and_trace_exhaustion(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=5_000)
        engine = FastForwardEngine(Simulator(psb_config()))
        source = iter(records)
        assert engine.replay(source, 3_000, 0) == 3_000
        assert engine.instructions == 3_000
        # Asking past the end reports the short pull.
        assert engine.replay(source, 5_000, 0) == 2_000
        assert engine.instructions == 5_000
        assert engine.loads + engine.stores + engine.branches <= 5_000
        assert engine.l1_misses <= engine.loads + engine.stores

    def test_pending_record_replays_without_counting(self):
        records = cached_workload_trace("health", seed=1,
                                        instructions=100)
        engine = FastForwardEngine(Simulator(psb_config()))
        source = iter(records[1:])
        pulled = engine.replay(source, 10, 0, pending=records[0])
        assert pulled == 10
        assert engine.instructions == 11

    def test_quiesce_bounds_demand_prefetcher_queues(self):
        simulator = Simulator(next_line_config())
        prefetcher = simulator.hierarchy.prefetcher
        engine = FastForwardEngine(simulator)
        records = cached_workload_trace("gs", seed=1, instructions=50_000)
        engine.replay(iter(records), 50_000, 0)
        assert engine.l1_misses > prefetcher.buffer.entries
        prefetcher.quiesce()
        assert len(prefetcher._pending) <= prefetcher.buffer.entries

    def test_sampled_run_on_no_prefetch_machine(self):
        # The baseline machine has no prefetcher: warming must degrade
        # to pure cache/branch warmth without errors.
        records = cached_workload_trace("health", seed=1,
                                        instructions=60_000)
        config = baseline_config().with_sampling(period=20_000,
                                                 window=1_000, warmup=500)
        result = Simulator(config).run(records, max_instructions=60_000)
        assert result.extra["windows"] == 3.0
        assert result.ipc > 0


# ----------------------------------------------------------------------
# The golden-model fast path (compiled replay)
# ----------------------------------------------------------------------


def _golden_fields(stats):
    return {
        name: getattr(stats, name)
        for name in dir(stats)
        if not name.startswith("_")
        and isinstance(getattr(stats, name), (int, float))
    }


class TestGoldenFastPath:
    def test_compiled_replay_matches_record_replay(self, tmp_path):
        records = cached_workload_trace("health", seed=1,
                                        instructions=5_000)
        path = str(tmp_path / "health.rtb")
        compile_trace(path, iter(records), limit=5_000)
        config = psb_config()
        from_records = run_golden(config, records, max_instructions=5_000)
        from_compiled = run_golden(config, path, max_instructions=5_000)
        assert _golden_fields(from_records) == _golden_fields(from_compiled)
