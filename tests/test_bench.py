"""The perf-regression harness: run_bench, baselines, and the CLI."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BenchmarkError,
    check_against_baseline,
    format_report,
    load_baseline,
    run_bench,
    write_report,
)
from repro.sim import baseline_config


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_TRACE_CACHE", str(tmp_path_factory.mktemp("traces"))
    )


def _small_report(**kwargs):
    return run_bench(
        ["health"], baseline_config(), machine="base",
        instructions=2_000, repeats=1, **kwargs
    )


class TestRunBench:
    def test_report_shape_and_agreement(self):
        report = _small_report()
        assert report["version"] == 1
        assert report["machine"] == "base"
        entry = report["results"]["health"]
        assert entry["cycles"] > 0
        assert entry["stepped"]["wall_s"] > 0
        assert entry["event"]["cycles_per_sec"] > 0
        assert entry["event"]["cycles_skipped"] > 0
        assert entry["speedup"] > 0
        assert "health" in format_report(report)

    def test_unknown_workload(self):
        with pytest.raises(BenchmarkError, match="unknown workload"):
            run_bench(["quake"], baseline_config())

    def test_bad_repeats(self):
        with pytest.raises(BenchmarkError, match="repeats"):
            run_bench(
                ["health"], baseline_config(), instructions=500, repeats=0
            )

    def test_profile_dump(self, tmp_path):
        _small_report(profile_dir=str(tmp_path / "prof"))
        assert (tmp_path / "prof" / "health-event.prof").exists()
        assert (tmp_path / "prof" / "health-stepped.prof").exists()


class TestBaseline:
    def test_round_trip_and_self_check(self, tmp_path):
        report = _small_report()
        path = str(tmp_path / "bench.json")
        write_report(report, path)
        baseline = load_baseline(path)
        assert check_against_baseline(report, baseline) == []

    def test_detects_regression(self, tmp_path):
        report = _small_report()
        baseline = json.loads(json.dumps(report))
        baseline["results"]["health"]["speedup"] *= 10
        failures = check_against_baseline(report, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "below baseline" in failures[0]

    def test_rejects_mismatched_run_shape(self):
        report = _small_report()
        baseline = json.loads(json.dumps(report))
        baseline["instructions"] = 50_000
        failures = check_against_baseline(report, baseline)
        assert len(failures) == 1
        assert "not comparable" in failures[0]

    def test_ignores_unshared_workloads(self):
        report = _small_report()
        assert check_against_baseline(report, {"results": {}}) == []

    def test_rejects_bad_tolerance(self):
        report = _small_report()
        with pytest.raises(BenchmarkError, match="tolerance"):
            check_against_baseline(report, report, tolerance=1.5)

    def test_load_baseline_errors(self, tmp_path):
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_baseline(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_baseline(str(bad))
        versionless = tmp_path / "old.json"
        versionless.write_text('{"results": {}, "version": 99}')
        with pytest.raises(BenchmarkError, match="version"):
            load_baseline(str(versionless))


class TestBenchCommand:
    def test_quick_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_core.json")
        code = main(
            ["bench", "--quick", "--workloads", "health,burg",
             "--instructions", "2000", "--repeats", "1", "--out", out]
        )
        assert code == 0
        report = json.load(open(out))
        assert set(report["results"]) == {"health", "burg"}
        assert "speedup" in capsys.readouterr().out

    def test_check_gate(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        args = ["bench", "--workloads", "health", "--instructions", "2000",
                "--repeats", "1", "--out", out]
        assert main(args) == 0
        # Self-comparison passes the gate ...
        assert main(args + ["--check", out]) == 0
        assert "no regressions" in capsys.readouterr().out
        # ... an inflated baseline fails it.
        baseline = json.load(open(out))
        baseline["results"]["health"]["speedup"] *= 10
        inflated = str(tmp_path / "inflated.json")
        json.dump(baseline, open(inflated, "w"))
        assert main(args + ["--check", inflated]) == 1
        assert "regression" in capsys.readouterr().err


class TestTraceCompileCommand:
    def test_compile_workload(self, tmp_path, capsys):
        from repro.trace import load_binary_trace_list

        out = str(tmp_path / "health.rtb")
        code = main(
            ["trace", "compile", "health", "--out", out,
             "--instructions", "300", "--seed", "2"]
        )
        assert code == 0
        assert "compiled 300 records" in capsys.readouterr().out
        assert len(load_binary_trace_list(out)) == 300

    def test_compile_text_trace(self, tmp_path):
        from repro.trace import load_binary_trace_list
        from repro.trace.io import load_trace_list

        text = str(tmp_path / "t.trace")
        assert main(
            ["trace", "gs", "--out", text, "--instructions", "200"]
        ) == 0
        out = str(tmp_path / "t.rtb")
        assert main(["trace", "compile", text, "--out", out]) == 0
        assert load_binary_trace_list(out) == load_trace_list(text)

    def test_compile_needs_source(self, tmp_path, capsys):
        out = str(tmp_path / "x.rtb")
        assert main(["trace", "compile", "--out", out]) != 0
        assert "workload name" in capsys.readouterr().err
