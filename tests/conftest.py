"""Shared test fixtures."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_trace_cache(tmp_path_factory):
    """Keep the on-disk workload-trace cache out of the real home dir.

    Campaign runs resolve ``WorkloadSpec`` traces through the compiled
    trace cache; the suite must not populate (or depend on) the
    developer's ``~/.cache``.  The override is an environment variable,
    so isolated worker processes inherit it too.
    """
    path = str(tmp_path_factory.mktemp("trace-cache"))
    previous = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = path
    yield
    if previous is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = previous
