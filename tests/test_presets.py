"""Tests for every machine preset."""

import pytest

from repro.config import (
    AllocationPolicy,
    PrefetcherKind,
    SchedulingPolicy,
)
from repro.sim.presets import (
    PAPER_PREFETCH_LABELS,
    baseline_config,
    demand_markov_config,
    min_delta_config,
    next_line_config,
    paper_configs,
    prefetch_config,
    psb_config,
    sequential_config,
    stride_config,
)
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

ALL_PRESETS = {
    "baseline": baseline_config,
    "stride": stride_config,
    "psb": psb_config,
    "sequential": sequential_config,
    "min-delta": min_delta_config,
    "next-line": next_line_config,
    "demand-markov": demand_markov_config,
}


class TestPresetShapes:
    def test_paper_labels_stable(self):
        assert PAPER_PREFETCH_LABELS == (
            "Stride", "2Miss-RR", "2Miss-Priority",
            "ConfAlloc-RR", "ConfAlloc-Priority",
        )

    def test_paper_configs_cross_product(self):
        configs = paper_configs()
        assert configs["2Miss-RR"].prefetch.stream_buffers.allocation == (
            AllocationPolicy.TWO_MISS
        )
        assert configs["2Miss-Priority"].prefetch.stream_buffers.scheduling == (
            SchedulingPolicy.PRIORITY
        )
        assert configs["ConfAlloc-RR"].prefetch.stream_buffers.allocation == (
            AllocationPolicy.CONFIDENCE
        )
        for label in PAPER_PREFETCH_LABELS:
            if label != "Stride":
                assert configs[label].prefetch.kind == (
                    PrefetcherKind.PREDICTOR_DIRECTED
                )

    def test_min_delta_uses_two_miss(self):
        config = min_delta_config()
        assert config.prefetch.kind == PrefetcherKind.MIN_DELTA
        assert config.prefetch.stream_buffers.allocation == (
            AllocationPolicy.TWO_MISS
        )

    def test_prefetch_config_builder(self):
        config = prefetch_config(
            PrefetcherKind.SEQUENTIAL,
            AllocationPolicy.ALWAYS,
            SchedulingPolicy.PRIORITY,
        )
        assert config.prefetch.kind == PrefetcherKind.SEQUENTIAL
        assert config.prefetch.stream_buffers.scheduling == (
            SchedulingPolicy.PRIORITY
        )

    def test_every_preset_shares_the_baseline_machine(self):
        base = baseline_config()
        for maker in ALL_PRESETS.values():
            config = maker()
            assert config.core == base.core
            assert config.l1_data == base.l1_data
            assert config.l2_unified == base.l2_unified


@pytest.mark.parametrize("name", sorted(ALL_PRESETS))
class TestPresetRuns:
    def test_runs_and_reports(self, name):
        simulator = Simulator(ALL_PRESETS[name]())
        result = simulator.run(
            get_workload("gs"), max_instructions=6000,
            warmup_instructions=1500, label=name,
        )
        assert result.instructions == 4500
        assert 0.0 < result.ipc < 8.0
        if name == "baseline":
            assert result.prefetches_issued == 0
