#!/usr/bin/env python
"""Docstring lint for the public API.

Every public class, function, method, and property defined in the
pinned modules below must carry a docstring whose first line is a real
sentence (ends with ``.``, ``:``, ``?``, or ``!``).  "Public" means the
name has no leading underscore and the object is *defined in* the
module (re-exports are checked where they are defined).  Dunder methods
are exempt except ``__init__`` on classes whose constructor takes
arguments beyond ``self`` — those are documented on the class itself,
so ``__init__`` is never required.

The module list is a deliberate allowlist: it pins the user-facing
surface (config, simulator, results, campaigns, observability) without
demanding prose on every internal helper.  Extend it as modules
graduate to public status.

Used by ``tests/test_docs.py`` and the CI docs job.
"""

import importlib
import inspect
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

PUBLIC_MODULES = [
    "repro",
    "repro.config",
    "repro.errors",
    "repro.sim.simulator",
    "repro.sim.presets",
    "repro.sim.results",
    "repro.runner.campaign",
    "repro.runner.chaos",
    "repro.runner.audit",
    "repro.streambuf.buffer",
    "repro.streambuf.allocation",
    "repro.streambuf.scheduling",
    "repro.streambuf.sharing",
    "repro.streambuf.controller",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.obs.report",
]

SENTENCE_ENDINGS = (".", ":", "?", "!")


def _docstring_problem(qualname, obj):
    """Return a problem string for ``obj``, or None when it is clean."""
    doc = inspect.getdoc(obj)
    if not doc or not doc.strip():
        return f"{qualname}: missing docstring"
    first = doc.strip().splitlines()[0].strip()
    if not first.endswith(SENTENCE_ENDINGS):
        return (
            f"{qualname}: first docstring line is not a sentence: "
            f"{first!r}"
        )
    return None


def _class_members(cls):
    """Yield ``(name, member)`` for the public API defined on ``cls``."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member
        elif inspect.isfunction(member):
            yield name, member
        elif isinstance(member, (classmethod, staticmethod)):
            yield name, member.__func__


def check_module(module_name, problems):
    """Lint one module's public classes, functions, and methods."""
    module = importlib.import_module(module_name)
    problem = _docstring_problem(module_name, module)
    if problem:
        problems.append(problem)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; linted at its definition site
        qualname = f"{module_name}.{name}"
        problem = _docstring_problem(qualname, obj)
        if problem:
            problems.append(problem)
        if inspect.isclass(obj):
            for member_name, member in _class_members(obj):
                problem = _docstring_problem(
                    f"{qualname}.{member_name}", member
                )
                if problem:
                    problems.append(problem)


def main():
    """Lint every pinned module; return 0 when all are clean."""
    problems = []
    for module_name in PUBLIC_MODULES:
        check_module(module_name, problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docstrings OK ({len(PUBLIC_MODULES)} modules)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
