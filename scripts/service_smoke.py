#!/usr/bin/env python
"""Kill-restart acceptance check for the campaign service.

The scenario ISSUE 7 gates on, end to end through the real CLI:

1. Run the identical campaign **uninterrupted** through
   :class:`~repro.runner.campaign.CampaignRunner` — the reference
   manifest.
2. Start ``repro-sim serve`` with seeded service chaos (failing
   job-log appends, a duplicated submission), submit the sweep, and
   **SIGTERM the server mid-campaign** — after at least one point has
   checkpointed but before the job finishes.
3. Restart the server on the same service directory.  The job log
   replays, the re-queued job is claimed again, and its campaign
   resumes from its checkpoint.
4. Assert the finished job's manifest is **bit-identical** to the
   reference (modulo ``resumed_from_checkpoint``, which is provenance
   — how the result was produced — not part of the result), that **no
   point executed twice** (one checkpoint line per run_id), and that
   ``repro-sim audit --strict`` exits 0 on the service directory.

Usage: PYTHONPATH=src python scripts/service_smoke.py [--instructions N]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _python(*argv: str, **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_env(), capture_output=True, text=True, **kwargs
    )


def _start_server(service_dir: str, chaos_seed: int) -> tuple:
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", service_dir,
            "--port", "0", "--lease-ttl", "10",
            "--poll-interval", "0.05",
            "--chaos-seed", str(chaos_seed),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=_env(), text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"http://\S+", line)
    if not match:
        server.kill()
        raise SystemExit(f"server did not announce a URL: {line!r}")
    return server, match.group(0)


def _stop_server(server: subprocess.Popen) -> None:
    server.send_signal(signal.SIGTERM)
    out, _ = server.communicate(timeout=120)
    if server.returncode != 0:
        raise SystemExit(
            f"server exited {server.returncode} on SIGTERM:\n{out}"
        )
    sys.stdout.write(out)


def _strip_provenance(manifest: dict) -> dict:
    cleaned = dict(manifest)
    # How many points were replayed from checkpoint is a record of the
    # interruption, not of the campaign's results; everything else
    # must match bit for bit.
    cleaned.pop("resumed_from_checkpoint", None)
    return cleaned


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=4000)
    parser.add_argument("--chaos-seed", type=int, default=11)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="service-smoke-")
    service_dir = os.path.join(workdir, "svc")
    ref_dir = os.path.join(workdir, "ref")
    spec_payload = {
        "workload": "health",
        "machines": "all",
        "instructions": args.instructions,
        "isolation": "inline",
    }
    try:
        sys.path.insert(0, SRC)
        from repro.runner.campaign import CampaignRunner
        from repro.service import current_rev, job_id_of, normalize_spec
        from repro.service.http import build_campaign

        spec = normalize_spec(spec_payload)
        job_id = job_id_of(spec, current_rev())
        run_dir = os.path.join(service_dir, "runs", job_id)

        print("== reference: uninterrupted serial campaign ==", flush=True)
        specs, runner_kwargs = build_campaign(spec)
        CampaignRunner(ref_dir, **runner_kwargs).run(specs)
        with open(os.path.join(ref_dir, "manifest.json")) as handle:
            reference = json.load(handle)
        assert reference["status"] == "complete", reference

        print("== serve + submit, SIGTERM mid-campaign ==", flush=True)
        server, url = _start_server(service_dir, args.chaos_seed)
        submit = _python(
            "submit", "health", "--server", url,
            "--machines", "all",
            "--instructions", str(args.instructions),
            "--no-isolate",
        )
        if submit.returncode != 0:
            raise SystemExit(f"submit failed:\n{submit.stdout}{submit.stderr}")
        print(submit.stdout, end="", flush=True)

        # Wait until the job has durably finished at least one point,
        # then kill the server while the rest are still pending.
        checkpoint = os.path.join(run_dir, "checkpoint.jsonl")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.exists(checkpoint) and os.path.getsize(checkpoint):
                break
            time.sleep(0.05)
        else:
            raise SystemExit("job never checkpointed a point")
        _stop_server(server)

        with open(os.path.join(run_dir, "manifest.json")) as handle:
            interrupted = json.load(handle)
        done = interrupted["ok"] + interrupted["failed"] + interrupted["poisoned"]
        print(
            f"killed mid-campaign: manifest status "
            f"{interrupted['status']!r}, {done}/{reference['total_points']} "
            f"points terminal",
            flush=True,
        )
        if interrupted["status"] == "complete":
            raise SystemExit(
                "the campaign finished before the SIGTERM landed; "
                "raise --instructions so the kill lands mid-campaign"
            )

        print("== restart, resume, wait for completion ==", flush=True)
        server, url = _start_server(service_dir, args.chaos_seed)
        deadline = time.monotonic() + 300
        while True:
            job = _python("jobs", job_id, "--server", url)
            if job.returncode != 0:
                raise SystemExit(f"jobs failed:\n{job.stdout}{job.stderr}")
            state = json.loads(job.stdout)
            if state["terminal"]:
                break
            if time.monotonic() > deadline:
                raise SystemExit("job did not finish after restart")
            time.sleep(0.2)
        if state["state"] != "done":
            raise SystemExit(f"job ended {state['state']!r}: {state}")
        _stop_server(server)

        print("== verify: bit-identical manifest, no duplicates ==",
              flush=True)
        with open(os.path.join(run_dir, "manifest.json")) as handle:
            resumed = json.load(handle)
        assert resumed.get("resumed_from_checkpoint", 0) > 0, (
            "the resumed run replayed nothing from checkpoint — the "
            "kill did not actually interrupt the campaign"
        )
        if _strip_provenance(resumed) != _strip_provenance(reference):
            raise SystemExit(
                "resumed manifest differs from the uninterrupted "
                "reference:\n"
                f"reference: {json.dumps(_strip_provenance(reference), sort_keys=True)}\n"
                f"resumed:   {json.dumps(_strip_provenance(resumed), sort_keys=True)}"
            )
        run_ids = []
        with open(checkpoint) as handle:
            for line in handle:
                if line.strip():
                    run_ids.append(json.loads(line)["run_id"])
        duplicates = sorted(
            rid for rid in set(run_ids) if run_ids.count(rid) > 1
        )
        if duplicates:
            raise SystemExit(
                f"points executed more than once: {duplicates}"
            )
        audit = _python("audit", service_dir, "--strict")
        sys.stdout.write(audit.stdout)
        if audit.returncode != 0:
            raise SystemExit(
                f"strict audit failed after kill-restart:\n{audit.stderr}"
            )
        print("service smoke: OK (manifest bit-identical, "
              f"{len(run_ids)} points exactly once, strict audit clean)")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
