#!/usr/bin/env bash
# Smoke check: tier-1 tests, an invariant-checked simulation, a
# golden-model differential check, and one tiny end-to-end
# fault-injected campaign (crash + hang + checkpointed resume) through
# the real CLI entry points.  Exits non-zero on the first problem.
#
# Usage: scripts/smoke.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (slow campaign tests excluded) =="
python -m pytest -x -q -m "not slow" "$@"

echo
echo "== full invariant checking on the PSB machine =="
python -m repro run health --machine psb --instructions 5000 \
    --invariants full

echo
echo "== golden-model differential check =="
python -m repro check health --machine psb --instructions 5000

echo
echo "== end-to-end campaign with fault injection =="
campaign_dir="$(mktemp -d)"
trap 'rm -rf "$campaign_dir"' EXIT

python examples/resilient_campaign.py \
    --instructions 2000 --campaign-dir "$campaign_dir"
echo
echo "== resume from checkpoint =="
python examples/resilient_campaign.py \
    --instructions 2000 --campaign-dir "$campaign_dir" --resume

python - "$campaign_dir" <<'EOF'
import json, os, sys
manifest = json.load(open(os.path.join(sys.argv[1], "manifest.json")))
assert manifest["status"] == "complete", manifest
assert manifest["ok"] == 3, manifest
assert manifest["failed"] == 2, manifest
assert manifest["resumed_from_checkpoint"] == 5, manifest
kinds = sorted(f["kind"] for f in manifest["failures"])
assert kinds == ["RunTimeoutError", "SimulationError"], kinds
print("smoke: campaign manifest checks passed")
EOF

echo
echo "smoke: OK"
