#!/usr/bin/env bash
# Smoke check: tier-1 tests, an invariant-checked simulation, a
# golden-model differential check, a chaos-injected sweep verified by
# the offline auditor, a kill-restart check of the campaign service
# (bit-identical resume, strict audit), and one tiny end-to-end
# fault-injected campaign (crash + hang + checkpointed resume) through
# the real CLI entry points.  Exits non-zero on the first problem.
#
# Usage: scripts/smoke.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (slow campaign tests excluded) =="
python -m pytest -x -q -m "not slow" "$@"

echo
echo "== full invariant checking on the PSB machine =="
python -m repro run health --machine psb --instructions 5000 \
    --invariants full

echo
echo "== golden-model differential check =="
python -m repro check health --machine psb --instructions 5000

echo
echo "== trace compilation round trip =="
trace_dir="$(mktemp -d)"
python -m repro trace compile health --out "$trace_dir/health.rtb" \
    --instructions 2000
python - "$trace_dir/health.rtb" <<'EOF'
import sys
from repro.trace import load_binary_trace_list
records = load_binary_trace_list(sys.argv[1])
assert len(records) == 2000, len(records)
print("smoke: compiled trace loads back", len(records), "records")
EOF
rm -rf "$trace_dir"

echo
echo "== bench fast path vs baseline (25% tolerance) =="
bench_out="$(mktemp -d)"
python -m repro bench --quick --out "$bench_out/BENCH_core.json" \
    --check benchmarks/BENCH_core.json --tolerance 0.25
rm -rf "$bench_out"

echo
echo "== sampled simulation (SMARTS windows over fast-forward) =="
sample_dir="$(mktemp -d)"
python -m repro run health --machine psb --instructions 120000 \
    --sample 40000:1000:500 \
    --metrics --metrics-out "$sample_dir/metrics.json"
python -m repro report --metrics "$sample_dir/metrics.json" \
    --out "$sample_dir/sampled.md"
grep -q '## Sampling' "$sample_dir/sampled.md"
grep -q '95% CI' "$sample_dir/sampled.md"
python - "$sample_dir/metrics.json" <<'EOF'
import json, sys
extra = json.load(open(sys.argv[1]))["result"]["extra"]
assert extra["sampled"] == 1.0, extra
assert extra["windows"] == 3.0, extra
assert extra["ff_instructions"] > 100000, extra
print("smoke: sampled run measured", int(extra["windows"]),
      "windows over", int(extra["ff_instructions"]), "fast-forwarded records")
EOF
rm -rf "$sample_dir"

echo
echo "== observability: metrics, event trace, reports =="
obs_dir="$(mktemp -d)"
python -m repro run health --machine psb --instructions 5000 \
    --metrics --metrics-out "$obs_dir/metrics.json" \
    --trace-events "$obs_dir/ev.jsonl"
python -m repro report --metrics "$obs_dir/metrics.json" \
    --events "$obs_dir/ev.jsonl" --out "$obs_dir/report.md"
python -m repro report --metrics "$obs_dir/metrics.json" \
    --out "$obs_dir/report.html"
grep -q '## Hit-rate breakdown' "$obs_dir/report.md"
grep -q '| sb0 |' "$obs_dir/report.md"
grep -q 'busy cycles' "$obs_dir/report.md"
grep -q 'Predictor accuracy' "$obs_dir/report.md"
head -1 "$obs_dir/report.html" | grep -q '<!DOCTYPE html>'
echo "smoke: observability reports render"
rm -rf "$obs_dir"

echo
echo "== buffer-sharing mini-sweep (fixed vs harmonic) + report =="
sharing_dir="$(mktemp -d)"
python -m repro sweep many_streams --machines psb,psb-harmonic \
    --instructions 4000 --warmup 1000 --no-isolate \
    --campaign-dir "$sharing_dir/camp"
python -m repro report --campaign "$sharing_dir/camp" \
    --out "$sharing_dir/sharing.md"
grep -q 'psb-harmonic' "$sharing_dir/sharing.md"
python -m repro run many_streams --machine psb --buffer-sharing harmonic \
    --instructions 4000 --warmup 1000 \
    --metrics --metrics-out "$sharing_dir/metrics.json"
python -m repro report --metrics "$sharing_dir/metrics.json" \
    --out "$sharing_dir/pool.md"
grep -q '## Buffer sharing (entry pool)' "$sharing_dir/pool.md"
grep -q 'free credit' "$sharing_dir/pool.md"
python -m repro run many_streams --machine psb --buffer-sharing harmonic \
    --pool-entries 24 --instructions 4000 --warmup 1000 \
    --metrics --metrics-out "$sharing_dir/metrics24.json"
python - "$sharing_dir/metrics24.json" <<'EOF'
import json, sys
final = json.load(open(sys.argv[1]))["final"]
assert final["pool.allocated"] == 24.0, final["pool.allocated"]
print("smoke: --pool-entries preset point ran with",
      int(final["pool.allocated"]), "pooled entries")
EOF
echo "smoke: buffer-sharing sweep + pool report render"
rm -rf "$sharing_dir"

echo
echo "== matched-pair sampled sweep + paired report panel =="
paired_dir="$(mktemp -d)"
python -m repro sweep health --machines base,psb \
    --instructions 120000 --sample 40000:1000:500 --sample-paired \
    --campaign-dir "$paired_dir/camp"
python -m repro report --campaign "$paired_dir/camp" \
    --out "$paired_dir/paired.md"
grep -q '## Paired sampling' "$paired_dir/paired.md"
grep -q 'window grid' "$paired_dir/paired.md"
echo "smoke: paired sampled sweep + report panel render"
rm -rf "$paired_dir"

echo
echo "== docs: links, snippets, documented commands, docstrings =="
python scripts/check_docs.py --run
python scripts/check_docstrings.py

echo
echo "== parallel sweep (--workers 2) =="
parallel_dir="$(mktemp -d)"
python -m repro sweep health --machines base,stride,psb \
    --instructions 2000 --warmup 500 --workers 2 --progress \
    --campaign-dir "$parallel_dir"
python - "$parallel_dir" <<'EOF'
import json, os, sys
manifest = json.load(open(os.path.join(sys.argv[1], "manifest.json")))
assert manifest["status"] == "complete", manifest
assert manifest["ok"] == 3, manifest
assert manifest["failed"] == 0, manifest
assert manifest["policy"]["workers"] == 2, manifest
print("smoke: parallel sweep manifest checks passed")
EOF
rm -rf "$parallel_dir"

echo
echo "== chaos-injected sweep (--chaos-seed 7, 1 poisoned point) =="
chaos_dir="$(mktemp -d)"
python -m repro sweep health --machines base,stride,psb,jouppi \
    --instructions 2000 --warmup 500 --workers 2 --progress \
    --chaos-seed 7 --chaos-poison 1 --max-worker-kills 2 \
    --campaign-dir "$chaos_dir"
python -m repro audit "$chaos_dir"
python - "$chaos_dir" <<'EOF'
import json, os, sys
manifest = json.load(open(os.path.join(sys.argv[1], "manifest.json")))
assert manifest["status"] == "complete", manifest
assert manifest["ok"] == 3, manifest
assert manifest["failed"] == 0, manifest
assert manifest["poisoned"] == 1, manifest
counters = manifest["chaos"]["counters"]
assert counters["checkpoint_enospc"] == 1, counters
assert counters["checkpoint_torn"] == 1, counters
assert counters["worker_kills"] >= 1, counters
assert counters["cache_corrupted"] >= 1, counters
print("smoke: chaos sweep manifest + audit checks passed")
EOF
rm -rf "$chaos_dir"

echo
echo "== campaign service: kill-restart, bit-identical resume, strict audit =="
python scripts/service_smoke.py --instructions 3000

echo
echo "== end-to-end campaign with fault injection =="
campaign_dir="$(mktemp -d)"
trap 'rm -rf "$campaign_dir"' EXIT

python examples/resilient_campaign.py \
    --instructions 2000 --campaign-dir "$campaign_dir"
echo
echo "== resume from checkpoint =="
python examples/resilient_campaign.py \
    --instructions 2000 --campaign-dir "$campaign_dir" --resume

python - "$campaign_dir" <<'EOF'
import json, os, sys
manifest = json.load(open(os.path.join(sys.argv[1], "manifest.json")))
assert manifest["status"] == "complete", manifest
assert manifest["ok"] == 3, manifest
assert manifest["failed"] == 2, manifest
assert manifest["resumed_from_checkpoint"] == 5, manifest
kinds = sorted(f["kind"] for f in manifest["failures"])
assert kinds == ["RunTimeoutError", "SimulationError"], kinds
print("smoke: campaign manifest checks passed")
EOF

echo
echo "smoke: OK"
