#!/usr/bin/env python
"""Documentation checker: links resolve, snippets parse, commands run.

Three passes over every tracked markdown page (README plus ``docs/``):

1. **Links** — every relative markdown link target must exist on disk
   (external ``http(s)``/``mailto`` links and pure ``#anchor`` links are
   skipped).
2. **Snippets** — every ``repro-sim`` / ``python -m repro`` command in a
   bash fence must parse against the real argparse parser; every
   ``python examples/...`` / ``pytest path`` reference must point at an
   existing file; every ``python`` fence must at least compile.
3. **Execution** (``--run``) — the CLI commands are additionally
   *executed*, per file, in one scratch directory, with run lengths
   clamped so the whole pass stays fast.  Commands within a file run in
   document order, so a later snippet may consume files an earlier one
   wrote (e.g. ``run --metrics`` then ``report``).  Python fences in
   self-contained pages are executed too.

Exit status is non-zero on the first category of failure, with one line
per problem.  Used by ``tests/test_docs.py`` and the CI docs job.
"""

import argparse
import contextlib
import io
import os
import re
import shlex
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DOC_FILES = [
    "README.md",
    "docs/index.md",
    "docs/architecture.md",
    "docs/running.md",
    "docs/observability.md",
    "docs/integrity.md",
    "docs/robustness.md",
    "docs/service.md",
    "docs/performance.md",
    "docs/buffer_sharing.md",
    "docs/extending.md",
    "docs/paper_mapping.md",
]

# Pages whose ``python`` fences are self-contained programs (safe to
# exec under --run).  Fences elsewhere are API skeletons or fragments
# and are only compiled.
EXEC_PYTHON_PAGES = {"README.md", "docs/observability.md"}

# Subcommands too slow or environment-bound for the --run pass
# (serve blocks forever; submit/jobs need a live server).
SKIP_RUN_SUBCOMMANDS = {"bench", "serve", "submit", "jobs"}

# Run-length clamp appended to simulation commands that don't pin one.
RUN_INSTRUCTIONS = "2000"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def iter_fences(text):
    """Yield ``(language, [lines])`` for each fenced code block."""
    language, body = None, []
    for line in text.splitlines():
        match = FENCE_RE.match(line)
        if match:
            if language is None:
                language, body = match.group(1) or "", []
            else:
                yield language, body
                language, body = None, []
        elif language is not None:
            body.append(line)


def check_links(path, text, problems):
    """Every relative link target must exist on disk."""
    base = os.path.dirname(os.path.join(REPO_ROOT, path))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken link -> {target}")


def shell_commands(text):
    """Extract the commands from every bash fence, joining ``\\`` lines."""
    for language, body in iter_fences(text):
        if language not in ("bash", "sh", "console"):
            continue
        pending = ""
        for line in body:
            line = line.split("  #")[0].rstrip()
            if line.endswith("\\"):
                pending += line[:-1] + " "
                continue
            command = (pending + line).strip()
            pending = ""
            if command and not command.startswith("#"):
                yield command


def cli_argv(command):
    """Return repro-sim argv for ``command``, or None if it isn't one."""
    try:
        tokens = shlex.split(command)
    except ValueError:
        return None
    # Strip VAR=value environment prefixes.
    while tokens and re.fullmatch(r"[A-Z_][A-Z0-9_]*=.*", tokens[0]):
        tokens.pop(0)
    if tokens[:1] == ["repro-sim"]:
        return tokens[1:]
    if tokens[:3] == ["python", "-m", "repro"]:
        return tokens[3:]
    return None


def check_commands(path, text, problems):
    """Bash-fence commands must parse; referenced files must exist."""
    from repro.cli import _build_parser

    parser = _build_parser()
    for command in shell_commands(text):
        argv = cli_argv(command)
        if argv is not None:
            try:
                with contextlib.redirect_stderr(io.StringIO()):
                    parser.parse_args(argv)
            except SystemExit as exc:
                if exc.code not in (0, None):
                    problems.append(
                        f"{path}: CLI snippet does not parse: {command}"
                    )
            continue
        try:
            tokens = shlex.split(command)
        except ValueError:
            continue
        while tokens and re.fullmatch(r"[A-Z_][A-Z0-9_]*=.*", tokens[0]):
            tokens.pop(0)
        # python/pytest invocations must reference real files.
        if tokens[:1] in (["python"], ["pytest"]):
            for token in tokens[1:]:
                if token.startswith("-"):
                    break
                if "/" in token and not os.path.exists(
                    os.path.join(REPO_ROOT, token)
                ):
                    problems.append(
                        f"{path}: references missing file: {token}"
                    )


def check_python_fences(path, text, problems):
    """Every python fence must be syntactically valid."""
    for index, (language, body) in enumerate(iter_fences(text)):
        if language != "python":
            continue
        try:
            compile("\n".join(body), f"{path}[fence {index}]", "exec")
        except SyntaxError as exc:
            problems.append(f"{path}: python fence does not compile: {exc}")


def _clamped(argv):
    """Clamp run length on simulation subcommands for the --run pass."""
    if argv and argv[0] in ("run", "sweep", "compare", "check", "report",
                            "trace") and "--instructions" not in argv:
        # `trace compile` and plain `trace` accept it; `report` only
        # simulates in comparison mode, where the flag exists too.
        argv = argv + ["--instructions", RUN_INSTRUCTIONS]
    if (argv and argv[0] == "sweep" and "--no-isolate" not in argv
            and "--timeout" not in argv and "--workers" not in argv):
        # Inline execution is much faster; --timeout and --workers
        # both require process isolation.
        argv = argv + ["--no-isolate"]
    return argv


def run_commands(path, text, problems):
    """Execute the page's CLI commands (and runnable python fences)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    with tempfile.TemporaryDirectory() as workdir:
        for command in shell_commands(text):
            argv = cli_argv(command)
            if argv is None or (argv and argv[0] in SKIP_RUN_SUBCOMMANDS):
                continue
            proc = subprocess.run(
                [sys.executable, "-m", "repro"] + _clamped(argv),
                cwd=workdir, env=env, capture_output=True, text=True,
            )
            if proc.returncode != 0:
                problems.append(
                    f"{path}: command failed ({proc.returncode}): {command}\n"
                    f"    {proc.stderr.strip().splitlines()[-1:] or ['']}"
                )
        if path not in EXEC_PYTHON_PAGES:
            return
        for index, (language, body) in enumerate(iter_fences(text)):
            if language != "python":
                continue
            source = "\n".join(body)
            # Keep doc examples honest but fast.
            source = re.sub(r"\b\d{2,3}_000\b", "4_000", source)
            proc = subprocess.run(
                [sys.executable, "-c", source],
                cwd=workdir, env=env, capture_output=True, text=True,
            )
            if proc.returncode != 0:
                problems.append(
                    f"{path}: python fence {index} failed:\n"
                    f"    {proc.stderr.strip().splitlines()[-1:] or ['']}"
                )


def main(argv=None):
    """Run the requested passes; return 0 when the docs are clean."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run", action="store_true",
        help="also execute CLI commands and runnable python fences",
    )
    args = parser.parse_args(argv)

    problems = []
    for path in DOC_FILES:
        full = os.path.join(REPO_ROOT, path)
        if not os.path.exists(full):
            problems.append(f"{path}: documented page is missing")
            continue
        text = open(full, encoding="utf-8").read()
        check_links(path, text, problems)
        check_commands(path, text, problems)
        check_python_fences(path, text, problems)
        if args.run:
            run_commands(path, text, problems)

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = "links, snippets, commands" if args.run else "links, snippets"
    if not problems:
        print(f"docs OK ({len(DOC_FILES)} pages; {checked})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
