#!/usr/bin/env python3
"""Quickstart: measure Predictor-Directed Stream Buffers on one workload.

Builds the paper's baseline machine (Section 5.1), the best prior stream
buffer (Farkas et al. PC-stride), and the paper's PSB with confidence
allocation and priority scheduling, then runs the `health` pointer-chasing
workload through all three.

Run:
    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import baseline_config, get_workload, psb_config, simulate, stride_config


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "health"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    warmup = instructions // 3

    print(f"Simulating '{workload}' for {instructions} instructions "
          f"({warmup} warm-up) on three machines...\n")

    base = simulate(
        baseline_config(), get_workload(workload),
        max_instructions=instructions, warmup_instructions=warmup,
        label="no prefetching",
    )
    stride = simulate(
        stride_config(), get_workload(workload),
        max_instructions=instructions, warmup_instructions=warmup,
        label="PC-stride stream buffers",
    )
    psb = simulate(
        psb_config(), get_workload(workload),
        max_instructions=instructions, warmup_instructions=warmup,
        label="predictor-directed stream buffers",
    )

    header = f"{'machine':36s} {'IPC':>6s} {'loadlat':>8s} {'accuracy':>9s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for result in (base, stride, psb):
        speedup = result.speedup_over(base)
        accuracy = (
            f"{result.prefetch_accuracy * 100:.0f}%"
            if result.prefetches_issued
            else "-"
        )
        print(
            f"{result.label:36s} {result.ipc:6.3f} "
            f"{result.avg_load_latency:8.2f} {accuracy:>9s} "
            f"{speedup:+7.1f}%"
        )

    print()
    print(
        "The PSB follows the Stride-Filtered Markov prediction stream, so "
        "it prefetches down pointer chases a fixed stride cannot follow."
    )


if __name__ == "__main__":
    main()
