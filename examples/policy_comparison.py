#!/usr/bin/env python3
"""Sweep the PSB's policy space on the stream-thrashing workload.

`sis` interleaves more concurrent streams than the 8 stream buffers can
hold.  This example crosses the two allocation filters with the two
schedulers (the four PSB variants of Figure 5) and prints speedup,
accuracy, and wasted bus bandwidth — showing confidence allocation
suppressing stream thrashing exactly as Section 6 describes.

Run:
    python examples/policy_comparison.py [workload]
"""

import sys

from repro import (
    AllocationPolicy,
    SchedulingPolicy,
    baseline_config,
    get_workload,
    psb_config,
    simulate,
)

RUN = dict(max_instructions=50_000, warmup_instructions=20_000)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "sis"
    base = simulate(baseline_config(), get_workload(workload), **RUN)
    print(
        f"workload '{workload}': baseline IPC {base.ipc:.3f}, "
        f"L1-L2 bus {base.l1_l2_bus_utilization * 100:.0f}% busy\n"
    )

    header = (
        f"{'allocation':12s} {'scheduling':12s} {'speedup':>8s} "
        f"{'accuracy':>9s} {'bus busy':>9s} {'allocs':>7s}"
    )
    print(header)
    print("-" * len(header))
    for allocation in (AllocationPolicy.TWO_MISS, AllocationPolicy.CONFIDENCE):
        for scheduling in (
            SchedulingPolicy.ROUND_ROBIN,
            SchedulingPolicy.PRIORITY,
        ):
            result = simulate(
                psb_config(allocation, scheduling),
                get_workload(workload),
                **RUN,
            )
            print(
                f"{allocation.value:12s} {scheduling.value:12s} "
                f"{result.speedup_over(base):+7.1f}% "
                f"{result.prefetch_accuracy * 100:8.0f}% "
                f"{result.l1_l2_bus_utilization * 100:8.0f}% "
                f"{result.sb_allocations:7d}"
            )

    print(
        "\nReading: two-miss allocation admits every briefly-predictable "
        "load, so buffers are stolen before their prefetches are used "
        "(low accuracy, wasted bus).  Confidence allocation only admits "
        "loads whose predictions have been accurate, and priority "
        "scheduling hands the bus to the buffers that are hitting."
    )


if __name__ == "__main__":
    main()
