#!/usr/bin/env python3
"""Direct a stream buffer with your own address predictor.

The paper's key observation is that *any* address predictor can direct a
stream buffer (Section 7).  This example builds a custom predictor — a
simple order-2 context predictor wrapped in the AddressPredictor
interface — plugs it into the stock StreamBufferController, and compares
it against the paper's Stride-Filtered Markov on a recurring-pattern
workload.

Run:
    python examples/custom_predictor.py
"""

from typing import Optional

from repro import baseline_config, get_workload, psb_config, simulate
from repro.config import (
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
    StreamBufferConfig,
)
from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.context import ContextPredictor
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.streambuf.controller import StreamBufferController

RUN = dict(max_instructions=50_000, warmup_instructions=20_000)


class ConfidentContext(AddressPredictor):
    """An order-2 context predictor with a per-PC accuracy counter.

    Demonstrates the two predictor obligations PSB imposes:
    - tables change only in ``train`` (the write-back stage);
    - ``next_prediction`` advances only the stream's own history.
    """

    def __init__(self) -> None:
        self._context = ContextPredictor(order=2, entries=8192)
        self._confidence = {}

    def train(self, pc: int, address: int) -> bool:
        correct = self._context.train(pc, address)
        counter = self._confidence.get(pc, 0)
        self._confidence[pc] = min(7, counter + 1) if correct else max(0, counter - 1)
        return correct

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        state = self._context.make_stream_state(pc, address)
        state.confidence = self.confidence_for(pc)
        return state

    def next_prediction(self, state: StreamState) -> Optional[int]:
        return self._context.next_prediction(state)

    def confidence_for(self, pc: int) -> int:
        return self._confidence.get(pc, 0)

    def allocation_ready(self, pc: int) -> bool:
        return self.confidence_for(pc) >= 1


def run_custom(workload: str) -> SimulationResult:
    """Wire a PSB machine whose controller uses the custom predictor."""
    config = SimConfig(
        prefetch=PrefetchConfig(
            kind=PrefetcherKind.PREDICTOR_DIRECTED,
            stream_buffers=StreamBufferConfig(),
        )
    )
    simulator = Simulator(config)
    # Swap the SFM for the custom predictor before running.
    simulator.controller.predictor = ConfidentContext()
    return simulator.run(
        get_workload(workload), label="order-2 context PSB", **RUN
    )


def main() -> None:
    workload = "burg"
    base = simulate(baseline_config(), get_workload(workload), **RUN)
    sfm = simulate(psb_config(), get_workload(workload), **RUN)
    custom = run_custom(workload)

    print(f"workload '{workload}' (recurring tree walks)\n")
    header = f"{'machine':26s} {'IPC':>6s} {'speedup':>8s} {'accuracy':>9s}"
    print(header)
    print("-" * len(header))
    print(f"{'baseline':26s} {base.ipc:6.3f} {'':>8s} {'-':>9s}")
    for result in (sfm, custom):
        name = "SFM PSB" if result is sfm else "order-2 context PSB"
        print(
            f"{name:26s} {result.ipc:6.3f} "
            f"{result.speedup_over(base):+7.1f}% "
            f"{result.prefetch_accuracy * 100:8.0f}%"
        )
    print(
        "\nAny predictor implementing AddressPredictor can direct the "
        "stream buffers — the controller, allocation filters, and "
        "schedulers are unchanged."
    )


if __name__ == "__main__":
    main()
