#!/usr/bin/env python3
"""Design your own workload and see which prefetcher wins.

Uses the composable synthetic-workload builder to sweep the *mixture* of
pointer chasing vs. striding, showing the crossover the paper's whole
argument rests on: stride stream buffers win stride-heavy mixes, the PSB
wins chase-heavy mixes, and the PSB never loses badly at either extreme
(its SFM predictor contains a stride component).

Run:
    python examples/synthetic_study.py
"""

from repro import baseline_config, psb_config, simulate, stride_config
from repro.workloads.synthetic import PointerChase, StrideSweep, SyntheticWorkload

RUN = dict(max_instructions=40_000, warmup_instructions=15_000)

#: (label, chase nodes per round, sweep elements per round)
MIXES = [
    ("pure stride", 0, 768),
    ("mostly stride", 150, 512),
    ("balanced", 300, 256),
    ("mostly chase", 450, 128),
    ("pure chase", 600, 0),
]


def _workload(chase_nodes, sweep_elements):
    phases = []
    if chase_nodes:
        phases.append(
            PointerChase(nodes=chase_nodes, node_bytes=64, work_per_node=6)
        )
    if sweep_elements:
        phases.append(
            StrideSweep(elements=sweep_elements, stride=16, work_per_element=6)
        )
    return SyntheticWorkload(phases, seed=1)


def main() -> None:
    print("Prefetcher crossover as the workload mix shifts "
          "from striding to pointer chasing:\n")
    header = (
        f"{'mix':14s} {'base IPC':>9s} {'stride SB':>10s} {'PSB':>8s} "
        f"{'winner':>8s}"
    )
    print(header)
    print("-" * len(header))
    for label, chase_nodes, sweep_elements in MIXES:
        base = simulate(
            baseline_config(), _workload(chase_nodes, sweep_elements), **RUN
        )
        stride = simulate(
            stride_config(), _workload(chase_nodes, sweep_elements), **RUN
        )
        psb = simulate(
            psb_config(), _workload(chase_nodes, sweep_elements), **RUN
        )
        stride_gain = stride.speedup_over(base)
        psb_gain = psb.speedup_over(base)
        winner = "PSB" if psb_gain > stride_gain + 1 else (
            "stride" if stride_gain > psb_gain + 1 else "tie"
        )
        print(
            f"{label:14s} {base.ipc:9.3f} {stride_gain:+9.1f}% "
            f"{psb_gain:+7.1f}% {winner:>8s}"
        )
    print(
        "\nReading: a fixed stride cannot follow a pointer chase, so the "
        "stride stream buffer's benefit decays with the chase fraction; "
        "the PSB's Markov component keeps following."
    )


if __name__ == "__main__":
    main()
