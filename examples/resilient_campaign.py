#!/usr/bin/env python3
"""Resilient sweeps: a campaign that degrades gracefully under faults.

Runs four machines over the `health` workload through the campaign
runner (`repro.runner`), with two points deliberately sabotaged by the
deterministic fault harness: one crashes mid-simulation and one hangs
until the per-run timeout kills its worker process.  The campaign
completes anyway, records both failures in its manifest, and — run the
script a second time with the same --campaign-dir — resumes the healthy
points straight from the checkpoint instead of re-simulating them.

Run:
    python examples/resilient_campaign.py [--instructions N]
                                          [--campaign-dir DIR] [--resume]
"""

import argparse
import json
import os
import tempfile

from repro.runner import CampaignRunner, FaultSpec, RunSpec, WorkloadSpec
from repro.sim import baseline_config, psb_config, stride_config


def build_specs(instructions: int, warmup: int):
    machines = {
        "base": baseline_config(),
        "stride": stride_config(),
        "psb": psb_config(),
    }
    specs = [
        RunSpec(
            run_id=f"health/{name}",
            config=config,
            trace=WorkloadSpec("health", seed=1),
            max_instructions=instructions,
            warmup_instructions=warmup,
        )
        for name, config in machines.items()
    ]
    # Two sabotaged points: a crash (retried, then recorded) and a hang
    # (killed by the timeout).  A real campaign hits these as malformed
    # traces, pathological configs, or wedged simulations.
    specs.append(
        RunSpec(
            run_id="health/crashy",
            config=baseline_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=instructions,
            warmup_instructions=warmup,
            faults=FaultSpec(crash_at=200),
        )
    )
    specs.append(
        RunSpec(
            run_id="health/hung",
            config=baseline_config(),
            trace=WorkloadSpec("health", seed=1),
            max_instructions=instructions,
            warmup_instructions=warmup,
            faults=FaultSpec(hang_at=200, hang_seconds=600.0),
        )
    )
    return specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=5_000)
    parser.add_argument("--campaign-dir", default=None)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args()

    campaign_dir = args.campaign_dir or os.path.join(
        tempfile.gettempdir(), "repro-resilient-campaign"
    )
    specs = build_specs(args.instructions, args.instructions // 4)

    print(f"campaign of {len(specs)} points -> {campaign_dir}")
    print("(two points are sabotaged on purpose: one crash, one hang)\n")

    runner = CampaignRunner(
        campaign_dir,
        timeout=5.0,        # kills the hung worker
        retries=1,          # the crash gets one retry before recording
        backoff_base=0.1,
        on_error="skip",    # record failures, keep sweeping
        isolation="process",
        resume=args.resume,
    )
    campaign = runner.run(specs)

    for run_id, result in campaign.results.items():
        resumed = " (from checkpoint)" if run_id in campaign.resumed else ""
        print(f"  ok      {run_id:16s} IPC={result.ipc:.3f}{resumed}")
    for run_id, outcome in campaign.failures.items():
        print(f"  FAILED  {run_id:16s} {outcome.error_kind} "
              f"after {outcome.attempts} attempt(s)")

    manifest = campaign.manifest or {}
    print(f"\nmanifest: {manifest.get('ok', 0)} ok, "
          f"{manifest.get('failed', 0)} failed, "
          f"{manifest.get('resumed_from_checkpoint', 0)} resumed "
          f"({os.path.join(campaign_dir, 'manifest.json')})")
    if not args.resume:
        print("re-run with --resume to load completed points from the "
              "checkpoint instead of re-simulating them")
    else:
        print(json.dumps(manifest.get("failures", []), indent=2))


if __name__ == "__main__":
    main()
