#!/usr/bin/env python3
"""Reproduce Figure 5 from the command line with a bar chart.

Runs all six benchmark stand-ins under the baseline, PC-stride stream
buffers, and the four PSB variants, then prints the Figure 5 speedup
chart as ASCII bars.  This is a smaller, self-contained version of
``benchmarks/bench_fig05_speedup.py``.

Run:
    python examples/reproduce_figure5.py [instructions]
"""

import sys

from repro import baseline_config, get_workload, paper_configs, simulate
from repro.analysis.report import ascii_bar_chart
from repro.workloads import workload_names


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    warmup = instructions // 3

    for name in workload_names():
        base = simulate(
            baseline_config(), get_workload(name),
            max_instructions=instructions, warmup_instructions=warmup,
        )
        speedups = {}
        for label, config in paper_configs().items():
            result = simulate(
                config, get_workload(name),
                max_instructions=instructions, warmup_instructions=warmup,
            )
            speedups[label] = result.speedup_over(base)
        print()
        print(
            ascii_bar_chart(
                speedups,
                width=36,
                unit="%",
                title=f"{name}: % speedup over base (IPC {base.ipc:.3f})",
            )
        )


if __name__ == "__main__":
    main()
