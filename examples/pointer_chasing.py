#!/usr/bin/env python3
"""Why fixed strides fail on pointer chases — and how a PSB follows them.

This example dissects the mechanism rather than just reporting a speedup:

1. It trains the paper's Stride-Filtered Markov predictor on a linked
   list's miss stream and shows the stride component learning nothing
   while the Markov component learns the chain.
2. It then runs the `health` workload and reports where demand loads were
   served (L1 / stream buffer / L2 / memory) with and without the PSB.

Run:
    python examples/pointer_chasing.py
"""

import random

from repro import baseline_config, get_workload, psb_config
from repro.predictors.sfm import StrideFilteredMarkovPredictor
from repro.sim.simulator import Simulator


def demonstrate_predictor() -> None:
    print("=== Part 1: the Stride-Filtered Markov predictor ===\n")
    rng = random.Random(42)
    # A linked list of 64-byte nodes, allocated together, traversal shuffled.
    nodes = [0x1000_0000 + i * 64 for i in range(32)]
    rng.shuffle(nodes)

    sfm = StrideFilteredMarkovPredictor()
    load_pc = 0x2000
    for sweep in range(3):
        correct = sum(sfm.train(load_pc, node) for node in nodes)
        print(
            f"sweep {sweep}: predictor correct on "
            f"{correct}/{len(nodes)} misses, "
            f"confidence={sfm.confidence_for(load_pc)}"
        )

    entry = sfm.stride_table.lookup(load_pc)
    print(f"\ntwo-delta stride learned: {entry.two_delta_stride} "
          "(no stable stride exists in a shuffled chain)")
    print(f"Markov transitions recorded: {sfm.markov_table.trains}")

    state = sfm.make_stream_state(load_pc, nodes[0])
    predicted = [sfm.next_prediction(state) for __ in range(5)]
    print(f"\nstream-buffer run-ahead from {nodes[0]:#x}:")
    for want, got in zip(nodes[1:6], predicted):
        marker = "ok" if want == got else "MISS"
        print(f"  predicted {got:#x}  actual {want:#x}  [{marker}]")


def demonstrate_machine() -> None:
    print("\n=== Part 2: where loads get served ===\n")
    for label, config in [
        ("baseline", baseline_config()),
        ("PSB (ConfAlloc-Priority)", psb_config()),
    ]:
        simulator = Simulator(config)
        result = simulator.run(
            get_workload("health"),
            max_instructions=40_000,
            warmup_instructions=15_000,
            label=label,
        )
        hierarchy = simulator.hierarchy
        print(f"{label}:")
        print(f"  IPC                 {result.ipc:.3f}")
        print(f"  avg load latency    {result.avg_load_latency:.2f} cycles")
        print(f"  demand misses       {hierarchy.demand_misses}")
        print(
            "  served by stream buffer: "
            f"{hierarchy.sb_hits} ready + {hierarchy.sb_pending_hits} in-flight"
        )
        if simulator.controller is not None:
            controller = simulator.controller
            print(
                f"  prefetches issued/used   "
                f"{controller.prefetches_issued}/{controller.prefetches_used} "
                f"(accuracy {controller.accuracy * 100:.0f}%)"
            )
        print()


if __name__ == "__main__":
    demonstrate_predictor()
    demonstrate_machine()
