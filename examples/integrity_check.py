#!/usr/bin/env python3
"""Simulation integrity in action: invariants, golden diff, replay.

Walks the three pillars of `repro.integrity` on a live machine:

1. simulate the PSB machine with full runtime invariant checking (every
   cycle boundary, miss, and prefetch is verified against the
   structural conservation laws);
2. replay the same trace through the obviously-correct golden
   functional cache model and diff the two;
3. snapshot the run mid-trace, resume it, and show the resumed result
   is bit-identical to the uninterrupted one;
4. sabotage a run with a silent state corruption and show the checker
   converts it into a structured IntegrityError mid-flight.

Run:
    python examples/integrity_check.py [--instructions N]
"""

import argparse
import dataclasses

from repro.config import InvariantLevel
from repro.errors import IntegrityError
from repro.integrity import golden_check, resume_run, run_golden
from repro.runner import FaultSpec, RunSpec, WorkloadSpec, execute_spec
from repro.sim import psb_config
from repro.sim.simulator import Simulator
from repro.workloads import get_workload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=10_000)
    args = parser.parse_args()

    config = psb_config().with_invariants(InvariantLevel.FULL)
    trace = lambda: get_workload("health", seed=1)  # noqa: E731

    print("== 1. full invariant checking ==")
    result = Simulator(config).run(
        trace(), max_instructions=args.instructions, label="psb"
    )
    print(
        f"clean run: IPC {result.ipc:.3f}, "
        f"{int(result.extra['invariant_checks'])} invariant checks, "
        "0 violations"
    )

    print("\n== 2. golden-model differential validation ==")
    golden = run_golden(config, trace(), max_instructions=args.instructions)
    report = golden_check(result, golden)
    print(report.summary())

    print("\n== 3. deterministic snapshot/replay ==")
    snapshots = []
    Simulator(config).run(
        trace(),
        max_instructions=args.instructions,
        label="psb",
        snapshot_every=2_000,
        snapshot_sink=snapshots.append,
    )
    middle = snapshots[len(snapshots) // 2]
    resumed = resume_run(middle, trace())
    identical = all(
        getattr(resumed, field.name) == getattr(result, field.name)
        for field in dataclasses.fields(type(result))
        if field.name != "extra"
    )
    print(
        f"resumed from cycle {middle.cycle} "
        f"({middle.records_consumed} records consumed); "
        f"bit-identical to uninterrupted run: {identical}"
    )

    print("\n== 4. silent corruption caught mid-flight ==")
    spec = RunSpec(
        run_id="health/sabotaged",
        config=config,
        trace=WorkloadSpec("health", seed=1),
        max_instructions=args.instructions,
        faults=FaultSpec(corrupt_state_at=1_000, corrupt_state_target="mshr"),
    )
    try:
        execute_spec(spec)
    except IntegrityError as error:
        print(f"caught: {error}")
        print(f"  invariant: {error.invariant}")
        print(f"  cycle:     {error.cycle}")
        return 0
    print("ERROR: corruption went undetected")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
