#!/usr/bin/env python3
"""Extension study: how bus bandwidth bounds prefetching's value.

The paper gates every prefetch on the L1-L2 bus being free, so the bus
is the resource prefetching spends.  This study sweeps the L1-L2 bus
bandwidth around the paper's 8 bytes/cycle and measures the baseline and
PSB machines: at low bandwidth the PSB's extra traffic has nowhere to
go; with ample bandwidth its speedup saturates at the latency it can
hide.

Run:
    python examples/bandwidth_study.py [workload]
"""

import sys
from dataclasses import replace

from repro import baseline_config, get_workload, psb_config, simulate

RUN = dict(max_instructions=50_000, warmup_instructions=20_000)
BANDWIDTHS = (2, 4, 8, 16, 32)


def _with_bus_bandwidth(config, bytes_per_cycle):
    bus = replace(config.l1_l2_bus, bytes_per_cycle=bytes_per_cycle)
    return replace(config, l1_l2_bus=bus)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "health"
    print(f"L1-L2 bus bandwidth sweep on '{workload}' "
          "(paper baseline: 8 B/cycle)\n")
    header = (
        f"{'B/cycle':>8s} {'base IPC':>9s} {'PSB IPC':>8s} "
        f"{'speedup':>8s} {'PSB bus busy':>13s}"
    )
    print(header)
    print("-" * len(header))
    for bandwidth in BANDWIDTHS:
        base = simulate(
            _with_bus_bandwidth(baseline_config(), bandwidth),
            get_workload(workload),
            **RUN,
        )
        psb = simulate(
            _with_bus_bandwidth(psb_config(), bandwidth),
            get_workload(workload),
            **RUN,
        )
        print(
            f"{bandwidth:8d} {base.ipc:9.3f} {psb.ipc:8.3f} "
            f"{psb.speedup_over(base):+7.1f}% "
            f"{psb.l1_l2_bus_utilization * 100:12.0f}%"
        )
    print(
        "\nReading: prefetching needs idle bus slots to run ahead; the "
        "speedup it delivers is bounded by the bandwidth left over after "
        "demand misses."
    )


if __name__ == "__main__":
    main()
