"""Statistics primitives shared by the whole simulator.

The paper reports rates (miss rate, prefetch accuracy, bus utilization)
and averages (load latency).  ``Counter`` and friends provide those with
explicit, test-friendly semantics: every statistic in the simulator is a
named member of some component, never an ad-hoc attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Tracks a running sum and count, exposing the mean.

    Used for average load latency (Figure 8).
    """

    __slots__ = ("name", "total", "count", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0
        self.count = 0
        self.maximum = 0

    def add(self, sample: int) -> None:
        self.total += sample
        self.count += 1
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        self.total = 0
        self.count = 0
        self.maximum = 0

    def __repr__(self) -> str:
        return f"Accumulator({self.name}: mean={self.mean:.3f}, n={self.count})"


class Histogram:
    """Integer-keyed histogram (e.g. delta bit-width counts for Figure 4)."""

    __slots__ = ("name", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}

    def add(self, key: int, amount: int = 1) -> None:
        self.buckets[key] = self.buckets.get(key, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def fraction_at_or_below(self, key: int) -> float:
        """Fraction of samples with bucket key <= ``key``."""
        total = self.total
        if total == 0:
            return 0.0
        covered = sum(count for k, count in self.buckets.items() if k <= key)
        return covered / total

    def cumulative(self, keys: List[int]) -> List[float]:
        return [self.fraction_at_or_below(key) for key in keys]

    def reset(self) -> None:
        self.buckets.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.total})"


def ratio(numerator: int, denominator: int) -> float:
    """A rate that is 0.0 (not NaN) when the denominator is zero."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def percent(numerator: int, denominator: int) -> float:
    """Like :func:`ratio` but scaled to a percentage."""
    return 100.0 * ratio(numerator, denominator)


@dataclass
class StatGroup:
    """A labelled bag of statistics for report rendering."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def set(self, key: str, value: float) -> None:
        self.values[key] = value

    def get(self, key: str) -> float:
        return self.values[key]
