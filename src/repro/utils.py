"""Small shared utilities used across the simulator.

These helpers intentionally stay free of simulator state so that every
subsystem (caches, predictors, stream buffers) can use them without
introducing import cycles.
"""

from __future__ import annotations


def block_address(address: int, block_size: int) -> int:
    """Return ``address`` aligned down to its cache-block boundary.

    ``block_size`` must be a power of two; this is validated by the cache
    configuration rather than on every call for speed.
    """
    return address & ~(block_size - 1)


def block_index(address: int, block_size: int) -> int:
    """Return the cache-block number containing ``address``."""
    return address // block_size


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two ``value``; raise otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def fits_signed(value: int, bits: int) -> bool:
    """Return True when ``value`` is representable in ``bits`` signed bits."""
    if bits < 1:
        return False
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    return low <= value <= high


def min_bits_signed(value: int) -> int:
    """Return the smallest signed bit-width that can represent ``value``.

    Used by the Figure 4 analysis: the paper reports how many bits the
    differential Markov table needs per entry to capture miss transitions.
    """
    bits = 1
    while not fits_signed(value, bits):
        bits += 1
    return bits
