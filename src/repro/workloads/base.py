"""Shared machinery for synthetic workload generators.

Every generator produces an infinite, deterministic stream of
:class:`~repro.trace.record.TraceRecord` given a seed.  Two pieces of
shared state make the streams realistic:

- :class:`HeapModel`, a bump allocator.  Objects allocated close in time
  sit close in memory, so the pointer-chase deltas between consecutive
  misses usually fit in the differential Markov table's 16-bit entries —
  the property Figure 4 measures on the real programs.
- :class:`PcAllocator`, which hands each *static* instruction site a
  stable PC, so PC-indexed predictors see the same load sites across
  iterations.

Dependences are expressed as dynamic-instruction distances; generators
track their own emission count to compute them (a pointer chase is a
chain of loads each depending on the previous one).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord

#: Memory-map constants shared by all workloads.
HEAP_BASE = 0x1000_0000
GLOBAL_BASE = 0x0100_0000
STACK_BASE = 0x7FFF_0000
CODE_BASE = 0x0001_0000


class HeapModel:
    """A bump allocator with optional arena recycling.

    ``arena_bytes`` bounds the region; when exhausted the allocator wraps
    to the base, modelling programs (like deltablue) that churn through
    short-lived objects and let the allocator reuse memory.
    """

    def __init__(
        self,
        base: int = HEAP_BASE,
        align: int = 8,
        arena_bytes: int = 0,
    ) -> None:
        self.base = base
        self.align = align
        self.arena_bytes = arena_bytes
        self._next = base
        self.allocated_objects = 0

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the object's base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        address = self._next
        aligned = (size + self.align - 1) & ~(self.align - 1)
        self._next += aligned
        if self.arena_bytes and self._next >= self.base + self.arena_bytes:
            self._next = self.base
        self.allocated_objects += 1
        return address

    @property
    def bytes_in_use(self) -> int:
        return self._next - self.base


class PcAllocator:
    """Stable program-counter values for static instruction sites."""

    def __init__(self, base: int = CODE_BASE) -> None:
        self._next = base

    def site(self) -> int:
        """A fresh PC, 4 bytes past the previous one."""
        pc = self._next
        self._next += 4
        return pc

    def sites(self, count: int) -> List[int]:
        return [self.site() for _ in range(count)]


class WorkloadGenerator(ABC):
    """Base class for the six benchmark stand-ins.

    Subclasses define :meth:`generate`, an infinite record stream; the
    simulator caps it with ``max_instructions``.
    """

    #: Short name used by the registry and benchmark harnesses.
    name: str = "workload"
    #: One-line description mirroring Table 1.
    description: str = ""

    def __init__(self, seed: int = 1, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale

    @abstractmethod
    def generate(self) -> Iterator[TraceRecord]:
        """Yield an unbounded deterministic instruction stream."""

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.generate()

    def _rng(self) -> random.Random:
        return random.Random(self.seed)

    def _scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, int(value * self.scale))


def alu_block(pcs: List[int], kinds: List[InstrKind]) -> List[TraceRecord]:
    """Fixed computation padding: one record per (pc, kind) pair."""
    return [TraceRecord(kind, pc) for pc, kind in zip(pcs, kinds)]


def loop_branch(pc: int, taken: bool) -> TraceRecord:
    """A loop back-edge (taken except on exit): highly predictable."""
    return TraceRecord(InstrKind.BRANCH, pc, taken=taken)


class Emitter:
    """Builds records while tracking dynamic-instruction indices.

    Dependences in :class:`~repro.trace.record.TraceRecord` are distances
    back in the dynamic stream; the emitter converts absolute producer
    indices into those distances.  ``index`` is the index the *next*
    emitted record will receive::

        chase = em.index
        yield em.rec(InstrKind.LOAD, pc, addr, after=previous_chase)
    """

    def __init__(self) -> None:
        self.index = 0

    def rec(
        self,
        kind: InstrKind,
        pc: int,
        addr: int = 0,
        taken: bool = False,
        after: int = -1,
        also_after: int = -1,
    ) -> TraceRecord:
        """Create the next record; ``after`` are producer indices (or -1)."""
        dep1 = self.index - after if after >= 0 else 0
        dep2 = self.index - also_after if also_after >= 0 else 0
        self.index += 1
        return TraceRecord(kind, pc, addr=addr, taken=taken, dep1=dep1, dep2=dep2)
