"""Synthetic workload generators standing in for the paper's benchmarks.

The paper evaluates five pointer-intensive programs (health, burg,
deltablue, gs, sis) and one stride-heavy FORTRAN program (turb3d) —
Table 1.  Their Alpha binaries and inputs are not available, so each
generator here reproduces the *memory behaviour* the paper attributes to
its program: the kind of address streams (stride vs. Markov-predictable
vs. thrash-inducing), the instruction mix, and the working-set size
relative to the 32 KB L1.  See DESIGN.md for the substitution argument.

Beyond the paper's six, ``many_streams`` is an adversarial generator for
the buffer-sharing study (``docs/buffer_sharing.md``): predictable
streams with heavily skewed lookahead demand that thrash the fixed
8 x 4 entry partition.  ``PAPER_WORKLOADS`` names the paper's six for
code that should not pick up extension workloads.
"""

from repro.workloads.base import HeapModel, PcAllocator, WorkloadGenerator
from repro.workloads.cache import (
    cache_dir,
    cache_path,
    cache_stats,
    cached_workload_trace,
    clear_cache,
    prewarm_workload_trace,
    reset_cache_stats,
)
from repro.workloads.registry import (
    PAPER_WORKLOADS,
    POINTER_WORKLOADS,
    WORKLOADS,
    get_workload,
    get_workload_generator,
    workload_names,
)

__all__ = [
    "HeapModel",
    "PcAllocator",
    "WorkloadGenerator",
    "PAPER_WORKLOADS",
    "POINTER_WORKLOADS",
    "WORKLOADS",
    "cache_dir",
    "cache_path",
    "cache_stats",
    "cached_workload_trace",
    "clear_cache",
    "get_workload",
    "get_workload_generator",
    "prewarm_workload_trace",
    "reset_cache_stats",
    "workload_names",
]
