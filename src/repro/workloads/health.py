"""``health`` stand-in: Olden's hierarchical health-care simulator.

The real program simulates a four-way tree of villages, each holding
linked lists of patients that are repeatedly traversed and occasionally
relinked.  The memory behaviour that matters for the paper:

- long pointer chases through lists whose node order in memory is *not*
  a stride (nodes for one list live near each other, but the traversal
  order within the region is jumbled);
- the structure is mostly static, so the miss stream repeats sweep after
  sweep — exactly what a first-order Markov predictor captures;
- the total working set is several times the 32 KB L1, so each sweep
  misses heavily (the paper reports the highest L1 miss rate of the
  suite).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator

#: Bytes per patient node: a next pointer, data, and status fields.
_NODE_BYTES = 64


class HealthWorkload(WorkloadGenerator):
    """Linked-list sweeps over a tree of villages (pointer chasing)."""

    name = "health"
    description = (
        "Hierarchical health-care simulator from the Olden suite: "
        "repeated traversal of per-village patient linked lists."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        num_lists: int = 20,
        nodes_per_list: int = 64,
        relink_chance: float = 0.01,
    ) -> None:
        super().__init__(seed, scale)
        self.num_lists = self._scaled(num_lists, minimum=2)
        self.nodes_per_list = self._scaled(nodes_per_list, minimum=4)
        self.relink_chance = relink_chance

    def _build_lists(self, heap: HeapModel, rng) -> List[List[int]]:
        """Allocate each list's nodes in one segment, traversal shuffled.

        Per-segment allocation keeps chase deltas small (they fit the
        16-bit differential Markov entries); shuffling kills strides.
        """
        lists: List[List[int]] = []
        for __ in range(self.num_lists):
            nodes = [heap.alloc(_NODE_BYTES) for _ in range(self.nodes_per_list)]
            rng.shuffle(nodes)
            lists.append(nodes)
        return lists

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        heap = HeapModel()
        lists = self._build_lists(heap, rng)
        pcs = PcAllocator()
        pc_head = pcs.site()  # load list head from village struct
        pc_chase = pcs.site()  # load patient->next
        pc_data = pcs.site()  # load patient->days
        pc_check = pcs.site()  # compare days
        pc_update = pcs.site()  # store patient->days
        pc_loop = pcs.site()  # list-walk back edge
        pc_village = pcs.site()  # village loop back edge
        pc_work = pcs.sites(10)  # per-patient bookkeeping arithmetic
        village_bases = [0x0100_0000 + i * 256 for i in range(self.num_lists)]

        # Each of the four concurrent traversals gets its own static load
        # site (its own chase PC), as the four inlined call sites of the
        # real program's level walk would.
        pc_chase_lane = pcs.sites(4)
        pc_data_lane = pcs.sites(4)

        em = Emitter()
        group = 1  # villages processed one at a time (serial chase)
        while True:
            for base_index in range(0, len(lists), group):
                lanes = [
                    (lane, lists[base_index + lane])
                    for lane in range(min(group, len(lists) - base_index))
                ]
                previous = {}
                for lane, __ in lanes:
                    head = em.index
                    yield em.rec(
                        InstrKind.LOAD, pc_head, village_bases[base_index + lane]
                    )
                    previous[lane] = head
                length = max(len(nodes) for __, nodes in lanes)
                for position in range(length):
                    for lane, nodes in lanes:
                        if position >= len(nodes):
                            continue
                        node = nodes[position]
                        chase = em.index
                        yield em.rec(
                            InstrKind.LOAD,
                            pc_chase_lane[lane],
                            node,
                            after=previous[lane],
                        )
                        previous[lane] = chase
                        # Same-block field read depends on the chase load.
                        data = em.index
                        yield em.rec(
                            InstrKind.LOAD, pc_data_lane[lane], node + 8, after=chase
                        )
                        yield em.rec(InstrKind.IALU, pc_check, after=data)
                        # Per-patient bookkeeping the out-of-order core can
                        # overlap with the chase.
                        work = em.index
                        yield em.rec(InstrKind.IALU, pc_work[0], after=data)
                        yield em.rec(InstrKind.IALU, pc_work[1])
                        yield em.rec(InstrKind.IALU, pc_work[2], after=work)
                        yield em.rec(InstrKind.IMUL, pc_work[3])
                        yield em.rec(InstrKind.IALU, pc_work[4])
                        yield em.rec(InstrKind.IALU, pc_work[5])
                        if rng.random() < 0.25:
                            yield em.rec(
                                InstrKind.STORE, pc_update, node + 16, after=data
                            )
                        yield em.rec(
                            InstrKind.BRANCH,
                            pc_loop,
                            taken=position != len(nodes) - 1,
                            after=data,
                        )
                        # Every fourth village is a high-admission ward whose
                        # list churns much faster: its stream mispredicts
                        # often, so priority scheduling can divert bandwidth
                        # to the three predictable lanes beside it.
                        churn = self.relink_chance * (
                            6.0 if (base_index + lane) % group == 0 else 0.5
                        )
                        if position < len(nodes) - 1 and rng.random() < churn:
                            # A patient moves: swap two nodes in traversal
                            # order, perturbing the Markov transitions.
                            other = rng.randrange(len(nodes))
                            me = position + 1
                            nodes[me], nodes[other] = nodes[other], nodes[me]
                yield em.rec(InstrKind.BRANCH, pc_village, taken=True)
