"""``sis`` stand-in: synthesis of synchronous/asynchronous circuits.

SIS is the stream-thrashing stress case of the paper: a very large
program with "a good deal of pointer arithmetic" and tight, heavily
software-pipelined inner loops.  The stand-in interleaves *many more
concurrent streams than there are stream buffers*:

- a rotating set of unit-stride truth-table scans (each its own load PC
  and array) — individually predictable, collectively far more streams
  than 8 buffers can hold, so naive allocation reallocates buffers
  before their prefetches are used;
- fanin-list pointer chases over a large gate network whose traversal
  order varies, producing misses that train the Markov table but often
  go stale.

Under two-miss allocation almost every one of these loads qualifies, so
buffers thrash and the L1-L2 bus fills with never-used prefetches
(the paper's Figure 9 shows ~4x bus traffic).  Confidence allocation
plus priority scheduling keeps buffers pinned to the streams that
actually deliver hits.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator

_GATE_BYTES = 40


class SisWorkload(WorkloadGenerator):
    """Many interleaved short streams: the stream-thrashing stressor."""

    name = "sis"
    description = (
        "Synthesis of synchronous and asynchronous circuits: state "
        "minimization over a large gate network; many concurrent streams."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        num_tables: int = 12,
        table_kib: int = 8,
        num_gates: int = 2400,
        fanin: int = 4,
    ) -> None:
        super().__init__(seed, scale)
        self.num_tables = self._scaled(num_tables, minimum=2)
        self.table_bytes = self._scaled(table_kib, minimum=1) * 1024
        self.num_gates = self._scaled(num_gates, minimum=8)
        self.fanin = fanin
        self.table_base = 0x6000_0000

    def _build_network(self, heap: HeapModel, rng) -> List[List[int]]:
        """Gates with small fanin lists pointing at other gates."""
        gates = [heap.alloc(_GATE_BYTES) for _ in range(self.num_gates)]
        network = []
        for index in range(self.num_gates):
            # Fanins cluster near the gate (netlists are mostly local),
            # keeping deltas small but unordered.
            fanins = []
            for __ in range(self.fanin):
                offset = rng.randrange(-64, 65)
                fanins.append(gates[(index + offset) % self.num_gates])
            network.append(fanins)
        self._gates = gates
        return network

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        heap = HeapModel()
        network = self._build_network(heap, rng)
        pcs = PcAllocator()
        scan_pcs = pcs.sites(self.num_tables)  # one load PC per table scan
        pc_scan_alu = pcs.site()
        pc_scan_alu2 = pcs.site()
        pc_scan_alu3 = pcs.site()
        pc_scan_br = pcs.site()
        pc_gate = pcs.site()
        pc_fanin = pcs.site()
        pc_eval = pcs.site()
        pc_eval2 = pcs.site()
        pc_eval3 = pcs.site()
        pc_gatebr = pcs.site()
        pc_update = pcs.site()
        em = Emitter()
        table_cursors = [i * 128 for i in range(self.num_tables)]
        gate_cursor = 0
        burst = 8  # cube-table reads per visit (software-pipelined loop)
        while True:
            # Software-pipelined phase: visit every table scan in rotation
            # -- more concurrent streams than the 8 stream buffers can
            # follow, so naive allocation keeps stealing buffers from
            # streams that were about to produce hits.
            for table in range(self.num_tables):
                base = self.table_base + table * self.table_bytes
                cursor = table_cursors[table]
                for i in range(burst):
                    address = base + (cursor % self.table_bytes)
                    cursor += 16
                    load = em.index
                    yield em.rec(InstrKind.LOAD, scan_pcs[table], address)
                    cube = em.index
                    yield em.rec(InstrKind.IALU, pc_scan_alu, after=load)
                    yield em.rec(InstrKind.IALU, pc_scan_alu2, after=cube)
                    yield em.rec(InstrKind.IALU, pc_scan_alu3)
                    yield em.rec(InstrKind.BRANCH, pc_scan_br, taken=i != burst - 1)
                table_cursors[table] = cursor
            # Network phase: walk fanin lists of a run of gates.  Half the
            # visits traverse a gate's fanins in a scrambled order, so the
            # transitions are right often enough to slip past a two-miss
            # filter but wrong often enough to keep accuracy confidence at
            # zero -- the allocations that thrash the buffers.
            for __ in range(8):
                gate_index = gate_cursor % self.num_gates
                gate_cursor += 1 + rng.randrange(3)
                gate_addr = self._gates[gate_index]
                gate_load = em.index
                yield em.rec(InstrKind.LOAD, pc_gate, gate_addr)
                previous = gate_load
                fanins = list(network[gate_index])
                if rng.random() < 0.25:
                    rng.shuffle(fanins)
                for fanin_addr in fanins:
                    fanin_load = em.index
                    yield em.rec(
                        InstrKind.LOAD, pc_fanin, fanin_addr, after=previous
                    )
                    previous = fanin_load
                    yield em.rec(InstrKind.IALU, pc_eval, after=fanin_load)
                    yield em.rec(InstrKind.IALU, pc_eval2)
                    yield em.rec(InstrKind.IALU, pc_eval3)
                yield em.rec(
                    InstrKind.BRANCH,
                    pc_gatebr,
                    taken=rng.random() < 0.7,
                    after=previous,
                )
                yield em.rec(InstrKind.STORE, pc_update, gate_addr + 16)
