"""``burg`` stand-in: a BURS tree-parser generator.

The real program repeatedly walks grammar trees while emitting tables for
an instruction selector.  The stand-in walks a static binary tree along
paths drawn from a small, skewed set of recurring rules: the same
node-to-node transitions recur across walks (first-order Markov catches
them), but the address deltas are tree-shaped, not strides.  A secondary
phase scans the rule table with unit stride, giving the stride component
the paper's mixed results suggest.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator

_NODE_BYTES = 32


class BurgWorkload(WorkloadGenerator):
    """Recurring tree walks plus table scans."""

    name = "burg"
    description = (
        "Generates a fast tree parser using BURS technology: repeated "
        "grammar-tree walks with recurring paths and table emission."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        tree_nodes: int = 6000,
        num_rules: int = 300,
        walk_depth: int = 12,
    ) -> None:
        super().__init__(seed, scale)
        self.tree_nodes = self._scaled(tree_nodes, minimum=15)
        self.num_rules = self._scaled(num_rules, minimum=2)
        self.walk_depth = walk_depth
        self.table_base = 0x4000_0000
        self.table_entries = 512

    def _build_tree(self, heap: HeapModel) -> List[int]:
        """Heap addresses for a binary tree, allocated in DFS order.

        burg builds its trees while reading the grammar, so children are
        allocated close to their parents.  Depth-first allocation keeps
        most parent-to-child deltas small enough for the 16-bit
        differential Markov entries (the deepest hops still overflow,
        mirroring the tail of Figure 4).
        """
        addresses = [0] * self.tree_nodes
        stack = [0]
        while stack:
            node = stack.pop()
            addresses[node] = heap.alloc(_NODE_BYTES)
            right = 2 * node + 2
            left = 2 * node + 1
            if right < self.tree_nodes:
                stack.append(right)
            if left < self.tree_nodes:
                stack.append(left)
        return addresses

    def _make_rules(self, rng) -> List[List[int]]:
        """Each rule is a fixed root-to-leaf path (a list of node ids)."""
        rules = []
        for __ in range(self.num_rules):
            path = [0]
            node = 0
            for __ in range(self.walk_depth):
                child = 2 * node + (1 if rng.random() < 0.5 else 2)
                if child >= self.tree_nodes:
                    break
                path.append(child)
                node = child
            rules.append(path)
        return rules

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        heap = HeapModel()
        nodes = self._build_tree(heap)
        rules = self._make_rules(rng)
        pcs = PcAllocator()
        pc_walk = pcs.site()
        pc_op = pcs.site()
        pc_dir = pcs.site()
        pc_scan = pcs.site()
        pc_cost = pcs.site()
        pc_emit = pcs.site()
        pc_sbranch = pcs.site()
        em = Emitter()
        # Skewed rule popularity: a few rules dominate, as grammar
        # non-terminals do, so most transitions repeat.
        weights = [1.0 / (i + 1) for i in range(len(rules))]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)

        def pick_rule() -> List[int]:
            roll = rng.random()
            for index, edge in enumerate(cumulative):
                if roll <= edge:
                    return rules[index]
            return rules[-1]

        while True:
            # Phase 1: a burst of tree walks (the matcher).
            for __ in range(12):
                path = pick_rule()
                previous = -1
                for depth, node_id in enumerate(path):
                    chase = em.index
                    yield em.rec(
                        InstrKind.LOAD, pc_walk, nodes[node_id], after=previous
                    )
                    previous = chase
                    yield em.rec(InstrKind.IALU, pc_op, after=chase)
                    taken = depth != len(path) - 1
                    yield em.rec(InstrKind.BRANCH, pc_dir, taken=taken, after=chase)
            # Phase 2: emit costs into the rule table (unit stride).
            start = rng.randrange(0, 64) * 8
            for i in range(48):
                address = self.table_base + (start + i * 8) % (
                    self.table_entries * 8
                )
                load = em.index
                yield em.rec(InstrKind.LOAD, pc_scan, address)
                yield em.rec(InstrKind.IALU, pc_cost, after=load)
                yield em.rec(InstrKind.STORE, pc_emit, address, after=load)
                yield em.rec(InstrKind.BRANCH, pc_sbranch, taken=i != 47)
