"""``deltablue`` stand-in: an incremental constraint solver.

DeltaBlue is C++ with "an abundance of short-lived heap objects".  The
solver repeatedly *plans* (walks chains of constraint objects by
pointer), *executes* the plan (walks the same chain again — immediate
re-reference of the just-missed addresses), and *edits* the graph
(allocates replacement constraints from a recycling arena, with bursts of
initializing stores).  The paper reports deltablue as one of the two
largest consumers of L1-L2 bandwidth, the biggest winner from priority
scheduling, and the program whose prefetch accuracy doubles under PSB.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator

_CONSTRAINT_BYTES = 48


class DeltaBlueWorkload(WorkloadGenerator):
    """Interleaved constraint-chain walks with heap churn."""

    name = "deltablue"
    description = (
        "Incremental dataflow constraint solver (C++): pointer-chased "
        "constraint chains and an abundance of short-lived heap objects."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        num_chains: int = 16,
        chain_length: int = 80,
        arena_kib: int = 160,
        churn_chance: float = 0.03,
    ) -> None:
        super().__init__(seed, scale)
        self.num_chains = self._scaled(num_chains, minimum=2)
        self.chain_length = self._scaled(chain_length, minimum=4)
        self.arena_bytes = self._scaled(arena_kib, minimum=8) * 1024
        self.churn_chance = churn_chance

    def _build_chains(self, heap: HeapModel, rng) -> List[List[int]]:
        """Constraint chains whose nodes were allocated consecutively but
        got lightly scrambled by graph edits before we start observing."""
        chains: List[List[int]] = []
        for __ in range(self.num_chains):
            chain = [heap.alloc(_CONSTRAINT_BYTES) for _ in range(self.chain_length)]
            # A few historical edits: swap some neighbours.
            for __ in range(self.chain_length // 4):
                i = rng.randrange(len(chain) - 1)
                j = rng.randrange(len(chain) - 1)
                chain[i], chain[j] = chain[j], chain[i]
            chains.append(chain)
        return chains

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        heap = HeapModel(arena_bytes=self.arena_bytes)
        chains = self._build_chains(heap, rng)
        pcs = PcAllocator()
        pc_strength = pcs.site()  # read constraint strength
        pc_cmp = pcs.site()
        pc_planbr = pcs.site()
        pc_exec = pcs.site()  # execution chase load
        pc_write = pcs.site()  # write computed variable
        pc_execbr = pcs.site()
        pc_alloc = pcs.sites(6)  # constructor stores
        pc_link = pcs.site()
        pc_work1 = pcs.site()  # strength comparison arithmetic
        pc_work2 = pcs.site()
        pc_work3 = pcs.site()
        pc_var = pcs.site()  # variable-table scan load
        pc_varw = pcs.site()  # variable-table update store
        pc_var_alu = pcs.site()
        pc_varbr = pcs.site()
        # Four constraints are resolved concurrently, each plan walk a
        # separate static call site (its own chase PC).
        batch = 1
        pc_plan_lane = pcs.sites(batch)
        em = Emitter()

        def exec_walk(chain: List[int]) -> Iterator[TraceRecord]:
            """Execute the plan: re-walk the chain, writing results."""
            previous = -1
            for position, node in enumerate(chain):
                chase = em.index
                yield em.rec(InstrKind.LOAD, pc_exec, node, after=previous)
                previous = chase
                yield em.rec(InstrKind.IALU, pc_cmp, after=chase)
                yield em.rec(InstrKind.STORE, pc_write, node + 24, after=chase)
                yield em.rec(
                    InstrKind.BRANCH,
                    pc_execbr,
                    taken=position != len(chain) - 1,
                    after=chase,
                )

        chain_cursor = 0
        var_base = 0x7000_0000
        var_bytes = 64 * 1024
        var_cursor = 0
        while True:
            # Plan phase: walk a batch of chains concurrently.  The first
            # chain of each batch is the heavily edited one (high churn),
            # whose stream mispredicts far more than the other lanes —
            # the productivity contrast priority scheduling exploits.
            lanes = [
                chains[(chain_cursor + lane) % len(chains)] for lane in range(batch)
            ]
            previous = {lane: -1 for lane in range(batch)}
            length = max(len(chain) for chain in lanes)
            for position in range(length):
                for lane, chain in enumerate(lanes):
                    if position >= len(chain):
                        continue
                    node = chain[position]
                    chase = em.index
                    yield em.rec(
                        InstrKind.LOAD,
                        pc_plan_lane[lane],
                        node,
                        after=previous[lane],
                    )
                    previous[lane] = chase
                    yield em.rec(InstrKind.LOAD, pc_strength, node + 8, after=chase)
                    yield em.rec(InstrKind.IALU, pc_cmp, after=chase)
                    yield em.rec(InstrKind.IALU, pc_work1, after=chase)
                    yield em.rec(InstrKind.IALU, pc_work2)
                    yield em.rec(InstrKind.IALU, pc_work3)
                    yield em.rec(
                        InstrKind.BRANCH,
                        pc_planbr,
                        taken=position != len(chain) - 1,
                        after=chase,
                    )
            # Execute the plan for the batch's lead chain.
            yield from exec_walk(lanes[0])
            # Refresh a slice of the variable table (unit-stride scan, the
            # part of deltablue a stride prefetcher can help with).
            for i in range(40):
                address = var_base + (var_cursor % var_bytes)
                var_cursor += 32
                load = em.index
                yield em.rec(InstrKind.LOAD, pc_var, address)
                yield em.rec(InstrKind.IALU, pc_var_alu, after=load)
                yield em.rec(InstrKind.STORE, pc_varw, address, after=load)
                yield em.rec(InstrKind.BRANCH, pc_varbr, taken=i != 39)
            # Graph edit: retire constraints, construct replacements from
            # the recycling arena (bursts of initializing stores).  The
            # batch's lead chain is edited an order of magnitude harder.
            for lane, chain in enumerate(lanes):
                churn = self.churn_chance
                for position in range(len(chain)):
                    if rng.random() < churn:
                        fresh = heap.alloc(_CONSTRAINT_BYTES)
                        for k, pc_store in enumerate(pc_alloc):
                            yield em.rec(InstrKind.STORE, pc_store, fresh + k * 8)
                        yield em.rec(InstrKind.IALU, pc_link)
                        chain[position] = fresh
            chain_cursor = (chain_cursor + batch) % len(chains)
