"""``many_streams``: the buffer-sharing adversary (beyond the paper).

A synthetic workload built to thrash the paper's fixed 8 x 4 entry
partition (``sis`` already hints at the failure mode; this generator
isolates it).  The access pattern skews lookahead demand as hard as it
can:

- two **hot** streams consume long sequential bursts, perfectly
  predictable.  Covering a burst requires the stream buffer to run far
  ahead during the stream's long off-phase, so useful lookahead depth
  is the burst length — far beyond the 4 entries a fixed partition
  grants;
- fourteen **cold** streams touch a few scattered, never-repeating
  blocks per visit: pointer-chase noise the predictor can do nothing
  with.  Their misses keep allocation requests and priority aging
  churning, but the streams deserve *zero* lookahead — and under a
  fixed partition every buffer they (or nobody) occupy still pins 4
  entries the hot streams cannot borrow.

Under fixed partitioning the hot streams cap out at 4 entries of
lookahead.  A shared pool (:mod:`repro.streambuf.sharing`) lets them run
10+ entries deep — mostly on free pool credit, since the noise streams
generate no predictions to compete with — which is exactly the skew the
harmonic and credence sharing policies exist to exploit.  The
comparison table lives in ``docs/buffer_sharing.md``.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, PcAllocator, WorkloadGenerator

#: Each stream walks its own widely separated region, so streams never
#: overlap and every address is cold (no wrap: misses go to memory).
_STREAM_BASE = 0x4000_0000
_STREAM_SPACING = 0x0100_0000  # 16 MiB per stream
#: Per-stream scratch area for result stores, away from the load streams.
_SCRATCH_BASE = 0x7000_0000


class ManyStreamsWorkload(WorkloadGenerator):
    """Skewed-demand stride streams: the fixed-partition adversary."""

    name = "many_streams"
    description = (
        "Adversary for fixed 8x4 entry partitioning: many predictable "
        "streams with heavily skewed lookahead demand (2 hot, 14 cold)."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        hot_streams: int = 2,
        cold_streams: int = 14,
        hot_burst: int = 12,
        cold_burst: int = 3,
        cold_per_round: int = 14,
        stride: int = 32,
    ) -> None:
        super().__init__(seed, scale)
        self.hot_streams = self._scaled(hot_streams, minimum=1)
        self.cold_streams = self._scaled(cold_streams, minimum=2)
        self.hot_burst = self._scaled(hot_burst, minimum=4)
        self.cold_burst = cold_burst
        self.cold_per_round = min(cold_per_round, self.cold_streams)
        self.stride = stride

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        pcs = PcAllocator()
        hot_pcs = pcs.sites(self.hot_streams)
        cold_pcs = pcs.sites(self.cold_streams)
        pc_hot_alu = pcs.site()
        pc_hot_br = pcs.site()
        pc_hot_store = pcs.site()
        pc_cold_alu = pcs.site()
        pc_cold_alu2 = pcs.site()
        pc_cold_br = pcs.site()
        pc_cold_store = pcs.site()
        em = Emitter()
        hot_cursors = [0] * self.hot_streams
        cold_next = 0
        scratch = 0
        while True:
            # Hot phase: each hot stream walks a long *dependent* burst —
            # a linked traversal over a regularly laid-out heap, the
            # paper's core scenario.  Each load's address comes from the
            # previous one, so the window cannot overlap the misses:
            # every block whose prefetch is not already READY exposes
            # its full latency, which is what makes lookahead depth
            # (not just prefetch bandwidth) the scarce resource.
            for hot in range(self.hot_streams):
                base = _STREAM_BASE + hot * _STREAM_SPACING
                prev = -1
                for i in range(self.hot_burst):
                    load = em.index
                    yield em.rec(
                        InstrKind.LOAD, hot_pcs[hot],
                        base + hot_cursors[hot], after=prev,
                    )
                    prev = load
                    hot_cursors[hot] += self.stride
                    yield em.rec(InstrKind.IALU, pc_hot_alu, after=load)
                    if i % 4 == 3:
                        yield em.rec(
                            InstrKind.BRANCH, pc_hot_br,
                            taken=i != self.hot_burst - 1,
                        )
                yield em.rec(
                    InstrKind.STORE, pc_hot_store,
                    _SCRATCH_BASE + (scratch % 4096),
                )
                scratch += 8
            # Cold phase: a rotating window of cold streams each touch a
            # few *scattered* blocks of their region — pointer-chase
            # noise with no stride and no repeats, so the predictor can
            # give their buffers nothing useful to do.  Their demand
            # misses keep the machine (and priority aging) busy while
            # the hot streams are off, which is precisely the window a
            # shared pool uses to run the hot lookahead deep; a fixed
            # partition spends the same window holding 4 idle entries
            # per buffer that nobody can use.
            for _ in range(self.cold_per_round):
                cold = cold_next % self.cold_streams
                cold_next += 1 + rng.randrange(2)
                base = _STREAM_BASE + (self.hot_streams + cold) * _STREAM_SPACING
                for _block in range(self.cold_burst):
                    load = em.index
                    yield em.rec(
                        InstrKind.LOAD, cold_pcs[cold],
                        base + rng.randrange(_STREAM_SPACING // 64) * 64,
                    )
                    yield em.rec(InstrKind.IALU, pc_cold_alu, after=load)
                    yield em.rec(InstrKind.IALU, pc_cold_alu2)
                yield em.rec(
                    InstrKind.BRANCH, pc_cold_br, taken=rng.random() < 0.8
                )
                yield em.rec(
                    InstrKind.STORE, pc_cold_store,
                    _SCRATCH_BASE + 8192 + (scratch % 4096),
                )
                scratch += 8
