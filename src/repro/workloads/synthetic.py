"""Composable synthetic workloads.

The six benchmark stand-ins are hand-built mixtures of a few primitive
access patterns.  This module exposes those primitives as composable
*phases*, so downstream users can construct custom workloads with known
properties when studying a prefetcher::

    from repro.workloads.synthetic import (
        PointerChase, RandomAccess, StrideSweep, SyntheticWorkload,
    )

    workload = SyntheticWorkload(
        phases=[
            PointerChase(nodes=512, work_per_node=6),
            StrideSweep(elements=256, stride=32),
            RandomAccess(touches=32, region_bytes=1 << 20),
        ],
        seed=7,
    )
    result = simulate(psb_config(), workload)

Each phase emits one bounded burst per round; the workload cycles
through its phases forever.  All phases are deterministic given the
workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator


@dataclass(frozen=True)
class PointerChase:
    """A serial linked-list walk: Markov-predictable, stride-hostile.

    ``nodes`` are allocated together and traversed in a shuffled (but
    fixed) order; ``churn`` is the per-visit probability of swapping two
    nodes, which ages the Markov transitions.
    """

    nodes: int = 256
    node_bytes: int = 64
    work_per_node: int = 4
    store_chance: float = 0.2
    churn: float = 0.0

    def _build(self, context: "_PhaseContext") -> dict:
        addresses = [
            context.heap.alloc(self.node_bytes) for __ in range(self.nodes)
        ]
        context.rng.shuffle(addresses)
        return {
            "nodes": addresses,
            "pc_chase": context.pcs.site(),
            "pc_work": context.pcs.sites(max(1, self.work_per_node)),
            "pc_store": context.pcs.site(),
            "pc_branch": context.pcs.site(),
        }

    def _burst(self, context: "_PhaseContext", state: dict) -> Iterator[TraceRecord]:
        em = context.emitter
        rng = context.rng
        nodes: List[int] = state["nodes"]
        previous = -1
        for position, node in enumerate(nodes):
            chase = em.index
            yield em.rec(InstrKind.LOAD, state["pc_chase"], node, after=previous)
            previous = chase
            for pc in state["pc_work"][: self.work_per_node]:
                yield em.rec(InstrKind.IALU, pc, after=chase)
            if rng.random() < self.store_chance:
                yield em.rec(
                    InstrKind.STORE, state["pc_store"], node + 8, after=chase
                )
            yield em.rec(
                InstrKind.BRANCH,
                state["pc_branch"],
                taken=position != len(nodes) - 1,
                after=chase,
            )
            if self.churn and rng.random() < self.churn:
                other = rng.randrange(len(nodes))
                nodes[position], nodes[other] = nodes[other], nodes[position]


@dataclass(frozen=True)
class StrideSweep:
    """A constant-stride sweep: the pattern stride prefetchers own."""

    elements: int = 128
    stride: int = 32
    element_bytes: int = 8
    work_per_element: int = 3
    write_back: bool = False

    def _build(self, context: "_PhaseContext") -> dict:
        region = self.elements * max(self.stride, self.element_bytes) * 4
        return {
            "base": context.heap.alloc(region),
            "cursor": 0,
            "region": region,
            "pc_load": context.pcs.site(),
            "pc_work": context.pcs.sites(max(1, self.work_per_element)),
            "pc_store": context.pcs.site(),
            "pc_branch": context.pcs.site(),
        }

    def _burst(self, context: "_PhaseContext", state: dict) -> Iterator[TraceRecord]:
        em = context.emitter
        for i in range(self.elements):
            address = state["base"] + state["cursor"] % state["region"]
            state["cursor"] += self.stride
            load = em.index
            yield em.rec(InstrKind.LOAD, state["pc_load"], address)
            for pc in state["pc_work"][: self.work_per_element]:
                yield em.rec(InstrKind.FADD, pc, after=load)
            if self.write_back:
                yield em.rec(InstrKind.STORE, state["pc_store"], address, after=load)
            yield em.rec(
                InstrKind.BRANCH,
                state["pc_branch"],
                taken=i != self.elements - 1,
            )


@dataclass(frozen=True)
class RandomAccess:
    """Unpredictable touches over a region: noise no predictor captures."""

    touches: int = 64
    region_bytes: int = 1 << 20
    work_per_touch: int = 2

    def _build(self, context: "_PhaseContext") -> dict:
        return {
            "base": context.heap.alloc(self.region_bytes),
            "pc_load": context.pcs.site(),
            "pc_work": context.pcs.sites(max(1, self.work_per_touch)),
            "pc_branch": context.pcs.site(),
        }

    def _burst(self, context: "_PhaseContext", state: dict) -> Iterator[TraceRecord]:
        em = context.emitter
        rng = context.rng
        for i in range(self.touches):
            address = state["base"] + rng.randrange(0, self.region_bytes) & ~7
            load = em.index
            yield em.rec(InstrKind.LOAD, state["pc_load"], address)
            for pc in state["pc_work"][: self.work_per_touch]:
                yield em.rec(InstrKind.IALU, pc, after=load)
            yield em.rec(
                InstrKind.BRANCH,
                state["pc_branch"],
                taken=i != self.touches - 1,
            )


class _PhaseContext:
    """Shared mutable machinery handed to each phase."""

    def __init__(self, rng, heap: HeapModel, pcs: PcAllocator, emitter: Emitter):
        self.rng = rng
        self.heap = heap
        self.pcs = pcs
        self.emitter = emitter


class SyntheticWorkload(WorkloadGenerator):
    """Cycles through its phases forever, one burst per phase per round."""

    name = "synthetic"
    description = "User-composed mixture of chase/stride/random phases."

    def __init__(
        self,
        phases: Sequence = (),
        seed: int = 1,
        scale: float = 1.0,
    ) -> None:
        super().__init__(seed, scale)
        if not phases:
            raise ValueError("a synthetic workload needs at least one phase")
        self.phases = list(phases)

    def generate(self) -> Iterator[TraceRecord]:
        context = _PhaseContext(
            self._rng(), HeapModel(), PcAllocator(), Emitter()
        )
        states = [phase._build(context) for phase in self.phases]
        while True:
            for phase, state in zip(self.phases, states):
                yield from phase._burst(context, state)
