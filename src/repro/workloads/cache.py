"""On-disk cache of compiled workload traces.

Workload generators are deterministic, so a ``(name, seed, count)``
triple fully identifies a trace prefix.  The first request compiles
that prefix into the binary trace format (:mod:`repro.trace.binfmt`);
later requests — other sweep points, other processes, other days —
mmap it straight back instead of re-running the generator.

The cache directory is ``$REPRO_TRACE_CACHE`` when set, else
``~/.cache/repro-sim/traces``.  File names embed the binary format
version, so a format bump simply misses the old files rather than
tripping over stale headers; a corrupted or stale file is recompiled
in place.
"""

from __future__ import annotations

import itertools
import os
from typing import List

from repro.errors import TraceFormatError
from repro.trace.binfmt import (
    SUFFIX,
    VERSION,
    binary_trace_count,
    compile_trace,
    load_binary_trace_list,
)
from repro.trace.record import TraceRecord
from repro.workloads.registry import get_workload

__all__ = [
    "cache_dir",
    "cache_path",
    "cache_stats",
    "cached_workload_trace",
    "clear_cache",
    "prewarm_workload_trace",
    "reset_cache_stats",
]

#: Per-process cache activity.  ``corrupt_recompiled`` counts entries
#: that existed on disk but failed header/checksum validation and were
#: recompiled in place — the signal that something is damaging the
#: cache.  Campaign prewarm runs in the parent process, so the parent's
#: counters cover the shared entries its workers mmap.
_STATS = {"hits": 0, "misses": 0, "corrupt_recompiled": 0}


def cache_stats() -> dict:
    """A snapshot of this process's cache hit/miss/recompile counters."""
    return dict(_STATS)


def reset_cache_stats() -> None:
    """Zero the cache counters (test isolation)."""
    for key in _STATS:
        _STATS[key] = 0


def cache_dir() -> str:
    """The directory compiled workload traces live in."""
    override = os.environ.get("REPRO_TRACE_CACHE")
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-sim", "traces"
    )


def cache_path(name: str, seed: int, instructions: int) -> str:
    """Cache file for ``instructions`` records of ``name`` at ``seed``."""
    filename = f"{name}-s{seed}-n{instructions}-v{VERSION}{SUFFIX}"
    return os.path.join(cache_dir(), filename)


def cached_workload_trace(
    name: str,
    seed: int = 1,
    instructions: int = 0,
    refresh: bool = False,
) -> List[TraceRecord]:
    """Load ``instructions`` records of workload ``name``, cached on disk.

    On a cache miss (or ``refresh=True``, or an unreadable/stale cache
    file) the generator runs once and its prefix is compiled through
    :func:`repro.trace.binfmt.compile_trace`; either way the returned
    records are exactly what ``get_workload(name, seed=seed)`` yields.
    ``instructions`` must be positive: generators are unbounded, so an
    unlimited cache entry cannot exist.

    If the cache directory cannot be created or written (read-only
    home, sandbox), the generator result is returned uncached — the
    cache is an accelerator, never a requirement.
    """
    if instructions <= 0:
        raise ValueError("cached_workload_trace needs instructions > 0")
    path = cache_path(name, seed, instructions)
    if not refresh:
        records, corrupt = _try_load(path, instructions)
        if records is not None:
            _STATS["hits"] += 1
            return records
        if corrupt:
            _STATS["corrupt_recompiled"] += 1
        else:
            _STATS["misses"] += 1
    # Validate the name before touching the filesystem.
    source = get_workload(name, seed=seed)
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        compile_trace(path, source, limit=instructions)
    except (OSError, TraceFormatError):
        return list(itertools.islice(get_workload(name, seed=seed), instructions))
    records, __ = _try_load(path, instructions)
    if records is not None:
        return records
    return list(itertools.islice(get_workload(name, seed=seed), instructions))


def prewarm_workload_trace(
    name: str, seed: int = 1, instructions: int = 0
) -> bool:
    """Ensure the cache entry for ``(name, seed, instructions)`` exists.

    Compiles the workload prefix if it is missing, stale, or incomplete,
    without loading the records into memory afterwards.  A campaign
    driver calls this once in the parent before fanning points out to
    worker processes, so N workers mmap one shared compiled trace
    instead of each re-running the generator (or racing to compile the
    same entry).  A cache hit re-validates the header checksum (via
    :func:`repro.trace.binfmt.binary_trace_count`); a corrupt entry is
    recompiled in place and counted in :func:`cache_stats`.  Returns
    True when a valid entry is in place, False when the cache is
    unwritable — workers then fall back to the generator, which is
    slower but always correct.
    """
    if instructions <= 0:
        raise ValueError("prewarm_workload_trace needs instructions > 0")
    path = cache_path(name, seed, instructions)
    corrupt = False
    try:
        if binary_trace_count(path) == instructions:
            _STATS["hits"] += 1
            return True
        corrupt = True
    except TraceFormatError:
        corrupt = os.path.exists(path)
    if corrupt:
        _STATS["corrupt_recompiled"] += 1
    else:
        _STATS["misses"] += 1
    source = get_workload(name, seed=seed)
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        compile_trace(path, source, limit=instructions)
    except (OSError, TraceFormatError):
        return False
    try:
        return binary_trace_count(path) == instructions
    except TraceFormatError:
        return False


def _try_load(path: str, instructions: int):
    """Load a cache file.

    Returns ``(records, False)`` on success, ``(None, False)`` when the
    entry is simply absent, and ``(None, True)`` when a file exists but
    is stale, corrupt, or short — the caller decides whether that is a
    miss or a recompile.
    """
    if not os.path.exists(path):
        return None, False
    try:
        records = load_binary_trace_list(path)
    except TraceFormatError:
        return None, True
    if len(records) != instructions:
        return None, True
    return records, False


def clear_cache() -> int:
    """Delete all compiled traces in the cache; return how many."""
    directory = cache_dir()
    removed = 0
    try:
        entries = os.listdir(directory)
    except OSError:
        return 0
    for entry in entries:
        if entry.endswith(SUFFIX):
            try:
                os.unlink(os.path.join(directory, entry))
                removed += 1
            except OSError:
                pass
    return removed
