"""``gs`` stand-in: Ghostscript converting PostScript to an image.

Ghostscript mixes two very different access patterns: rasterization
sweeps unit-stride across large scan-line buffers (stride-predictable),
while interpreting the display list chases graphics-state and path
objects on the heap (Markov-predictable, not stride).  The blend gives
both stream-buffer styles something to do, with a modest PSB edge from
the pointer part — matching the paper's mid-pack results for gs.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, HeapModel, PcAllocator, WorkloadGenerator

_OBJECT_BYTES = 56


class GhostscriptWorkload(WorkloadGenerator):
    """Raster strides interleaved with display-list pointer chasing."""

    name = "gs"
    description = (
        "Ghostscript: PostScript interpretation (heap object chasing) "
        "plus rasterization (unit-stride scan-line processing)."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        raster_kib: int = 96,
        num_display_lists: int = 8,
        objects_per_list: int = 96,
    ) -> None:
        super().__init__(seed, scale)
        self.raster_bytes = self._scaled(raster_kib, minimum=8) * 1024
        self.num_display_lists = self._scaled(num_display_lists, minimum=1)
        self.objects_per_list = self._scaled(objects_per_list, minimum=4)
        self.raster_base = 0x5000_0000

    def _build_display_lists(self, heap: HeapModel, rng) -> List[List[int]]:
        lists: List[List[int]] = []
        for __ in range(self.num_display_lists):
            objects = [
                heap.alloc(_OBJECT_BYTES) for _ in range(self.objects_per_list)
            ]
            rng.shuffle(objects)
            lists.append(objects)
        return lists

    def generate(self) -> Iterator[TraceRecord]:
        rng = self._rng()
        heap = HeapModel()
        display_lists = self._build_display_lists(heap, rng)
        pcs = PcAllocator()
        pc_obj = pcs.site()  # display-list chase
        pc_attr = pcs.site()
        pc_interp = pcs.site()
        pc_objbr = pcs.site()
        pc_rast_in = pcs.site()  # raster read
        pc_rast_fp = pcs.sites(4)  # colour-space conversion arithmetic
        pc_rast_out = pcs.site()  # raster write
        pc_rastbr = pcs.site()
        pc_rast_ix = pcs.sites(2)  # scan-line index arithmetic
        em = Emitter()
        raster_cursor = 0
        list_cursor = 0
        while True:
            # Interpret one display list (pointer chase).
            objects = display_lists[list_cursor]
            list_cursor = (list_cursor + 1) % len(display_lists)
            previous = -1
            for position, obj in enumerate(objects):
                chase = em.index
                yield em.rec(InstrKind.LOAD, pc_obj, obj, after=previous)
                previous = chase
                yield em.rec(InstrKind.LOAD, pc_attr, obj + 16, after=chase)
                yield em.rec(InstrKind.IALU, pc_interp, after=chase)
                yield em.rec(
                    InstrKind.BRANCH,
                    pc_objbr,
                    taken=position != len(objects) - 1,
                    after=chase,
                )
            # Rasterize a scan-line band: a constant 32-byte stride over a
            # large buffer (one new cache block per step).
            band_words = 32
            for i in range(band_words):
                address = self.raster_base + (raster_cursor % self.raster_bytes)
                raster_cursor += 16
                load = em.index
                yield em.rec(InstrKind.LOAD, pc_rast_in, address)
                m = em.index
                yield em.rec(InstrKind.FMUL, pc_rast_fp[0], after=load)
                yield em.rec(InstrKind.FADD, pc_rast_fp[1], after=load)
                yield em.rec(InstrKind.FMUL, pc_rast_fp[2], after=m)
                yield em.rec(InstrKind.FADD, pc_rast_fp[3], after=m)
                yield em.rec(InstrKind.IALU, pc_rast_ix[0])
                yield em.rec(InstrKind.IALU, pc_rast_ix[1])
                yield em.rec(InstrKind.STORE, pc_rast_out, address, after=m)
                yield em.rec(InstrKind.BRANCH, pc_rastbr, taken=i != band_words - 1)
