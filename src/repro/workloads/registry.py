"""Registry of the benchmark stand-ins (Table 1, plus extensions)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.trace.record import TraceRecord
from repro.workloads.base import WorkloadGenerator
from repro.workloads.burg import BurgWorkload
from repro.workloads.deltablue import DeltaBlueWorkload
from repro.workloads.gs import GhostscriptWorkload
from repro.workloads.health import HealthWorkload
from repro.workloads.many_streams import ManyStreamsWorkload
from repro.workloads.sis import SisWorkload
from repro.workloads.turb3d import Turb3dWorkload

#: Table 1 order — the five pointer programs, then the FORTRAN program —
#: followed by extension workloads beyond the paper.
WORKLOADS: Dict[str, Type[WorkloadGenerator]] = {
    "health": HealthWorkload,
    "burg": BurgWorkload,
    "deltablue": DeltaBlueWorkload,
    "gs": GhostscriptWorkload,
    "sis": SisWorkload,
    "turb3d": Turb3dWorkload,
    "many_streams": ManyStreamsWorkload,
}

#: The paper's six benchmarks (Table 1) — the default scope for
#: paper-reproduction sweeps and the perf baselines; extension workloads
#: like ``many_streams`` are opted into explicitly.
PAPER_WORKLOADS = ("health", "burg", "deltablue", "gs", "sis", "turb3d")

#: The pointer-intensive subset the paper's averages are computed over.
POINTER_WORKLOADS = ("health", "burg", "deltablue", "gs", "sis")


def workload_names() -> List[str]:
    """Every registered workload name, paper benchmarks first."""
    return list(WORKLOADS)


def get_workload_generator(
    name: str, seed: int = 1, scale: float = 1.0, **kwargs
) -> WorkloadGenerator:
    """Instantiate a workload generator by benchmark name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return factory(seed=seed, scale=scale, **kwargs)


def get_workload(
    name: str, seed: int = 1, scale: float = 1.0, **kwargs
) -> Iterator[TraceRecord]:
    """An unbounded trace for ``name`` (convenience over the generator)."""
    return get_workload_generator(name, seed=seed, scale=scale, **kwargs).generate()
