"""``turb3d`` stand-in: isotropic turbulence in a periodic cube.

The real program is stride-dominated FORTRAN: sweeps over a 3-D grid of
doubles in each coordinate direction.  The x sweep is unit-stride (one
miss per four 8-byte elements with 32-byte lines), the y sweep strides by
a row, and the z sweep strides by a whole plane — large, but perfectly
constant, strides.  Stride-based stream buffers already capture all of
this, which is why the paper's PSB shows essentially the same speedup as
PC-stride on FORTRAN codes.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.record import InstrKind, TraceRecord
from repro.workloads.base import Emitter, PcAllocator, WorkloadGenerator

_ELEMENT = 8  # bytes per double


class Turb3dWorkload(WorkloadGenerator):
    """Directional sweeps over a 3-D grid, FP-heavy, stride-predictable."""

    name = "turb3d"
    description = (
        "Simulates isotropic, homogeneous turbulence in a cube: "
        "stride-dominated FORTRAN loops over a 3-D grid."
    )

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        nx: int = 32,
        ny: int = 32,
        nz: int = 16,
    ) -> None:
        super().__init__(seed, scale)
        self.nx = self._scaled(nx, minimum=4)
        self.ny = self._scaled(ny, minimum=4)
        self.nz = self._scaled(nz, minimum=2)
        self.grid_base = 0x2000_0000
        self.out_base = 0x3000_0000

    def _address(self, x: int, y: int, z: int) -> int:
        index = (z * self.ny + y) * self.nx + x
        return self.grid_base + index * _ELEMENT

    def _sweep(
        self, em: Emitter, pcs, count: int, start: int, stride: int, out: int
    ) -> Iterator[TraceRecord]:
        """One inner loop iteration: two loads and an FFT-butterfly's
        worth of floating-point work (real turb3d does ~10 flops per
        element loaded), a store, index arithmetic, and the back edge."""
        (
            pc_a,
            pc_b,
            pc_fm1,
            pc_fa1,
            pc_fm2,
            pc_fa2,
            pc_fm3,
            pc_fa3,
            pc_ix1,
            pc_ix2,
            pc_store,
            pc_branch,
        ) = pcs
        addr = start
        for i in range(count):
            a = em.index
            yield em.rec(InstrKind.LOAD, pc_a, addr)
            b = em.index
            yield em.rec(InstrKind.LOAD, pc_b, addr + stride)
            m1 = em.index
            yield em.rec(InstrKind.FMUL, pc_fm1, after=a, also_after=b)
            yield em.rec(InstrKind.FADD, pc_fa1, after=a)
            m2 = em.index
            yield em.rec(InstrKind.FMUL, pc_fm2, after=b)
            yield em.rec(InstrKind.FADD, pc_fa2, after=m1)
            yield em.rec(InstrKind.FMUL, pc_fm3, after=m2)
            s = em.index
            yield em.rec(InstrKind.FADD, pc_fa3, after=m2)
            yield em.rec(InstrKind.IALU, pc_ix1)
            yield em.rec(InstrKind.IALU, pc_ix2)
            yield em.rec(InstrKind.STORE, pc_store, out + i * _ELEMENT, after=s)
            yield em.rec(InstrKind.BRANCH, pc_branch, taken=i != count - 1)
            addr += stride

    def generate(self) -> Iterator[TraceRecord]:
        pcs = PcAllocator()
        x_pcs = pcs.sites(12)
        y_pcs = pcs.sites(12)
        z_pcs = pcs.sites(12)
        row = self.nx * _ELEMENT
        plane = self.nx * self.ny * _ELEMENT
        em = Emitter()
        while True:
            # x-direction: unit stride along each row.
            for z in range(0, self.nz, 2):
                for y in range(0, self.ny, 4):
                    start = self._address(0, y, z)
                    yield from self._sweep(
                        em, x_pcs, self.nx - 1, start, _ELEMENT, self.out_base
                    )
            # y-direction: stride of one row.
            for z in range(0, self.nz, 2):
                for x in range(0, self.nx, 4):
                    start = self._address(x, 0, z)
                    yield from self._sweep(
                        em, y_pcs, self.ny - 1, start, row, self.out_base
                    )
            # z-direction: stride of one plane (large but constant).
            for y in range(0, self.ny, 4):
                for x in range(0, self.nx, 4):
                    start = self._address(x, y, 0)
                    yield from self._sweep(
                        em, z_pcs, self.nz - 1, start, plane, self.out_base
                    )
