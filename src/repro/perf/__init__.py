"""Simulator performance instrumentation and benchmarking.

Two halves:

- :mod:`repro.perf.collector` — lightweight wall-clock timers and event
  counters threaded through the simulator (cycles skipped by the
  event-driven fast path, time per phase, component event counts).
- :mod:`repro.perf.bench` — the pinned micro-suite behind
  ``repro-sim bench``: per-workload wall time, simulated cycles per
  second, records per second, the event-driven vs cycle-stepped
  speedup, and regression checking against a checked-in baseline
  (``benchmarks/BENCH_core.json``).
"""

from repro.perf.collector import PerfCollector
from repro.perf.bench import (
    BenchmarkError,
    check_against_baseline,
    check_sampling_baseline,
    format_report,
    format_sampling_report,
    load_baseline,
    run_bench,
    run_sampling_bench,
    write_report,
)

__all__ = [
    "PerfCollector",
    "BenchmarkError",
    "check_against_baseline",
    "check_sampling_baseline",
    "format_report",
    "format_sampling_report",
    "load_baseline",
    "run_bench",
    "run_sampling_bench",
    "write_report",
]
