"""Wall-clock timers and event counters for the simulator itself.

A :class:`PerfCollector` measures the *simulator*, never the simulated
machine: wall time per phase (trace loading, simulation), cycles the
event-driven fast path skipped, events per second.  It is deliberately
cheap — a dict update per event bucket, a ``perf_counter`` pair per
timed section — so it can stay attached even when nobody reads it.

Collectors are **excluded from simulation snapshots**: pickling one
yields an empty collector.  This keeps snapshot/replay bit-identical
regardless of how much (or little) profiling happened around a run —
wall-clock measurements could never be replayed meaningfully anyway.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional


class PerfCollector:
    """Named monotonically-growing counters plus accumulating timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, float] = {}

    # -- counters ------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    # -- timers --------------------------------------------------------

    @contextmanager
    def time(self, name: str):
        """Accumulate the wall-clock duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def elapsed(self, name: str, default: float = 0.0) -> float:
        return self.timers.get(name, default)

    # -- derived rates -------------------------------------------------

    def rate(self, counter: str, timer: str) -> float:
        """``counter`` events per second of ``timer`` (0 when unmeasured)."""
        seconds = self.timers.get(timer, 0.0)
        if seconds <= 0.0:
            return 0.0
        return self.counters.get(counter, 0.0) / seconds

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "PerfCollector") -> None:
        """Fold another collector's counters and timers into this one."""
        for name, value in other.counters.items():
            self.add(name, value)
        for name, value in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + value

    def report(self) -> Dict[str, Dict[str, float]]:
        """A JSON-able snapshot of everything collected so far."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
        }

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- pickling ------------------------------------------------------
    # Snapshots capture the whole simulator object graph; the collector
    # deliberately contributes nothing so fast-path and stepped runs
    # (and profiled and unprofiled ones) produce bit-identical payloads.

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.counters = {}
        self.timers = {}

    def __repr__(self) -> str:
        return (
            f"PerfCollector({len(self.counters)} counters, "
            f"{len(self.timers)} timers)"
        )


def component_counters(simulator) -> Dict[str, float]:
    """Event counts harvested from a simulator's components.

    Reads the counters the components already maintain (no hot-path
    instrumentation): hierarchy demand/prefetch traffic, predictor and
    stream-buffer activity, core retirement.
    """
    out: Dict[str, float] = {}
    hierarchy = getattr(simulator, "hierarchy", None)
    if hierarchy is not None:
        out.update(hierarchy.perf_counters())
    controller = getattr(simulator, "controller", None)
    if controller is not None:
        for name in (
            "prefetches_issued",
            "prefetches_used",
            "predictions_made",
            "allocations",
        ):
            value = getattr(controller, name, None)
            if value is not None:
                out[f"prefetcher.{name}"] = float(value)
    core = getattr(simulator, "core", None)
    if core is not None:
        stats = core.stats
        out["core.retired"] = float(stats.retired)
        out["core.cycles"] = float(stats.cycles)
    return out
