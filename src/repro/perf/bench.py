"""The pinned benchmark micro-suite behind ``repro-sim bench``.

Each benchmarked workload is generated once, materialised into a list
(so trace generation is excluded from the timings and both runs see
the exact same records), then simulated twice on the same machine
config: once cycle-stepped (``event_driven=False``) and once through
the event-driven fast path.  Both runs must produce identical
architectural results — the bench refuses to report a speedup for a
run that changed the answer.

Reports are plain JSON (see :func:`write_report`); the checked-in
baseline lives at ``benchmarks/BENCH_core.json`` and
:func:`check_against_baseline` gates CI on it: the regression signal
is the stepped/event *speedup ratio*, not absolute wall time — both
modes run back-to-back under the same machine load, so their ratio
survives runner-class and background-load differences that make
absolute-throughput gates flaky.  Absolute rates are still recorded in
every report for human eyes.

A second suite, :func:`run_sampling_bench` (``repro-sim bench
--sampling``, baseline ``benchmarks/BENCH_sampling.json``), runs each
workload detailed and under SMARTS-style sampling and gates on three
things: the detailed reference staying bit-identical, the sampled IPC
error staying inside the baseline's stated bound, and the effective
speedup clearing the stated floor.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.errors import ReproError
from repro.workloads import cached_workload_trace, workload_names

#: Schema version of the report / baseline JSON.
REPORT_VERSION = 1


class BenchmarkError(ReproError):
    """A benchmark run or baseline comparison failed."""

    retryable = False


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _timed_run(
    config: SimConfig,
    records: list,
    instructions: int,
    warmup: int,
    label: str,
    profile_path: Optional[str] = None,
):
    """One simulation plus its wall time and perf counters.

    With ``profile_path``, the run executes under :mod:`cProfile` and
    the stats dump lands there (readable via ``pstats`` or snakeviz).
    Profiled wall times are inflated by instrumentation — compare them
    only against other profiled runs.
    """
    from repro.sim.simulator import Simulator

    simulator = Simulator(config)
    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = simulator.run(
            iter(records),
            max_instructions=instructions,
            warmup_instructions=warmup,
            label=label,
        )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)
    wall = simulator.perf.elapsed("simulate")
    return result, wall, simulator.perf


def run_bench(
    workloads: Sequence[str],
    config: SimConfig,
    machine: str = "psb",
    instructions: int = 50_000,
    warmup: Optional[int] = None,
    seed: int = 1,
    repeats: int = 3,
    profile_dir: Optional[str] = None,
) -> dict:
    """Benchmark ``workloads`` on ``config``; return a report dict.

    Each mode runs ``repeats`` times and reports its best wall time —
    simulations are deterministic, so repeat variance is pure scheduler
    and cache noise, and the minimum is the honest estimate of the
    code's cost.  Raises :class:`BenchmarkError` if any workload name
    is unknown or if the event-driven run disagrees with the
    cycle-stepped one (a fast path that changes the answer is a bug,
    not a speedup).  With ``profile_dir``, each run also dumps cProfile
    stats to ``<profile_dir>/<workload>-{stepped,event}.prof``.
    """
    known = set(workload_names())
    unknown = [name for name in workloads if name not in known]
    if unknown:
        raise BenchmarkError(
            f"unknown workload(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    if warmup is None:
        warmup = instructions // 3
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)

    def _profile_path(name: str, mode: str) -> Optional[str]:
        if profile_dir is None:
            return None
        return os.path.join(profile_dir, f"{name}-{mode}.prof")

    def _best_of(mode_config, records, name, mode):
        best_wall = None
        result = perf = None
        for __ in range(repeats):
            result, wall, perf = _timed_run(
                mode_config, records, instructions, warmup,
                f"{name}:{mode}", profile_path=_profile_path(name, mode),
            )
            if best_wall is None or wall < best_wall:
                best_wall = wall
        return result, best_wall, perf

    results: Dict[str, dict] = {}
    for name in workloads:
        # Workload generators are unbounded; take more records than we
        # retire so neither run is starved at the tail, and materialise
        # once (through the compiled-trace cache, the same path sweeps
        # use) so generation cost and generator state never differ
        # between the two runs.
        records = cached_workload_trace(name, seed=seed,
                                        instructions=instructions * 2)

        stepped, stepped_wall, _ = _best_of(
            config.with_event_driven(False), records, name, "stepped"
        )
        event, event_wall, event_perf = _best_of(
            config.with_event_driven(True), records, name, "event"
        )
        if (stepped.cycles, stepped.instructions, stepped.ipc) != (
            event.cycles, event.instructions, event.ipc
        ):
            raise BenchmarkError(
                f"event-driven run of {name!r} diverged from cycle-stepped: "
                f"cycles {event.cycles} vs {stepped.cycles}, "
                f"IPC {event.ipc:.6f} vs {stepped.ipc:.6f}"
            )
        results[name] = {
            "cycles": event.cycles,
            "instructions": event.instructions,
            "ipc": round(event.ipc, 6),
            "stepped": {
                "wall_s": round(stepped_wall, 4),
                "cycles_per_sec": round(
                    stepped.cycles / stepped_wall if stepped_wall > 0 else 0.0
                ),
            },
            "event": {
                "wall_s": round(event_wall, 4),
                "cycles_per_sec": round(
                    event.cycles / event_wall if event_wall > 0 else 0.0
                ),
                "records_per_sec": round(
                    event.instructions / event_wall if event_wall > 0 else 0.0
                ),
                "cycles_skipped": int(event_perf.get("core.cycles_skipped")),
            },
            "speedup": round(
                stepped_wall / event_wall if event_wall > 0 else 0.0, 2
            ),
        }

    return {
        "version": REPORT_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine,
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }


def run_sampling_bench(
    workloads: Sequence[str],
    config: SimConfig,
    machine: str = "psb",
    instructions: int = 1_000_000,
    seed: int = 1,
    sample: Sequence[int] = (50_000, 1_000, 500),
    tuned_strata: int = 4,
    tuned_warm_confidence: bool = True,
    paired_sample: Sequence[int] = (50_000, 4_000, 1_000),
    baseline_machine: str = "base",
    base_config: Optional[SimConfig] = None,
    ipc_error_bound: float = 0.10,
    paired_error_bound: float = 0.05,
    speedup_floor: float = 10.0,
    profile_dir: Optional[str] = None,
) -> dict:
    """Benchmark SMARTS-style sampling against detailed simulation.

    Four legs per workload, all over the same cached trace:

    - **detailed** on ``config`` — the reference; the baseline gate
      requires its ``cycles``/``ipc`` to stay *bit-identical* (the
      sampling subsystem must never perturb the detailed path);
    - **sampled** under the classic ``config.with_sampling(*sample)``
      shape with default knobs — pinned bit-identical so historical
      sampled numbers never drift, and timed for the effective-speedup
      floor; its absolute error is recorded but *not* bounded (window
      placement makes it workload-phase-sensitive by nature);
    - **tuned** under the same shape plus stratified placement
      (``tuned_strata``) and timing-aware predictor warm-up — the
      cold-start-corrected absolute estimate, gated at
      ``ipc_error_bound``;
    - **paired** — a matched-pair ``run_paired`` of
      ``baseline_machine`` vs ``machine`` over one shared
      ``paired_sample`` window grid, gated at ``paired_error_bound`` on
      the relative-IPC error against the detailed machine ratio (the
      Figure 5 speedup estimator; pairing cancels the fast-forward
      cold-start bias that the absolute legs can only damp).

    The bounds and floor are stamped into the report;
    :func:`check_sampling_baseline` enforces the *baseline's* stated
    values, so the checked-in bound is the contract.
    """
    from repro.sampling.paired import run_paired
    from repro.sim.presets import baseline_config as _baseline_preset

    known = set(workload_names())
    unknown = [name for name in workloads if name not in known]
    if unknown:
        raise BenchmarkError(
            f"unknown workload(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    period, window, warmup = (int(value) for value in sample)
    sampled_config = config.with_sampling(
        period=period, window=window, warmup=warmup
    )
    tuned_config = config.with_sampling(
        period=period, window=window, warmup=warmup,
        strata=tuned_strata, warm_confidence=tuned_warm_confidence,
    )
    p_period, p_window, p_warmup = (int(value) for value in paired_sample)
    if base_config is None:
        base_config = _baseline_preset()
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)

    def _profile_path(name: str, mode: str) -> Optional[str]:
        if profile_dir is None:
            return None
        return os.path.join(profile_dir, f"{name}-{mode}.prof")

    results: Dict[str, dict] = {}
    for name in workloads:
        records = cached_workload_trace(name, seed=seed,
                                        instructions=instructions)
        detailed, detailed_wall, _ = _timed_run(
            config, records, instructions, 0, f"{name}:detailed",
            profile_path=_profile_path(name, "detailed"),
        )
        base_detailed, base_wall, _ = _timed_run(
            base_config, records, instructions, 0, f"{name}:base-detailed",
            profile_path=_profile_path(name, "base-detailed"),
        )
        sampled, sampled_wall, _ = _timed_run(
            sampled_config, records, instructions, 0, f"{name}:sampled",
            profile_path=_profile_path(name, "sampled"),
        )
        tuned, tuned_wall, _ = _timed_run(
            tuned_config, records, instructions, 0, f"{name}:tuned",
            profile_path=_profile_path(name, "tuned"),
        )
        if detailed.ipc <= 0.0 or base_detailed.ipc <= 0.0:
            raise BenchmarkError(
                f"detailed run of {name!r} retired nothing (ipc 0); "
                "the sampling error is undefined"
            )
        paired_wall = time.perf_counter()
        paired = run_paired(
            {
                baseline_machine: base_config.with_sampling(
                    period=p_period, window=p_window, warmup=p_warmup
                ),
                machine: config.with_sampling(
                    period=p_period, window=p_window, warmup=p_warmup
                ),
            },
            records,
            max_instructions=instructions,
            baseline=baseline_machine,
        )
        paired_wall = time.perf_counter() - paired_wall
        stats = paired.pairs[machine]
        detailed_rel = detailed.ipc / base_detailed.ipc
        rel_err = abs(stats.rel_ipc - detailed_rel) / detailed_rel
        ipc_error = abs(sampled.ipc - detailed.ipc) / detailed.ipc
        tuned_error = abs(tuned.ipc - detailed.ipc) / detailed.ipc
        results[name] = {
            "detailed": {
                "ipc": round(detailed.ipc, 6),
                "cycles": detailed.cycles,
                "instructions": detailed.instructions,
                "wall_s": round(detailed_wall, 4),
            },
            "base_detailed": {
                "ipc": round(base_detailed.ipc, 6),
                "cycles": base_detailed.cycles,
                "wall_s": round(base_wall, 4),
            },
            "sampled": {
                "ipc": round(sampled.ipc, 6),
                "windows": int(sampled.extra.get("windows", 0)),
                "ipc_ci95": round(sampled.extra.get("ipc_ci95", 0.0), 6),
                "measured_instructions": int(
                    sampled.extra.get("measured_instructions", 0)
                ),
                "wall_s": round(sampled_wall, 4),
            },
            "tuned": {
                "ipc": round(tuned.ipc, 6),
                "windows": int(tuned.extra.get("windows", 0)),
                "ipc_ci95": round(tuned.extra.get("ipc_ci95", 0.0), 6),
                "ipc_error": round(tuned_error, 6),
                "wall_s": round(tuned_wall, 4),
            },
            "paired": {
                "rel_ipc": round(stats.rel_ipc, 6),
                "detailed_rel_ipc": round(detailed_rel, 6),
                "rel_err": round(rel_err, 6),
                "ratio_mean": round(stats.ratio_mean, 6),
                "ratio_ci95": round(stats.ratio_ci95, 6),
                "windows": stats.windows,
                "wall_s": round(paired_wall, 4),
            },
            "ipc_error": round(ipc_error, 6),
            "speedup": round(
                detailed_wall / sampled_wall if sampled_wall > 0 else 0.0, 2
            ),
        }

    return {
        "version": REPORT_VERSION,
        "suite": "sampling",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine,
        "instructions": instructions,
        "seed": seed,
        "sample": {"period": period, "window": window, "warmup": warmup},
        "tuned_sample": {
            "strata": tuned_strata,
            "warm_confidence": bool(tuned_warm_confidence),
        },
        "paired_sample": {
            "period": p_period, "window": p_window, "warmup": p_warmup,
        },
        "baseline_machine": baseline_machine,
        "ipc_error_bound": ipc_error_bound,
        "paired_error_bound": paired_error_bound,
        "speedup_floor": speedup_floor,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }


def check_sampling_baseline(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Gate a sampling-bench report against its checked-in baseline.

    Per-workload checks, all against the *baseline's* stated contract:

    - the detailed references (both machines) must be **bit-identical**
      (cycles, IPC) — the sampling subsystem must not perturb the
      detailed path;
    - the classic sampled estimate must also be bit-identical (sampling
      is deterministic) — its absolute error is *pinned*, not bounded:
      window placement makes it workload-phase-sensitive, which is
      exactly the bias the tuned and paired legs correct;
    - the tuned estimate (stratified placement + timing-aware warm-up)
      must be bit-identical and its relative IPC error must stay within
      the baseline's ``ipc_error_bound``;
    - the paired relative-IPC estimate must be bit-identical and its
      error against the detailed machine ratio must stay within the
      baseline's ``paired_error_bound``;
    - the effective speedup of the classic leg must reach the
      baseline's ``speedup_floor`` scaled by ``1 - tolerance``
      (wall-clock ratios survive machine differences; the slack covers
      load noise).

    Baselines written before the tuned/paired legs existed are still
    accepted: those sections are only gated when the baseline carries
    them.
    """
    if not 0.0 <= tolerance < 1.0:
        raise BenchmarkError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: List[str] = []
    if baseline.get("suite") != "sampling":
        failures.append(
            "baseline not comparable: it is not a sampling-suite report "
            "(re-generate with 'repro-sim bench --sampling')"
        )
        return failures
    comparability = ["machine", "instructions", "seed", "sample"]
    for key in ("tuned_sample", "paired_sample", "baseline_machine"):
        if key in baseline:
            comparability.append(key)
    for key in comparability:
        if baseline.get(key) != report.get(key):
            failures.append(
                f"baseline not comparable: {key} is {baseline.get(key)!r} "
                f"in the baseline but {report.get(key)!r} in this run"
            )
    if failures:
        return failures
    error_bound = float(baseline.get("ipc_error_bound", 0.0))
    paired_bound = float(baseline.get("paired_error_bound", 0.0))
    floor = float(baseline.get("speedup_floor", 0.0)) * (1.0 - tolerance)
    for name, entry in sorted(report.get("results", {}).items()):
        base_entry = baseline.get("results", {}).get(name)
        if base_entry is None:
            continue
        detailed = entry.get("detailed", {})
        base_detailed = base_entry.get("detailed", {})
        for field in ("cycles", "instructions", "ipc"):
            if detailed.get(field) != base_detailed.get(field):
                failures.append(
                    f"{name}: detailed mode is not bit-identical to the "
                    f"baseline ({field} {detailed.get(field)} vs "
                    f"{base_detailed.get(field)})"
                )
        if "base_detailed" in base_entry:
            ref = entry.get("base_detailed", {})
            base_ref = base_entry["base_detailed"]
            for field in ("cycles", "ipc"):
                if ref.get(field) != base_ref.get(field):
                    failures.append(
                        f"{name}: detailed baseline-machine run is not "
                        f"bit-identical to the baseline ({field} "
                        f"{ref.get(field)} vs {base_ref.get(field)})"
                    )
        sampled = entry.get("sampled", {})
        base_sampled = base_entry.get("sampled", {})
        for field in ("ipc", "windows"):
            if sampled.get(field) != base_sampled.get(field):
                failures.append(
                    f"{name}: sampled estimate is not bit-identical to "
                    f"the baseline ({field} {sampled.get(field)} vs "
                    f"{base_sampled.get(field)})"
                )
        if "tuned" in base_entry:
            tuned = entry.get("tuned", {})
            base_tuned = base_entry["tuned"]
            for field in ("ipc", "windows"):
                if tuned.get(field) != base_tuned.get(field):
                    failures.append(
                        f"{name}: tuned estimate is not bit-identical to "
                        f"the baseline ({field} {tuned.get(field)} vs "
                        f"{base_tuned.get(field)})"
                    )
            tuned_error = float(tuned.get("ipc_error", 1.0))
            if tuned_error > error_bound:
                failures.append(
                    f"{name}: tuned IPC error {tuned_error * 100:.2f}% "
                    f"exceeds the stated bound {error_bound * 100:.2f}%"
                )
        elif float(entry.get("ipc_error", 1.0)) > error_bound:
            # Legacy baselines gated the classic leg's absolute error.
            failures.append(
                f"{name}: sampled IPC error "
                f"{float(entry.get('ipc_error', 1.0)) * 100:.2f}% exceeds "
                f"the stated bound {error_bound * 100:.2f}%"
            )
        if "paired" in base_entry:
            paired = entry.get("paired", {})
            base_paired = base_entry["paired"]
            for field in ("rel_ipc", "windows"):
                if paired.get(field) != base_paired.get(field):
                    failures.append(
                        f"{name}: paired estimate is not bit-identical to "
                        f"the baseline ({field} {paired.get(field)} vs "
                        f"{base_paired.get(field)})"
                    )
            rel_err = float(paired.get("rel_err", 1.0))
            if rel_err > paired_bound:
                failures.append(
                    f"{name}: paired relative-IPC error "
                    f"{rel_err * 100:.2f}% exceeds the stated bound "
                    f"{paired_bound * 100:.2f}%"
                )
        speedup = float(entry.get("speedup", 0.0))
        if speedup < floor:
            failures.append(
                f"{name}: effective speedup {speedup:.2f}x is below the "
                f"stated floor {baseline.get('speedup_floor')}x "
                f"(tolerance {tolerance * 100:.0f}% -> gate {floor:.2f}x)"
            )
    return failures


def format_sampling_report(report: dict) -> str:
    """A compact human-readable table of a sampling-bench report."""
    sample = report.get("sample", {})
    lines = [
        f"bench --sampling: machine={report['machine']} "
        f"instructions={report['instructions']} seed={report['seed']} "
        f"period={sample.get('period')} window={sample.get('window')} "
        f"warmup={sample.get('warmup')} rev={report['git_rev']}",
        f"{'workload':<12} {'det IPC':>9} {'samp IPC':>9} {'err':>7} "
        f"{'tuned err':>9} {'pair err':>8} {'speedup':>8} {'windows':>8}",
    ]
    for name, entry in sorted(report["results"].items()):
        tuned = entry.get("tuned")
        paired = entry.get("paired")
        tuned_col = (
            f"{tuned['ipc_error'] * 100:>8.2f}%" if tuned else f"{'-':>9}"
        )
        paired_col = (
            f"{paired['rel_err'] * 100:>7.2f}%" if paired else f"{'-':>8}"
        )
        lines.append(
            f"{name:<12} "
            f"{entry['detailed']['ipc']:>9.4f} "
            f"{entry['sampled']['ipc']:>9.4f} "
            f"{entry['ipc_error'] * 100:>6.2f}% "
            f"{tuned_col} "
            f"{paired_col} "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['sampled']['windows']:>8}"
        )
    lines.append(
        f"stated contract: tuned |IPC error| <= "
        f"{report['ipc_error_bound'] * 100:.1f}%"
        + (
            f", paired |rel-IPC error| <= "
            f"{report['paired_error_bound'] * 100:.1f}%"
            if "paired_error_bound" in report
            else ""
        )
        + f", speedup >= {report['speedup_floor']}x"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    """Write a bench report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> dict:
    """Load and validate a baseline report written by :func:`write_report`."""
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except OSError as error:
        raise BenchmarkError(f"cannot read baseline {path!r}: {error}")
    except ValueError as error:
        raise BenchmarkError(f"baseline {path!r} is not valid JSON: {error}")
    if not isinstance(baseline, dict) or "results" not in baseline:
        raise BenchmarkError(f"baseline {path!r} has no 'results' section")
    if baseline.get("version") != REPORT_VERSION:
        raise BenchmarkError(
            f"baseline {path!r} has version {baseline.get('version')!r}, "
            f"expected {REPORT_VERSION} (re-generate with 'repro-sim bench')"
        )
    return baseline


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Compare a fresh report against a baseline; return failure messages.

    A workload regresses when its event-vs-stepped speedup drops more
    than ``tolerance`` below the baseline's — a load-independent signal
    (both modes share whatever machine the check runs on).  Workloads
    present in only one of the two reports are ignored (the suite may
    grow), as are baseline entries without a positive speedup.
    """
    if not 0.0 <= tolerance < 1.0:
        raise BenchmarkError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: List[str] = []
    # Throughput only compares like-for-like: a baseline recorded at a
    # different run shape would make the gate silently meaningless.
    for key in ("machine", "instructions", "warmup", "seed"):
        if key in baseline and baseline[key] != report.get(key):
            failures.append(
                f"baseline not comparable: {key} is {baseline[key]!r} "
                f"in the baseline but {report.get(key)!r} in this run"
            )
    if failures:
        return failures
    for name, entry in sorted(report.get("results", {}).items()):
        base_entry = baseline.get("results", {}).get(name)
        if base_entry is None:
            continue
        base_speedup = base_entry.get("speedup", 0.0)
        if base_speedup <= 0.0:
            continue
        speedup = entry.get("speedup", 0.0)
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is "
                f"{(1.0 - speedup / base_speedup) * 100:.0f}% below baseline "
                f"{base_speedup:.2f}x (tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def format_report(report: dict) -> str:
    """A compact human-readable table of a bench report."""
    lines = [
        f"bench: machine={report['machine']} "
        f"instructions={report['instructions']} seed={report['seed']} "
        f"rev={report['git_rev']}",
        f"{'workload':<12} {'stepped':>9} {'event':>9} {'speedup':>8} "
        f"{'Mcyc/s':>8} {'skipped':>10}",
    ]
    for name, entry in sorted(report["results"].items()):
        lines.append(
            f"{name:<12} "
            f"{entry['stepped']['wall_s']:>8.2f}s "
            f"{entry['event']['wall_s']:>8.2f}s "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['event']['cycles_per_sec'] / 1e6:>8.2f} "
            f"{entry['event']['cycles_skipped']:>10}"
        )
    return "\n".join(lines)
