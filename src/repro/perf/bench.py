"""The pinned benchmark micro-suite behind ``repro-sim bench``.

Each benchmarked workload is generated once, materialised into a list
(so trace generation is excluded from the timings and both runs see
the exact same records), then simulated twice on the same machine
config: once cycle-stepped (``event_driven=False``) and once through
the event-driven fast path.  Both runs must produce identical
architectural results — the bench refuses to report a speedup for a
run that changed the answer.

Reports are plain JSON (see :func:`write_report`); the checked-in
baseline lives at ``benchmarks/BENCH_core.json`` and
:func:`check_against_baseline` gates CI on it: the regression signal
is the stepped/event *speedup ratio*, not absolute wall time — both
modes run back-to-back under the same machine load, so their ratio
survives runner-class and background-load differences that make
absolute-throughput gates flaky.  Absolute rates are still recorded in
every report for human eyes.

A second suite, :func:`run_sampling_bench` (``repro-sim bench
--sampling``, baseline ``benchmarks/BENCH_sampling.json``), runs each
workload detailed and under SMARTS-style sampling and gates on three
things: the detailed reference staying bit-identical, the sampled IPC
error staying inside the baseline's stated bound, and the effective
speedup clearing the stated floor.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.errors import ReproError
from repro.workloads import cached_workload_trace, workload_names

#: Schema version of the report / baseline JSON.
REPORT_VERSION = 1


class BenchmarkError(ReproError):
    """A benchmark run or baseline comparison failed."""

    retryable = False


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _timed_run(
    config: SimConfig,
    records: list,
    instructions: int,
    warmup: int,
    label: str,
    profile_path: Optional[str] = None,
):
    """One simulation plus its wall time and perf counters.

    With ``profile_path``, the run executes under :mod:`cProfile` and
    the stats dump lands there (readable via ``pstats`` or snakeviz).
    Profiled wall times are inflated by instrumentation — compare them
    only against other profiled runs.
    """
    from repro.sim.simulator import Simulator

    simulator = Simulator(config)
    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = simulator.run(
            iter(records),
            max_instructions=instructions,
            warmup_instructions=warmup,
            label=label,
        )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)
    wall = simulator.perf.elapsed("simulate")
    return result, wall, simulator.perf


def run_bench(
    workloads: Sequence[str],
    config: SimConfig,
    machine: str = "psb",
    instructions: int = 50_000,
    warmup: Optional[int] = None,
    seed: int = 1,
    repeats: int = 3,
    profile_dir: Optional[str] = None,
) -> dict:
    """Benchmark ``workloads`` on ``config``; return a report dict.

    Each mode runs ``repeats`` times and reports its best wall time —
    simulations are deterministic, so repeat variance is pure scheduler
    and cache noise, and the minimum is the honest estimate of the
    code's cost.  Raises :class:`BenchmarkError` if any workload name
    is unknown or if the event-driven run disagrees with the
    cycle-stepped one (a fast path that changes the answer is a bug,
    not a speedup).  With ``profile_dir``, each run also dumps cProfile
    stats to ``<profile_dir>/<workload>-{stepped,event}.prof``.
    """
    known = set(workload_names())
    unknown = [name for name in workloads if name not in known]
    if unknown:
        raise BenchmarkError(
            f"unknown workload(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    if warmup is None:
        warmup = instructions // 3
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)

    def _profile_path(name: str, mode: str) -> Optional[str]:
        if profile_dir is None:
            return None
        return os.path.join(profile_dir, f"{name}-{mode}.prof")

    def _best_of(mode_config, records, name, mode):
        best_wall = None
        result = perf = None
        for __ in range(repeats):
            result, wall, perf = _timed_run(
                mode_config, records, instructions, warmup,
                f"{name}:{mode}", profile_path=_profile_path(name, mode),
            )
            if best_wall is None or wall < best_wall:
                best_wall = wall
        return result, best_wall, perf

    results: Dict[str, dict] = {}
    for name in workloads:
        # Workload generators are unbounded; take more records than we
        # retire so neither run is starved at the tail, and materialise
        # once (through the compiled-trace cache, the same path sweeps
        # use) so generation cost and generator state never differ
        # between the two runs.
        records = cached_workload_trace(name, seed=seed,
                                        instructions=instructions * 2)

        stepped, stepped_wall, _ = _best_of(
            config.with_event_driven(False), records, name, "stepped"
        )
        event, event_wall, event_perf = _best_of(
            config.with_event_driven(True), records, name, "event"
        )
        if (stepped.cycles, stepped.instructions, stepped.ipc) != (
            event.cycles, event.instructions, event.ipc
        ):
            raise BenchmarkError(
                f"event-driven run of {name!r} diverged from cycle-stepped: "
                f"cycles {event.cycles} vs {stepped.cycles}, "
                f"IPC {event.ipc:.6f} vs {stepped.ipc:.6f}"
            )
        results[name] = {
            "cycles": event.cycles,
            "instructions": event.instructions,
            "ipc": round(event.ipc, 6),
            "stepped": {
                "wall_s": round(stepped_wall, 4),
                "cycles_per_sec": round(
                    stepped.cycles / stepped_wall if stepped_wall > 0 else 0.0
                ),
            },
            "event": {
                "wall_s": round(event_wall, 4),
                "cycles_per_sec": round(
                    event.cycles / event_wall if event_wall > 0 else 0.0
                ),
                "records_per_sec": round(
                    event.instructions / event_wall if event_wall > 0 else 0.0
                ),
                "cycles_skipped": int(event_perf.get("core.cycles_skipped")),
            },
            "speedup": round(
                stepped_wall / event_wall if event_wall > 0 else 0.0, 2
            ),
        }

    return {
        "version": REPORT_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine,
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }


def run_sampling_bench(
    workloads: Sequence[str],
    config: SimConfig,
    machine: str = "psb",
    instructions: int = 1_000_000,
    seed: int = 1,
    sample: Sequence[int] = (50_000, 1_000, 500),
    ipc_error_bound: float = 0.20,
    speedup_floor: float = 10.0,
    profile_dir: Optional[str] = None,
) -> dict:
    """Benchmark SMARTS-style sampling against detailed simulation.

    For each workload the same cached trace runs twice on ``config``:
    once detailed (the reference) and once under
    ``config.with_sampling(*sample)``.  The report records, per
    workload, the detailed result (whose ``cycles``/``ipc`` the baseline
    gate later requires to be *bit-identical* — the sampling subsystem
    must never perturb the detailed path), the sampled estimate with its
    confidence interval, the relative IPC error, and the effective
    speedup.  ``ipc_error_bound`` and ``speedup_floor`` are stamped into
    the report; :func:`check_sampling_baseline` enforces the *baseline's*
    stated values, so the checked-in bound is the contract.
    """
    known = set(workload_names())
    unknown = [name for name in workloads if name not in known]
    if unknown:
        raise BenchmarkError(
            f"unknown workload(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    period, window, warmup = (int(value) for value in sample)
    sampled_config = config.with_sampling(
        period=period, window=window, warmup=warmup
    )
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)

    def _profile_path(name: str, mode: str) -> Optional[str]:
        if profile_dir is None:
            return None
        return os.path.join(profile_dir, f"{name}-{mode}.prof")

    results: Dict[str, dict] = {}
    for name in workloads:
        records = cached_workload_trace(name, seed=seed,
                                        instructions=instructions)
        detailed, detailed_wall, _ = _timed_run(
            config, records, instructions, 0, f"{name}:detailed",
            profile_path=_profile_path(name, "detailed"),
        )
        sampled, sampled_wall, _ = _timed_run(
            sampled_config, records, instructions, 0, f"{name}:sampled",
            profile_path=_profile_path(name, "sampled"),
        )
        if detailed.ipc <= 0.0:
            raise BenchmarkError(
                f"detailed run of {name!r} retired nothing (ipc 0); "
                "the sampling error is undefined"
            )
        ipc_error = abs(sampled.ipc - detailed.ipc) / detailed.ipc
        results[name] = {
            "detailed": {
                "ipc": round(detailed.ipc, 6),
                "cycles": detailed.cycles,
                "instructions": detailed.instructions,
                "wall_s": round(detailed_wall, 4),
            },
            "sampled": {
                "ipc": round(sampled.ipc, 6),
                "windows": int(sampled.extra.get("windows", 0)),
                "ipc_ci95": round(sampled.extra.get("ipc_ci95", 0.0), 6),
                "measured_instructions": int(
                    sampled.extra.get("measured_instructions", 0)
                ),
                "wall_s": round(sampled_wall, 4),
            },
            "ipc_error": round(ipc_error, 6),
            "speedup": round(
                detailed_wall / sampled_wall if sampled_wall > 0 else 0.0, 2
            ),
        }

    return {
        "version": REPORT_VERSION,
        "suite": "sampling",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine,
        "instructions": instructions,
        "seed": seed,
        "sample": {"period": period, "window": window, "warmup": warmup},
        "ipc_error_bound": ipc_error_bound,
        "speedup_floor": speedup_floor,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }


def check_sampling_baseline(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Gate a sampling-bench report against its checked-in baseline.

    Three checks per workload, all against the *baseline's* stated
    contract:

    - the detailed reference must be **bit-identical** (cycles,
      instructions, IPC) — the sampling subsystem must not perturb the
      detailed path;
    - the sampled estimate must also be bit-identical (sampling is
      deterministic), and its relative IPC error must stay within the
      baseline's ``ipc_error_bound``;
    - the effective speedup must reach the baseline's ``speedup_floor``
      scaled by ``1 - tolerance`` (wall-clock ratios survive machine
      differences; the slack covers load noise).
    """
    if not 0.0 <= tolerance < 1.0:
        raise BenchmarkError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: List[str] = []
    if baseline.get("suite") != "sampling":
        failures.append(
            "baseline not comparable: it is not a sampling-suite report "
            "(re-generate with 'repro-sim bench --sampling')"
        )
        return failures
    for key in ("machine", "instructions", "seed", "sample"):
        if baseline.get(key) != report.get(key):
            failures.append(
                f"baseline not comparable: {key} is {baseline.get(key)!r} "
                f"in the baseline but {report.get(key)!r} in this run"
            )
    if failures:
        return failures
    error_bound = float(baseline.get("ipc_error_bound", 0.0))
    floor = float(baseline.get("speedup_floor", 0.0)) * (1.0 - tolerance)
    for name, entry in sorted(report.get("results", {}).items()):
        base_entry = baseline.get("results", {}).get(name)
        if base_entry is None:
            continue
        detailed = entry.get("detailed", {})
        base_detailed = base_entry.get("detailed", {})
        for field in ("cycles", "instructions", "ipc"):
            if detailed.get(field) != base_detailed.get(field):
                failures.append(
                    f"{name}: detailed mode is not bit-identical to the "
                    f"baseline ({field} {detailed.get(field)} vs "
                    f"{base_detailed.get(field)})"
                )
        sampled = entry.get("sampled", {})
        base_sampled = base_entry.get("sampled", {})
        for field in ("ipc", "windows"):
            if sampled.get(field) != base_sampled.get(field):
                failures.append(
                    f"{name}: sampled estimate is not bit-identical to "
                    f"the baseline ({field} {sampled.get(field)} vs "
                    f"{base_sampled.get(field)})"
                )
        ipc_error = float(entry.get("ipc_error", 1.0))
        if ipc_error > error_bound:
            failures.append(
                f"{name}: sampled IPC error {ipc_error * 100:.2f}% "
                f"exceeds the stated bound {error_bound * 100:.2f}%"
            )
        speedup = float(entry.get("speedup", 0.0))
        if speedup < floor:
            failures.append(
                f"{name}: effective speedup {speedup:.2f}x is below the "
                f"stated floor {baseline.get('speedup_floor')}x "
                f"(tolerance {tolerance * 100:.0f}% -> gate {floor:.2f}x)"
            )
    return failures


def format_sampling_report(report: dict) -> str:
    """A compact human-readable table of a sampling-bench report."""
    sample = report.get("sample", {})
    lines = [
        f"bench --sampling: machine={report['machine']} "
        f"instructions={report['instructions']} seed={report['seed']} "
        f"period={sample.get('period')} window={sample.get('window')} "
        f"warmup={sample.get('warmup')} rev={report['git_rev']}",
        f"{'workload':<12} {'det IPC':>9} {'samp IPC':>9} {'err':>7} "
        f"{'speedup':>8} {'windows':>8} {'ci95':>8}",
    ]
    for name, entry in sorted(report["results"].items()):
        lines.append(
            f"{name:<12} "
            f"{entry['detailed']['ipc']:>9.4f} "
            f"{entry['sampled']['ipc']:>9.4f} "
            f"{entry['ipc_error'] * 100:>6.2f}% "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['sampled']['windows']:>8} "
            f"{entry['sampled']['ipc_ci95']:>8.4f}"
        )
    lines.append(
        f"stated contract: |IPC error| <= "
        f"{report['ipc_error_bound'] * 100:.1f}%, speedup >= "
        f"{report['speedup_floor']}x"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    """Write a bench report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> dict:
    """Load and validate a baseline report written by :func:`write_report`."""
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except OSError as error:
        raise BenchmarkError(f"cannot read baseline {path!r}: {error}")
    except ValueError as error:
        raise BenchmarkError(f"baseline {path!r} is not valid JSON: {error}")
    if not isinstance(baseline, dict) or "results" not in baseline:
        raise BenchmarkError(f"baseline {path!r} has no 'results' section")
    if baseline.get("version") != REPORT_VERSION:
        raise BenchmarkError(
            f"baseline {path!r} has version {baseline.get('version')!r}, "
            f"expected {REPORT_VERSION} (re-generate with 'repro-sim bench')"
        )
    return baseline


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Compare a fresh report against a baseline; return failure messages.

    A workload regresses when its event-vs-stepped speedup drops more
    than ``tolerance`` below the baseline's — a load-independent signal
    (both modes share whatever machine the check runs on).  Workloads
    present in only one of the two reports are ignored (the suite may
    grow), as are baseline entries without a positive speedup.
    """
    if not 0.0 <= tolerance < 1.0:
        raise BenchmarkError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: List[str] = []
    # Throughput only compares like-for-like: a baseline recorded at a
    # different run shape would make the gate silently meaningless.
    for key in ("machine", "instructions", "warmup", "seed"):
        if key in baseline and baseline[key] != report.get(key):
            failures.append(
                f"baseline not comparable: {key} is {baseline[key]!r} "
                f"in the baseline but {report.get(key)!r} in this run"
            )
    if failures:
        return failures
    for name, entry in sorted(report.get("results", {}).items()):
        base_entry = baseline.get("results", {}).get(name)
        if base_entry is None:
            continue
        base_speedup = base_entry.get("speedup", 0.0)
        if base_speedup <= 0.0:
            continue
        speedup = entry.get("speedup", 0.0)
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is "
                f"{(1.0 - speedup / base_speedup) * 100:.0f}% below baseline "
                f"{base_speedup:.2f}x (tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def format_report(report: dict) -> str:
    """A compact human-readable table of a bench report."""
    lines = [
        f"bench: machine={report['machine']} "
        f"instructions={report['instructions']} seed={report['seed']} "
        f"rev={report['git_rev']}",
        f"{'workload':<12} {'stepped':>9} {'event':>9} {'speedup':>8} "
        f"{'Mcyc/s':>8} {'skipped':>10}",
    ]
    for name, entry in sorted(report["results"].items()):
        lines.append(
            f"{name:<12} "
            f"{entry['stepped']['wall_s']:>8.2f}s "
            f"{entry['event']['wall_s']:>8.2f}s "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['event']['cycles_per_sec'] / 1e6:>8.2f} "
            f"{entry['event']['cycles_skipped']:>10}"
        )
    return "\n".join(lines)
