"""repro: a reproduction of "Predictor-Directed Stream Buffers".

Sherwood, Sair, Calder — MICRO-33, December 2000.

The package implements, from scratch, everything the paper's evaluation
needs: an out-of-order core timing model, a bandwidth-accurate memory
hierarchy, address predictors (two-delta stride, differential Markov,
and their Stride-Filtered Markov hybrid), stream-buffer prefetchers
(Jouppi sequential, Farkas PC-stride, and the paper's Predictor-Directed
Stream Buffers with confidence allocation and priority scheduling), and
six synthetic workloads that stand in for the paper's benchmarks.

Quickstart::

    from repro import simulate, baseline_config, psb_config, get_workload

    base = simulate(baseline_config(), get_workload("health"),
                    max_instructions=40_000, warmup_instructions=10_000)
    psb = simulate(psb_config(), get_workload("health"),
                   max_instructions=40_000, warmup_instructions=10_000)
    print(f"speedup: {psb.speedup_over(base):.1f}%")
"""

from repro.errors import (
    ConfigError,
    ReproError,
    RunTimeoutError,
    SimulationError,
    TraceFormatError,
)
from repro.config import (
    AllocationPolicy,
    BusConfig,
    CacheConfig,
    CoreConfig,
    DisambiguationPolicy,
    MarkovPredictorConfig,
    MemoryConfig,
    PrefetchConfig,
    PrefetcherKind,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
    StridePredictorConfig,
    TlbConfig,
)
from repro.sim import (
    SimulationResult,
    Simulator,
    baseline_config,
    paper_configs,
    psb_config,
    simulate,
    stride_config,
)
from repro.trace import InstrKind, TraceRecord
from repro.workloads import get_workload, get_workload_generator, workload_names

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceFormatError",
    "SimulationError",
    "RunTimeoutError",
    "AllocationPolicy",
    "BusConfig",
    "CacheConfig",
    "CoreConfig",
    "DisambiguationPolicy",
    "MarkovPredictorConfig",
    "MemoryConfig",
    "PrefetchConfig",
    "PrefetcherKind",
    "SchedulingPolicy",
    "SimConfig",
    "StreamBufferConfig",
    "StridePredictorConfig",
    "TlbConfig",
    "SimulationResult",
    "Simulator",
    "baseline_config",
    "paper_configs",
    "psb_config",
    "simulate",
    "stride_config",
    "InstrKind",
    "TraceRecord",
    "get_workload",
    "get_workload_generator",
    "workload_names",
    "__version__",
]
