"""Command-line interface: run paper machines from the shell.

Usage (also available as ``python -m repro``)::

    repro-sim workloads
    repro-sim run health --machine psb --instructions 50000
    repro-sim run health --invariants full
    repro-sim run health --instructions 1000000 --sample 50000:1000:500
    repro-sim run health --metrics --trace-events ev.jsonl
    repro-sim report --events ev.jsonl --out report.html
    repro-sim compare health --instructions 50000
    repro-sim trace burg --out burg.trace --instructions 20000
    repro-sim check health --machine psb --instructions 20000
    repro-sim sweep health --campaign-dir camp --timeout 120 --retries 1 \
        --snapshot-every 50000
    repro-sim audit camp

Exit status: 0 on success, 1 on any :class:`~repro.errors.ReproError`
(printed as a one-line message, never a traceback), 130 on Ctrl-C.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.report import ascii_table
from repro.config import BufferSharing, InvariantLevel, SimConfig
from repro.errors import ConfigError, ReproError
from repro.sim import baseline_config, paper_configs, simulate
from repro.sim.presets import (
    demand_markov_config,
    min_delta_config,
    next_line_config,
    sequential_config,
    sharing_configs,
)
from repro.trace.io import save_trace
from repro.workloads import WORKLOADS, get_workload, workload_names

#: Machine names accepted by --machine.
MACHINES: Dict[str, Callable[[], SimConfig]] = {
    "base": baseline_config,
    "stride": lambda: paper_configs()["Stride"],
    "2miss-rr": lambda: paper_configs()["2Miss-RR"],
    "2miss-priority": lambda: paper_configs()["2Miss-Priority"],
    "confalloc-rr": lambda: paper_configs()["ConfAlloc-RR"],
    "psb": lambda: paper_configs()["ConfAlloc-Priority"],
    # PSB with the stream-buffer entries shared as one online-allocated
    # pool instead of the paper's fixed 8 x 4 partition (see
    # docs/buffer_sharing.md); equivalently `--buffer-sharing` on run.
    "psb-harmonic": lambda: sharing_configs()["harmonic"],
    "psb-credence": lambda: sharing_configs()["credence"],
    "jouppi": sequential_config,
    "min-delta": min_delta_config,
    "next-line": next_line_config,
    "demand-markov": demand_markov_config,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Predictor-Directed Stream Buffers' "
            "(MICRO-33, 2000)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the benchmark stand-ins")

    run = commands.add_parser("run", help="simulate one machine")
    _add_run_arguments(run, optional_workload=True)
    run.add_argument(
        "--machine", choices=sorted(MACHINES), default="psb",
        help="which machine to simulate (default: psb)",
    )
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="simulate a saved trace file instead of a workload",
    )
    run.add_argument(
        "--lax", action="store_true",
        help="with --trace: skip malformed records instead of failing "
             "(the skipped count is reported in the summary)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="sample per-component metrics over time and write them as "
             "JSON (see --metrics-out); 'repro-sim report' renders them",
    )
    run.add_argument(
        "--metrics-interval", type=int, default=1000, metavar="CYCLES",
        help="cycles between metric samples (default: 1000)",
    )
    run.add_argument(
        "--metrics-out", default="metrics.json", metavar="PATH",
        help="where --metrics writes its payload (default: metrics.json)",
    )
    run.add_argument(
        "--trace-events", default=None, metavar="PATH",
        help="record structured events (allocations, prefetch lifecycle, "
             "priority changes, demand misses) to PATH as JSON Lines",
    )
    run.add_argument(
        "--trace-capacity", type=int, default=None, metavar="N",
        help="event ring-buffer size; oldest events drop beyond it "
             "(default: 65536)",
    )
    run.add_argument(
        "--trace-filter", default=None, metavar="CATS",
        help="comma-separated event categories to keep "
             "(alloc,prefetch,priority,demand,integrity,pool; "
             "default: all)",
    )
    _add_sample_argument(run)
    _add_sharing_arguments(run)

    compare = commands.add_parser(
        "compare", help="run all six Figure 5 machines on one workload"
    )
    _add_run_arguments(compare)
    _add_sample_argument(compare)
    compare.add_argument(
        "--paired-out", default=None, metavar="PATH",
        help="with --sample: write the matched-pair comparison "
             "(PairedResult manifest) as JSON to PATH; 'repro-sim "
             "report' renders it as a Paired sampling panel",
    )

    trace = commands.add_parser(
        "trace",
        help="save a workload trace file, or compile one to binary",
        description=(
            "'trace WORKLOAD --out X' saves a text trace; "
            "'trace compile SOURCE --out X' lowers a text trace file or "
            "a workload name into the packed binary format (loads ~4x "
            "faster, auto-detected by every trace reader)."
        ),
    )
    trace.add_argument(
        "workload", metavar="workload|compile",
        help="a workload name, or 'compile'",
    )
    trace.add_argument(
        "source", nargs="?", default=None,
        help="for compile: the input text trace path or workload name",
    )
    trace.add_argument("--out", required=True, help="output path")
    trace.add_argument("--instructions", type=int, default=None,
                       help="records to write (default: 20000 for "
                            "workloads, all for trace files)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument(
        "--binary", action="store_true",
        help="write the binary format directly (same as compiling)",
    )

    bench = commands.add_parser(
        "bench",
        help="run the perf micro-suite; write BENCH_core.json",
        description=(
            "Benchmark the event-driven fast path against the "
            "cycle-stepped loop over a pinned workload suite.  Writes a "
            "JSON report and, with --check, fails when event-mode "
            "throughput regresses against a checked-in baseline."
        ),
    )
    bench.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names (default: all six)",
    )
    bench.add_argument(
        "--machine", choices=sorted(MACHINES), default="base",
        help="machine config to benchmark (default: base)",
    )
    bench.add_argument("--instructions", type=int, default=50_000)
    bench.add_argument("--warmup", type=int, default=None,
                       help="default: instructions // 3")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="runs per mode; best wall time wins (default: 3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small instruction budget and pointer workloads only "
             "(CI smoke)",
    )
    bench.add_argument(
        "--out", default="BENCH_core.json",
        help="report path (default: BENCH_core.json)",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional throughput drop vs baseline "
             "(default: 0.25)",
    )
    bench.add_argument(
        "--profile", default=None, metavar="DIR",
        help="dump per-run cProfile stats into DIR",
    )
    bench.add_argument(
        "--sampling", action="store_true",
        help="run the sampling suite instead: each workload detailed vs "
             "SMARTS-sampled (classic, tuned, and matched-pair legs), "
             "gating on detailed bit-identity, tuned IPC error, paired "
             "relative-IPC error, and effective speedup (defaults: "
             "machine psb, 1000000 instructions, out BENCH_sampling.json)",
    )
    _add_sample_argument(bench)
    bench.add_argument(
        "--error-bound", type=float, default=0.10, metavar="FRACTION",
        help="with --sampling: stated |IPC error| bound for the tuned "
             "(stratified + warm-confidence) leg stamped into the report "
             "(default: 0.10)",
    )
    bench.add_argument(
        "--paired-bound", type=float, default=0.05, metavar="FRACTION",
        help="with --sampling: stated |relative-IPC error| bound for the "
             "matched-pair leg stamped into the report (default: 0.05)",
    )
    bench.add_argument(
        "--speedup-floor", type=float, default=10.0, metavar="X",
        help="with --sampling: stated effective-speedup floor stamped "
             "into the report (default: 10.0)",
    )

    report = commands.add_parser(
        "report",
        help="render a run, sweep, or comparison into markdown/HTML",
        description=(
            "Three modes: with no positional, render the metrics payload "
            "of a previous 'run --metrics' (plus its --trace-events file "
            "if given) into a single-run report; with --campaign DIR, "
            "summarize a sweep campaign from its manifest; with a "
            "workload name, simulate the Figure 5 machines and write the "
            "legacy comparison report.  An --out ending in .html renders "
            "a self-contained HTML page instead of markdown."
        ),
    )
    _add_run_arguments(report, optional_workload=True)
    report.add_argument(
        "--out", default="report.md",
        help="output path; .html renders HTML (default: report.md)",
    )
    report.add_argument(
        "--metrics", default="metrics.json", metavar="PATH",
        help="metrics payload from 'run --metrics' "
             "(default: metrics.json)",
    )
    report.add_argument(
        "--events", default=None, metavar="PATH",
        help="JSONL event file from 'run --trace-events' to summarize",
    )
    report.add_argument(
        "--campaign", default=None, metavar="DIR",
        help="render a sweep campaign directory instead of a single run",
    )

    sweep = commands.add_parser(
        "sweep",
        help="run a resilient multi-machine campaign on one workload",
        description=(
            "Run several machines over one workload through the campaign "
            "runner: each point is process-isolated, timed out, retried "
            "with backoff, and checkpointed so an interrupted campaign "
            "resumes where it left off."
        ),
    )
    _add_run_arguments(sweep)
    sweep.add_argument(
        "--machines", default="all",
        help="comma-separated machine names, or 'all' (default)",
    )
    sweep.add_argument(
        "--campaign-dir", default=None,
        help="directory for checkpoint.jsonl and manifest.json "
             "(omit to run without checkpointing)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="points to run in parallel across persistent worker "
             "processes (default: 1, the serial schedule; requires "
             "process isolation)",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="print a progress line to stderr after every point "
             "(done/failed/in-flight tallies and an ETA)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock seconds per attempt (default: unlimited)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0,
        help="retries per point for retryable failures (default: 0)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip points already recorded in the campaign checkpoint",
    )
    sweep.add_argument(
        "--on-error", choices=("skip", "fail"), default="skip",
        help="skip-and-record failed points (default) or fail fast",
    )
    sweep.add_argument(
        "--no-isolate", action="store_true",
        help="run points in-process instead of per-run subprocesses "
             "(faster, but a crash aborts the campaign and --timeout "
             "is unavailable)",
    )
    sweep.add_argument(
        "--snapshot-every", type=int, default=None, metavar="CYCLES",
        help="snapshot each run every CYCLES cycles so a timed-out "
             "attempt resumes mid-run instead of restarting "
             "(requires --campaign-dir)",
    )
    sweep.add_argument(
        "--golden", action="store_true",
        help="diff every completed point against the golden functional "
             "model (requires --warmup 0)",
    )
    _add_sample_argument(sweep)
    sweep.add_argument(
        "--sample-paired", action="store_true",
        help="with --sample: run the machines as a matched-pair "
             "comparison over one shared window grid (cancels the "
             "fast-forward cold-start bias in relative IPC; the first "
             "machine — or 'base' if selected — is the baseline leg); "
             "runs inline, writes paired.json into --campaign-dir",
    )
    _add_sharing_arguments(sweep)
    sweep.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="inject a deterministic, seeded schedule of environment "
             "faults (failing checkpoint appends, worker kills, cache "
             "corruption) for durability testing; requires --workers 2+",
    )
    sweep.add_argument(
        "--chaos-poison", type=int, default=0, metavar="N",
        help="with --chaos-seed: how many points have their worker "
             "killed on every launch until poisoned (default: 0)",
    )
    sweep.add_argument(
        "--max-worker-kills", type=int, default=3, metavar="N",
        help="worker deaths a point survives before it is marked "
             "poisoned and the campaign moves on (default: 3)",
    )

    audit = commands.add_parser(
        "audit",
        help="verify a campaign or service directory is consistent",
        description=(
            "Offline consistency audit of a campaign directory: "
            "checkpoint line CRCs, run_id/fingerprint coherence, result "
            "round-trips, manifest-vs-checkpoint agreement, and leftover "
            "snapshots/temp files.  A directory holding a jobs.jsonl is "
            "audited as a campaign-service directory instead: job store "
            "vs leases vs per-job manifests.  Exit status 1 when any "
            "error-level issue is found (the artifacts disagree with "
            "each other); warnings report damage the runner already "
            "recovered from."
        ),
    )
    audit.add_argument(
        "campaign_dir", metavar="CAMPAIGN_DIR",
        help="campaign directory (checkpoint.jsonl + manifest.json) "
             "or service directory (jobs.jsonl)",
    )
    audit.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures too",
    )

    serve = commands.add_parser(
        "serve",
        help="run the crash-safe campaign service",
        description=(
            "Start the long-lived campaign server: a stdlib HTTP API "
            "over a durable job queue.  Submitted sweeps execute through "
            "the campaign runner under lease-based ownership; SIGTERM "
            "drains gracefully (in-flight jobs checkpoint and re-queue) "
            "and a restart resumes exactly where the previous server "
            "stopped."
        ),
    )
    serve.add_argument(
        "service_dir", metavar="SERVICE_DIR",
        help="directory for jobs.jsonl, leases/, and per-job run dirs",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port; 0 picks a free one (default: 8765)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="jobs to execute concurrently (default: 1)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease time-to-live; a worker silent this long loses its "
             "job to the reaper (default: 30)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=16, metavar="N",
        help="admission queue bound; submissions beyond it get HTTP "
             "429 + Retry-After (default: 16)",
    )
    serve.add_argument(
        "--max-expiries", type=int, default=3, metavar="N",
        help="lease expiries a job survives before it is poisoned "
             "(default: 3)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.1, metavar="SECONDS",
        help="scheduler claim/reap cadence (default: 0.1)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="inject a deterministic schedule of service faults (torn "
             "job-log appends, duplicate submissions) for durability "
             "testing",
    )

    submit = commands.add_parser(
        "submit",
        help="submit a sweep job to a running campaign service",
        description=(
            "POST one sweep spec to a campaign server.  Submission is "
            "idempotent (the same spec returns the same job) and "
            "back-pressure aware (a full queue is reported with its "
            "Retry-After)."
        ),
    )
    submit.add_argument("workload", choices=workload_names())
    submit.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL",
        help="service base URL (default: http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "--machines", default="all",
        help="comma-separated machine names, or 'all' (default)",
    )
    submit.add_argument("--instructions", type=int, default=5000)
    submit.add_argument("--warmup", type=int, default=None,
                        help="default: instructions // 3")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="parallel workers for the job's campaign (default: 1)",
    )
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--retries", type=int, default=0)
    submit.add_argument(
        "--snapshot-every", type=int, default=None, metavar="CYCLES",
    )
    submit.add_argument(
        "--no-isolate", action="store_true",
        help="run the job's points in-process on the server",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal state",
    )
    submit.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="with --wait: poll interval (default: 0.5)",
    )

    jobs = commands.add_parser(
        "jobs",
        help="list or inspect jobs on a campaign service",
        description=(
            "Without JOB_ID, list every job the server knows with its "
            "state and tallies.  With JOB_ID, show that job's full "
            "record; --events streams its buffered progress lines."
        ),
    )
    jobs.add_argument("job_id", nargs="?", metavar="JOB_ID")
    jobs.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL",
        help="service base URL (default: http://127.0.0.1:8765)",
    )
    jobs.add_argument(
        "--events", action="store_true",
        help="with JOB_ID: print the job's progress event lines",
    )

    check = commands.add_parser(
        "check",
        help="validate a machine against the golden functional model",
        description=(
            "Run one machine with full invariant checking and no warm-up, "
            "replay the same trace through the obviously-correct "
            "functional cache model, and diff the two through the "
            "conservation laws.  Exit status 1 if any law is violated."
        ),
    )
    _add_run_arguments(check)
    check.add_argument(
        "--machine", choices=sorted(MACHINES), default="psb",
        help="which machine to validate (default: psb)",
    )
    check.add_argument(
        "--tolerance", type=float, default=None, metavar="RATE",
        help="allowed |timed - golden| primary miss-rate gap "
             "(default: 0.05)",
    )
    return parser


def _add_run_arguments(
    parser: argparse.ArgumentParser, optional_workload: bool = False
) -> None:
    if optional_workload:
        parser.add_argument("workload", choices=workload_names(), nargs="?")
    else:
        parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--instructions", type=int, default=50_000)
    parser.add_argument("--warmup", type=int, default=None,
                        help="default: instructions // 3")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--invariants", choices=("off", "cheap", "full"), default="off",
        help="runtime invariant checking level: 'cheap' samples the "
             "hook points, 'full' checks every cycle (default: off)",
    )


def _add_sharing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--buffer-sharing", choices=("fixed", "harmonic", "credence"),
        default="fixed", metavar="POLICY",
        help="stream-buffer entry ownership: 'fixed' is the paper's "
             "static 8x4 partition (default, bit-identical to older "
             "releases); 'harmonic' and 'credence' share the entries as "
             "one online-allocated pool (see docs/buffer_sharing.md)",
    )
    parser.add_argument(
        "--pool-entries", type=int, default=None, metavar="N",
        help="shared-pool capacity for the pooled sharing policies "
             "(default: num_buffers x entries_per_buffer = 32; ignored "
             "under 'fixed')",
    )


def _apply_sharing(args: argparse.Namespace, config: SimConfig) -> SimConfig:
    """Fold the ``--buffer-sharing`` flags into a machine config."""
    sharing = getattr(args, "buffer_sharing", "fixed")
    pool_entries = getattr(args, "pool_entries", None)
    if sharing == "fixed" and pool_entries is None:
        return config
    if pool_entries is not None and sharing == "fixed":
        raise ConfigError(
            "--pool-entries only applies to the pooled sharing policies; "
            "pick --buffer-sharing harmonic or credence",
            field="buffer_sharing",
        )
    return config.with_sharing(BufferSharing(sharing), pool_entries)


def _add_sample_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample", default=None, metavar="PERIOD:WINDOW:WARMUP",
        help="run under SMARTS-style systematic sampling: per PERIOD "
             "trace records, fast-forward to a detailed window of "
             "WARMUP discarded + WINDOW measured instructions (e.g. "
             "50000:1000:500); implies --warmup 0",
    )
    parser.add_argument(
        "--sample-strata", type=int, default=1, metavar="S",
        help="with --sample: stratified window placement — split each "
             "period into S sub-periods measuring WINDOW/S instructions "
             "at each sub-midpoint (same measured budget, S times the "
             "windows; S must divide PERIOD, WINDOW, and WARMUP; "
             "default: 1, classic placement)",
    )
    parser.add_argument(
        "--warm-confidence", action="store_true",
        help="with --sample: timing-aware predictor warm-up — "
             "fast-forward warms stride/markov confidence counters and "
             "stream-buffer priorities at a detuned rate instead of "
             "full training fidelity",
    )


def _parse_sample(spec: str) -> tuple:
    """Parse a ``PERIOD:WINDOW:WARMUP`` sampling shape."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ConfigError(
            f"--sample wants PERIOD:WINDOW:WARMUP, got {spec!r}",
            field="sample",
        )
    try:
        period, window, warmup = (int(part) for part in parts)
    except ValueError:
        raise ConfigError(
            f"--sample wants three integers, got {spec!r}",
            field="sample",
        )
    return period, window, warmup


def _apply_sample(args: argparse.Namespace, config: SimConfig) -> SimConfig:
    """Fold the ``--sample*`` flags into a machine config, if given."""
    if getattr(args, "sample", None) is None:
        if getattr(args, "sample_strata", 1) != 1:
            raise ConfigError(
                "--sample-strata only applies with --sample",
                field="sample",
            )
        if getattr(args, "warm_confidence", False):
            raise ConfigError(
                "--warm-confidence only applies with --sample",
                field="sample",
            )
        return config
    if args.warmup not in (None, 0):
        raise ConfigError(
            "--sample replaces the run-level warm-up with per-window "
            "warm-ups; drop --warmup or pass --warmup 0",
            field="sample",
        )
    period, window, warmup = _parse_sample(args.sample)
    return config.with_sampling(
        period=period,
        window=window,
        warmup=warmup,
        strata=getattr(args, "sample_strata", 1),
        warm_confidence=getattr(args, "warm_confidence", False),
    )


def _warmup_of(args: argparse.Namespace) -> int:
    if getattr(args, "sample", None) is not None:
        return 0
    if args.warmup is not None:
        return args.warmup
    return args.instructions // 3


def _apply_invariants(args: argparse.Namespace, config: SimConfig) -> SimConfig:
    """Apply the ``--invariants`` level to a machine config."""
    level = InvariantLevel(args.invariants)
    if level is InvariantLevel.OFF:
        return config
    return config.with_invariants(level)


def _config_of(args: argparse.Namespace, machine: str) -> SimConfig:
    """Build the machine config with the requested invariant level."""
    return _apply_invariants(args, MACHINES[machine]())


def _command_workloads() -> int:
    rows = [
        [name, cls.description] for name, cls in WORKLOADS.items()
    ]
    print(ascii_table(["name", "description"], rows, title="Workloads"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.trace is None and args.workload is None:
        raise ConfigError(
            "run: give a workload name or --trace PATH",
            field="run.workload",
        )
    if args.lax and args.trace is None:
        raise ConfigError(
            "run: --lax only applies to --trace (generated workloads "
            "cannot contain malformed records)",
            field="run.lax",
        )
    config = _apply_sample(
        args, _apply_sharing(args, _config_of(args, args.machine))
    )
    if args.metrics:
        config = config.with_metrics(args.metrics_interval)
    event_trace = None
    if args.trace_events is not None:
        from repro.obs import EventTrace, parse_categories
        from repro.obs.tracing import DEFAULT_CAPACITY

        event_trace = EventTrace(
            capacity=args.trace_capacity or DEFAULT_CAPACITY,
            categories=parse_categories(args.trace_filter),
        )
    skipped: list = []
    if args.trace is not None:
        from repro.trace.io import load_trace

        records = load_trace(args.trace, strict=not args.lax, errors=skipped)
        source_name = args.trace
    else:
        records = get_workload(args.workload, seed=args.seed)
        source_name = args.workload
    from repro.sim.simulator import Simulator

    simulator = Simulator(config, event_trace=event_trace)
    result = simulator.run(
        records,
        max_instructions=args.instructions,
        warmup_instructions=_warmup_of(args),
        label=args.machine,
    )
    rows = [
        ["IPC", f"{result.ipc:.3f}"],
        ["cycles", f"{result.cycles}"],
        ["L1 miss rate", f"{result.l1_miss_rate * 100:.1f}%"],
        ["avg load latency", f"{result.avg_load_latency:.2f} cycles"],
        ["branch mispredict", f"{result.branch_misprediction_rate * 100:.1f}%"],
        ["L1-L2 bus busy", f"{result.l1_l2_bus_utilization * 100:.1f}%"],
        ["L2-mem bus busy", f"{result.l2_mem_bus_utilization * 100:.1f}%"],
        ["prefetches issued", f"{result.prefetches_issued}"],
        ["prefetch accuracy", f"{result.prefetch_accuracy * 100:.1f}%"],
    ]
    if result.extra.get("sampled"):
        rows.append(
            ["sampled windows",
             f"{int(result.extra.get('windows', 0))} x "
             f"{int(result.extra.get('sample_window', 0))} instr "
             f"(period {int(result.extra.get('sample_period', 0))})"]
        )
        rows.append(
            ["IPC 95% CI", f"+/- {result.extra.get('ipc_ci95', 0.0):.4f}"]
        )
        rows.append(
            ["fast-forwarded",
             f"{int(result.extra.get('ff_instructions', 0))} records"]
        )
    if args.invariants != "off":
        rows.append(
            ["invariant checks",
             f"{int(result.extra.get('invariant_checks', 0))} ({args.invariants})"]
        )
    if args.lax:
        rows.append(["trace records skipped", str(len(skipped))])
    print(
        ascii_table(
            ["statistic", "value"], rows,
            title=f"{source_name} on '{args.machine}'",
        )
    )
    if skipped:
        print(
            f"warning: skipped {len(skipped)} malformed trace record(s) "
            "(--lax)", file=sys.stderr,
        )
    if args.metrics:
        import json

        from repro.obs import metrics_payload

        payload = metrics_payload(
            simulator, result,
            meta={
                "workload": source_name,
                "machine": args.machine,
                "seed": args.seed,
            },
        )
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=1)
        print(f"wrote metrics to {args.metrics_out}")
    if event_trace is not None:
        written = event_trace.write_jsonl(args.trace_events)
        note = ""
        if event_trace.dropped:
            note = (f" ({event_trace.dropped} older events dropped by the "
                    f"ring buffer)")
        print(f"wrote {written} events to {args.trace_events}{note}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    if args.sample is not None:
        return _command_compare_paired(args)
    if args.paired_out is not None:
        raise ConfigError(
            "compare: --paired-out only applies with --sample",
            field="compare.paired_out",
        )
    warmup = _warmup_of(args)
    base = simulate(
        _apply_invariants(args, baseline_config()),
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        warmup_instructions=warmup,
        label="Base",
    )
    rows = [["Base", f"{base.ipc:.3f}", "-", "-"]]
    for label, config in paper_configs().items():
        result = simulate(
            _apply_invariants(args, config),
            get_workload(args.workload, seed=args.seed),
            max_instructions=args.instructions,
            warmup_instructions=warmup,
            label=label,
        )
        rows.append(
            [
                label,
                f"{result.ipc:.3f}",
                f"{result.speedup_over(base):+.1f}%",
                f"{result.prefetch_accuracy * 100:.0f}%",
            ]
        )
    print(
        ascii_table(
            ["machine", "IPC", "speedup", "accuracy"],
            rows,
            title=f"Figure 5 machines on '{args.workload}'",
        )
    )
    return 0


def _command_compare_paired(args: argparse.Namespace) -> int:
    """``compare --sample``: all machines over one shared window grid.

    The matched-pair sampler cancels the fast-forward cold-start bias
    in the relative-IPC column — the number the Figure 5 comparison
    actually reports — so sampled speedups are trustworthy even where
    sampled absolute IPCs are biased.
    """
    from repro.sampling.paired import run_paired

    configs = {"Base": _apply_invariants(args, baseline_config())}
    for label, config in paper_configs().items():
        configs[label] = _apply_invariants(args, config)
    configs = {
        label: _apply_sample(args, config)
        for label, config in configs.items()
    }
    paired = run_paired(
        configs,
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        baseline="Base",
    )
    rows = [["Base", f"{paired.results['Base'].ipc:.3f}", "-", "-", "-"]]
    for label in paired.labels:
        if label == "Base":
            continue
        stats = paired.pairs[label]
        rows.append(
            [
                label,
                f"{paired.results[label].ipc:.3f}",
                f"{stats.speedup_percent:+.1f}%",
                f"{stats.ratio_mean:.3f} ± {stats.ratio_ci95:.3f}",
                f"{paired.results[label].prefetch_accuracy * 100:.0f}%",
            ]
        )
    windows = len(paired.window_rows.get("Base", ()))
    print(
        ascii_table(
            ["machine", "IPC (sampled)", "speedup", "window ratio",
             "accuracy"],
            rows,
            title=(
                f"Figure 5 machines on '{args.workload}' "
                f"(matched-pair sample, {windows} windows)"
            ),
        )
    )
    print(
        "speedups are paired estimates: every machine was sampled over "
        "the same window grid, so fast-forward bias cancels in the "
        "ratios"
    )
    if args.paired_out is not None:
        with open(args.paired_out, "w") as handle:
            json.dump(paired.to_dict(), handle, indent=2)
        print(f"wrote paired manifest to {args.paired_out}")
    return 0


def _command_sweep_paired(
    args: argparse.Namespace, machines: List[str]
) -> int:
    """``sweep --sample-paired``: matched-pair sampling across machines."""
    import os

    from repro.sim.sweep import paired_sweep

    if args.sample is None:
        raise ConfigError(
            "sweep: --sample-paired requires --sample "
            "PERIOD:WINDOW:WARMUP (the legs share one sampling shape)",
            field="sweep.sample_paired",
        )
    if len(machines) < 2:
        raise ConfigError(
            "sweep: --sample-paired needs at least two machines to "
            "compare",
            field="sweep.sample_paired",
        )
    configs = {
        name: _apply_sample(args, _apply_sharing(args, _config_of(args, name)))
        for name in machines
    }
    baseline = "base" if "base" in configs else machines[0]
    paired = paired_sweep(
        configs,
        lambda: get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        baseline=baseline,
    )
    rows = []
    for label in paired.labels:
        result = paired.results[label]
        if label == baseline:
            rows.append([label, f"{result.ipc:.4f}", "baseline", "-"])
            continue
        stats = paired.pairs[label]
        rows.append(
            [
                label,
                f"{result.ipc:.4f}",
                f"{stats.rel_ipc:.4f} ({stats.speedup_percent:+.1f}%)",
                f"{stats.ratio_mean:.4f} ± {stats.ratio_ci95:.4f} "
                f"(n={stats.windows})",
            ]
        )
    windows = len(paired.window_rows.get(baseline, ()))
    print(
        ascii_table(
            ["machine", "IPC (sampled)", "rel. IPC", "window ratio"],
            rows,
            title=(
                f"paired sampling campaign: '{args.workload}' "
                f"({windows} shared windows, baseline '{baseline}')"
            ),
        )
    )
    if args.campaign_dir:
        os.makedirs(args.campaign_dir, exist_ok=True)
        paired_path = os.path.join(args.campaign_dir, "paired.json")
        with open(paired_path, "w") as handle:
            json.dump(paired.to_dict(), handle, indent=2)
        print(f"wrote paired manifest to {paired_path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.obs import report as obs_report

    if args.campaign is not None:
        document = obs_report.campaign_report(args.campaign)
        title = f"Campaign report: {args.campaign}"
    elif args.workload is not None:
        document = _comparison_document(args)
        title = f"Comparison report: {args.workload}"
    else:
        payload = obs_report.load_metrics(args.metrics)
        events = None
        if args.events is not None:
            from repro.obs import read_jsonl

            events = read_jsonl(args.events)
        meta = payload.get("meta", {})
        title = "Run report"
        if meta.get("workload"):
            title = (
                f"Run report: {meta['workload']} on "
                f"'{meta.get('machine', '?')}'"
            )
        document = obs_report.run_report(payload, events=events, title=title)
    kind = obs_report.write_report(document, args.out, title=title)
    print(f"wrote {kind} report to {args.out}")
    return 0


def _comparison_document(args: argparse.Namespace) -> str:
    """The legacy mode: simulate the Figure 5 machines and compare them."""
    from repro.analysis.summary import comparison_report

    warmup = _warmup_of(args)
    results = {}
    for label, config in [("Base", baseline_config())] + list(
        paper_configs().items()
    ):
        results[label] = simulate(
            _apply_invariants(args, config),
            get_workload(args.workload, seed=args.seed),
            max_instructions=args.instructions,
            warmup_instructions=warmup,
            label=label,
        )
    return comparison_report(args.workload, results)


def _command_trace(args: argparse.Namespace) -> int:
    if args.workload == "compile":
        return _command_trace_compile(args)
    if args.workload not in workload_names():
        raise ConfigError(
            f"unknown workload {args.workload!r}; known: "
            f"{', '.join(workload_names())} (or 'compile')",
            field="trace.workload",
        )
    if args.source is not None:
        raise ConfigError(
            "trace: a second positional is only valid with 'compile'",
            field="trace.source",
        )
    limit = 20_000 if args.instructions is None else args.instructions
    records = get_workload(args.workload, seed=args.seed)
    if args.binary:
        from repro.trace.binfmt import compile_trace

        written = compile_trace(args.out, records, limit=limit)
        print(f"compiled {written} records to {args.out}")
    else:
        written = save_trace(args.out, records, limit=limit)
        print(f"wrote {written} records to {args.out}")
    return 0


def _command_trace_compile(args: argparse.Namespace) -> int:
    from repro.trace.binfmt import compile_trace
    from repro.trace.io import load_trace

    if args.source is None:
        raise ConfigError(
            "trace compile: give an input trace path or workload name",
            field="trace.source",
        )
    if args.source in workload_names():
        limit = 20_000 if args.instructions is None else args.instructions
        records = get_workload(args.source, seed=args.seed)
    else:
        # A text trace file is finite; compile all of it unless capped.
        limit = 0 if args.instructions is None else args.instructions
        records = load_trace(args.source)
    written = compile_trace(args.out, records, limit=limit)
    print(f"compiled {written} records to {args.out}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        check_against_baseline,
        format_report,
        load_baseline,
        run_bench,
        write_report,
    )
    from repro.workloads import PAPER_WORKLOADS, POINTER_WORKLOADS

    if args.workloads is not None:
        workloads = [
            name.strip() for name in args.workloads.split(",") if name.strip()
        ]
        if not workloads:
            raise ConfigError("bench: no workloads selected",
                              field="bench.workloads")
    elif args.quick:
        workloads = list(POINTER_WORKLOADS)
    else:
        # Paper benchmarks only: the perf baselines were captured on the
        # six Table 1 stand-ins, and extension workloads must not widen
        # the gate's scope implicitly.
        workloads = list(PAPER_WORKLOADS)
    instructions = args.instructions
    if args.quick and args.instructions == 50_000:
        instructions = 10_000

    if args.sampling:
        if args.quick:
            raise ConfigError(
                "bench: --sampling has no --quick mode; the error/"
                "speedup gate is only meaningful at full trace scale",
                field="bench.sampling",
            )
        return _bench_sampling(args, workloads)

    report = run_bench(
        workloads,
        MACHINES[args.machine](),
        machine=args.machine,
        instructions=instructions,
        warmup=args.warmup,
        seed=args.seed,
        repeats=args.repeats,
        profile_dir=args.profile,
    )
    write_report(report, args.out)
    print(format_report(report))
    print(f"wrote {args.out}")
    if args.profile:
        print(f"cProfile dumps in {args.profile}/")

    if args.check is not None:
        baseline = load_baseline(args.check)
        failures = check_against_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"bench regression: {failure}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} "
              f"(tolerance {args.tolerance * 100:.0f}%)")
    return 0


def _bench_sampling(args: argparse.Namespace, workloads: List[str]) -> int:
    """The ``bench --sampling`` suite: detailed vs sampled per workload."""
    from repro.perf import (
        check_sampling_baseline,
        format_sampling_report,
        load_baseline,
        run_sampling_bench,
        write_report,
    )

    # The suite's own defaults: the regression target is the paper
    # machine at acceptance scale, not the core suite's quick shape.
    machine = "psb" if args.machine == "base" else args.machine
    instructions = args.instructions
    if instructions == 50_000:
        instructions = 1_000_000
    out = args.out
    if out == "BENCH_core.json":
        out = "BENCH_sampling.json"
    sample = _parse_sample(args.sample) if args.sample else (50_000, 1_000, 500)

    report = run_sampling_bench(
        workloads,
        MACHINES[machine](),
        machine=machine,
        instructions=instructions,
        seed=args.seed,
        sample=sample,
        ipc_error_bound=args.error_bound,
        paired_error_bound=args.paired_bound,
        speedup_floor=args.speedup_floor,
        profile_dir=args.profile,
    )
    write_report(report, out)
    print(format_sampling_report(report))
    print(f"wrote {out}")
    if args.profile:
        print(f"cProfile dumps in {args.profile}/")

    if args.check is not None:
        baseline = load_baseline(args.check)
        failures = check_sampling_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"bench regression: {failure}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} "
              f"(tolerance {args.tolerance * 100:.0f}%)")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    from repro.integrity import golden_check, run_golden

    if args.warmup not in (None, 0):
        raise ConfigError(
            "check: golden-model validation requires --warmup 0 (a "
            "warm-up reset discards events the golden model counts)",
            field="check.warmup",
        )
    config = _config_of(args, args.machine)
    label = f"{args.workload}:{args.machine}"
    result = simulate(
        config,
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        warmup_instructions=0,
        label=label,
    )
    golden = run_golden(
        config,
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
    )
    if args.tolerance is not None:
        report = golden_check(result, golden, miss_rate_tolerance=args.tolerance)
    else:
        report = golden_check(result, golden)
    print(report.summary())
    for violation in report.violations:
        print(f"  violated: {violation}", file=sys.stderr)
    return 0 if report.ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.runner import CampaignRunner, RunSpec, WorkloadSpec

    if args.golden and _warmup_of(args) != 0:
        raise ConfigError(
            "sweep: --golden requires --warmup 0 (a warm-up reset "
            "discards events the golden model counts)",
            field="sweep.golden",
        )
    if args.golden and args.sample is not None:
        raise ConfigError(
            "sweep: --golden and --sample are incompatible (the golden "
            "model counts every record; sampling only measures windows)",
            field="sweep.golden",
        )
    if args.machines == "all":
        machines = sorted(MACHINES)
    else:
        machines = [name.strip() for name in args.machines.split(",") if name.strip()]
        unknown = [name for name in machines if name not in MACHINES]
        if unknown:
            raise ConfigError(
                f"unknown machine(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(MACHINES))}",
                field="sweep.machines",
            )
    if not machines:
        raise ConfigError("no machines selected", field="sweep.machines")
    if args.sample_paired:
        return _command_sweep_paired(args, machines)
    chaos = None
    if args.chaos_seed is not None:
        from repro.runner import ChaosSpec

        chaos = ChaosSpec.scheduled(
            args.chaos_seed, points=len(machines), poison=args.chaos_poison
        )
    elif args.chaos_poison:
        raise ConfigError(
            "sweep: --chaos-poison requires --chaos-seed",
            field="sweep.chaos_poison",
        )

    specs = [
        RunSpec(
            run_id=f"{args.workload}/{name}",
            config=_apply_sample(
                args, _apply_sharing(args, _config_of(args, name))
            ),
            trace=WorkloadSpec(args.workload, seed=args.seed),
            max_instructions=args.instructions,
            warmup_instructions=_warmup_of(args),
            golden_check=args.golden,
        )
        for name in machines
    ]
    progress = None
    if args.progress:
        from repro.obs import CampaignProgress

        progress = CampaignProgress(
            emit=lambda line: print(line, file=sys.stderr)
        )
    runner = CampaignRunner(
        args.campaign_dir,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        on_error=args.on_error,
        isolation="inline" if args.no_isolate else "process",
        resume=args.resume,
        snapshot_every=args.snapshot_every,
        progress=progress,
        chaos=chaos,
        max_worker_kills=args.max_worker_kills,
        handle_signals=True,
    )
    campaign = runner.run(specs)

    rows = []
    for spec in specs:
        outcome = campaign.outcomes.get(spec.run_id)
        if outcome is None:
            continue
        machine = spec.run_id.split("/", 1)[1]
        if outcome.ok:
            result = outcome.result
            rows.append(
                [
                    machine,
                    "ok" + (" (resumed)" if outcome.resumed else ""),
                    f"{result.ipc:.3f}",
                    f"{result.prefetch_accuracy * 100:.0f}%",
                    str(outcome.attempts),
                ]
            )
        else:
            label = (
                "POISONED" if outcome.status == "poisoned" else "FAILED"
            )
            rows.append(
                [
                    machine,
                    f"{label}: {outcome.error_kind}",
                    "-",
                    "-",
                    str(outcome.attempts),
                ]
            )
    print(
        ascii_table(
            ["machine", "status", "IPC", "accuracy", "attempts"],
            rows,
            title=f"campaign: '{args.workload}'",
        )
    )
    for outcome in campaign.failures.values():
        print(f"  {outcome.run_id}: {outcome.error_message}")
    skipped = {
        run_id: int(result.extra.get("trace_records_skipped", 0))
        for run_id, result in campaign.results.items()
        if result.extra.get("trace_records_skipped")
    }
    if skipped:
        total = sum(skipped.values())
        print(
            f"warning: {total} malformed trace record(s) skipped "
            f"({', '.join(f'{k}: {v}' for k, v in sorted(skipped.items()))})",
            file=sys.stderr,
        )
    if args.campaign_dir:
        print(f"campaign state in {args.campaign_dir}")
    if runner.stop_requested:
        # A handled SIGINT/SIGTERM stopped the campaign gracefully:
        # the manifest is resumable and the exit status says
        # "interrupted", matching the old Ctrl-C semantics.
        print(
            "repro-sim: sweep interrupted; resume with --resume",
            file=sys.stderr,
        )
        return 130
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    from repro.runner import audit_campaign, audit_service, is_service_dir

    if is_service_dir(args.campaign_dir):
        report = audit_service(args.campaign_dir)
    else:
        report = audit_campaign(args.campaign_dir)
    print(report.summary())
    if not report.ok:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import CampaignService

    chaos = None
    if args.chaos_seed is not None:
        from repro.runner import ChaosSpec

        chaos = ChaosSpec.service_scheduled(args.chaos_seed)
    service = CampaignService(
        args.service_dir,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        lease_ttl=args.lease_ttl,
        max_queued=args.max_queued,
        max_expiries=args.max_expiries,
        poll_interval=args.poll_interval,
        chaos=chaos,
    )

    def _announce(started: "CampaignService") -> None:
        # The port may have been 0 (pick a free one); announce the
        # resolved URL so scripts can parse it before submitting.
        print(
            f"repro-sim service listening on {started.url} "
            f"(owner {started.owner})",
            flush=True,
        )

    asyncio.run(service.run(on_ready=_announce))
    print("repro-sim service drained cleanly", flush=True)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service.client import request_json

    payload = {
        "workload": args.workload,
        "machines": args.machines,
        "instructions": args.instructions,
        "seed": args.seed,
        "workers": args.workers,
        "retries": args.retries,
        "isolation": "inline" if args.no_isolate else "process",
    }
    if args.warmup is not None:
        payload["warmup"] = args.warmup
    if args.timeout is not None:
        payload["timeout"] = args.timeout
    if args.snapshot_every is not None:
        payload["snapshot_every"] = args.snapshot_every
    status, headers, body = request_json(
        "POST", f"{args.server}/jobs", payload
    )
    if status == 429:
        retry_after = headers.get("retry-after", "?")
        print(
            f"repro-sim: service is saturated (HTTP 429); "
            f"retry after {retry_after}s",
            file=sys.stderr,
        )
        return 1
    if status == 503:
        print(
            "repro-sim: service is draining (HTTP 503); "
            "resubmit after it restarts",
            file=sys.stderr,
        )
        return 1
    if status not in (200, 201):
        detail = body.get("error") if isinstance(body, dict) else body
        print(f"repro-sim: submit failed (HTTP {status}): {detail}",
              file=sys.stderr)
        return 1
    job = body["job"]
    verb = "submitted" if body.get("created") else "already known"
    print(f"job {job['job_id']} {verb} ({job['state']})")
    if not args.wait:
        return 0
    while True:
        status, _, job = request_json(
            "GET", f"{args.server}/jobs/{job['job_id']}"
        )
        if status != 200:
            print(
                f"repro-sim: job poll failed (HTTP {status})",
                file=sys.stderr,
            )
            return 1
        if job.get("terminal"):
            break
        _time.sleep(args.poll)
    print(f"job {job['job_id']} finished: {job['state']}")
    if job.get("summary"):
        summary = job["summary"]
        print(
            f"  points: {summary.get('ok', 0)} ok, "
            f"{summary.get('failed', 0)} failed, "
            f"{summary.get('poisoned', 0)} poisoned "
            f"of {summary.get('total_points', '?')}"
        )
    if job.get("error"):
        error = job["error"]
        print(f"  error: {error.get('kind')}: {error.get('message')}")
    return 0 if job.get("state") == "done" else 1


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import request_json

    if args.job_id is None:
        status, _, body = request_json("GET", f"{args.server}/jobs")
        if status != 200:
            print(f"repro-sim: jobs list failed (HTTP {status})",
                  file=sys.stderr)
            return 1
        rows = []
        for job in body.get("jobs", []):
            summary = job.get("summary") or {}
            rows.append([
                job["job_id"],
                job["state"],
                job.get("spec", {}).get("workload", "?"),
                str(len(job.get("spec", {}).get("machines", []))),
                str(summary.get("ok", "-")),
                str(job.get("expiries", 0)),
            ])
        print(ascii_table(
            ["job", "state", "workload", "machines", "ok", "expiries"],
            rows, title="Jobs",
        ))
        return 0
    if args.events:
        status, _, body = request_json(
            "GET", f"{args.server}/jobs/{args.job_id}/events"
        )
        if status != 200:
            print(f"repro-sim: events fetch failed (HTTP {status})",
                  file=sys.stderr)
            return 1
        if isinstance(body, str):
            print(body, end="")
        else:
            print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    status, _, body = request_json(
        "GET", f"{args.server}/jobs/{args.job_id}"
    )
    if status == 404:
        print(f"repro-sim: no job {args.job_id!r}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"repro-sim: job fetch failed (HTTP {status})",
              file=sys.stderr)
        return 1
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "workloads":
        return _command_workloads()
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "check":
        return _command_check(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "jobs":
        return _command_jobs(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"repro-sim: error: {error}", file=sys.stderr)
        return error.exit_code
    except KeyboardInterrupt:
        print("repro-sim: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
