"""Command-line interface: run paper machines from the shell.

Usage (also available as ``python -m repro``)::

    repro-sim workloads
    repro-sim run health --machine psb --instructions 50000
    repro-sim compare health --instructions 50000
    repro-sim trace burg --out burg.trace --instructions 20000
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.report import ascii_table
from repro.config import SimConfig
from repro.sim import baseline_config, paper_configs, simulate
from repro.sim.presets import (
    demand_markov_config,
    min_delta_config,
    next_line_config,
    sequential_config,
)
from repro.trace.io import save_trace
from repro.workloads import WORKLOADS, get_workload, workload_names

#: Machine names accepted by --machine.
MACHINES: Dict[str, Callable[[], SimConfig]] = {
    "base": baseline_config,
    "stride": lambda: paper_configs()["Stride"],
    "2miss-rr": lambda: paper_configs()["2Miss-RR"],
    "2miss-priority": lambda: paper_configs()["2Miss-Priority"],
    "confalloc-rr": lambda: paper_configs()["ConfAlloc-RR"],
    "psb": lambda: paper_configs()["ConfAlloc-Priority"],
    "jouppi": sequential_config,
    "min-delta": min_delta_config,
    "next-line": next_line_config,
    "demand-markov": demand_markov_config,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Predictor-Directed Stream Buffers' "
            "(MICRO-33, 2000)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the benchmark stand-ins")

    run = commands.add_parser("run", help="simulate one machine")
    _add_run_arguments(run)
    run.add_argument(
        "--machine", choices=sorted(MACHINES), default="psb",
        help="which machine to simulate (default: psb)",
    )

    compare = commands.add_parser(
        "compare", help="run all six Figure 5 machines on one workload"
    )
    _add_run_arguments(compare)

    trace = commands.add_parser("trace", help="save a workload trace file")
    trace.add_argument("workload", choices=workload_names())
    trace.add_argument("--out", required=True, help="output path")
    trace.add_argument("--instructions", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=1)

    report = commands.add_parser(
        "report", help="write a markdown comparison report"
    )
    _add_run_arguments(report)
    report.add_argument("--out", required=True, help="output markdown path")
    return parser


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=workload_names())
    parser.add_argument("--instructions", type=int, default=50_000)
    parser.add_argument("--warmup", type=int, default=None,
                        help="default: instructions // 3")
    parser.add_argument("--seed", type=int, default=1)


def _warmup_of(args: argparse.Namespace) -> int:
    if args.warmup is not None:
        return args.warmup
    return args.instructions // 3


def _command_workloads() -> int:
    rows = [
        [name, cls.description] for name, cls in WORKLOADS.items()
    ]
    print(ascii_table(["name", "description"], rows, title="Workloads"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = MACHINES[args.machine]()
    result = simulate(
        config,
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        warmup_instructions=_warmup_of(args),
        label=args.machine,
    )
    rows = [
        ["IPC", f"{result.ipc:.3f}"],
        ["cycles", f"{result.cycles}"],
        ["L1 miss rate", f"{result.l1_miss_rate * 100:.1f}%"],
        ["avg load latency", f"{result.avg_load_latency:.2f} cycles"],
        ["branch mispredict", f"{result.branch_misprediction_rate * 100:.1f}%"],
        ["L1-L2 bus busy", f"{result.l1_l2_bus_utilization * 100:.1f}%"],
        ["L2-mem bus busy", f"{result.l2_mem_bus_utilization * 100:.1f}%"],
        ["prefetches issued", f"{result.prefetches_issued}"],
        ["prefetch accuracy", f"{result.prefetch_accuracy * 100:.1f}%"],
    ]
    print(
        ascii_table(
            ["statistic", "value"], rows,
            title=f"{args.workload} on '{args.machine}'",
        )
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    warmup = _warmup_of(args)
    base = simulate(
        baseline_config(),
        get_workload(args.workload, seed=args.seed),
        max_instructions=args.instructions,
        warmup_instructions=warmup,
        label="Base",
    )
    rows = [["Base", f"{base.ipc:.3f}", "-", "-"]]
    for label, config in paper_configs().items():
        result = simulate(
            config,
            get_workload(args.workload, seed=args.seed),
            max_instructions=args.instructions,
            warmup_instructions=warmup,
            label=label,
        )
        rows.append(
            [
                label,
                f"{result.ipc:.3f}",
                f"{result.speedup_over(base):+.1f}%",
                f"{result.prefetch_accuracy * 100:.0f}%",
            ]
        )
    print(
        ascii_table(
            ["machine", "IPC", "speedup", "accuracy"],
            rows,
            title=f"Figure 5 machines on '{args.workload}'",
        )
    )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.analysis.summary import comparison_report

    warmup = _warmup_of(args)
    results = {}
    for label, config in [("Base", baseline_config())] + list(
        paper_configs().items()
    ):
        results[label] = simulate(
            config,
            get_workload(args.workload, seed=args.seed),
            max_instructions=args.instructions,
            warmup_instructions=warmup,
            label=label,
        )
    document = comparison_report(args.workload, results)
    with open(args.out, "w") as handle:
        handle.write(document)
    print(f"wrote report to {args.out}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    written = save_trace(
        args.out,
        get_workload(args.workload, seed=args.seed),
        limit=args.instructions,
    )
    print(f"wrote {written} records to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "workloads":
        return _command_workloads()
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "report":
        return _command_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
