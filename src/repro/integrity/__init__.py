"""Simulation integrity layer.

Three pillars, three modules:

- :mod:`repro.integrity.invariants` — runtime invariant checking: an
  :class:`InvariantChecker` registered against simulator hook points
  (per-cycle, per-miss, per-prefetch) verifies conservation laws on the
  live machine and raises :class:`repro.errors.IntegrityError` with a
  structured state dump the moment one breaks.
- :mod:`repro.integrity.golden` — differential validation against a
  small, obviously-correct functional model of the cache hierarchy.
- :mod:`repro.integrity.snapshot` — deterministic mid-run snapshot and
  resume, bit-identical to an uninterrupted run.
"""

from repro.integrity.golden import GoldenReport, GoldenStats, golden_check, run_golden
from repro.integrity.invariants import (
    InvariantChecker,
    check_bus,
    check_cache,
    check_counter,
    check_mshr,
    check_stream_buffers,
)
from repro.integrity.snapshot import SimSnapshot, resume_run

__all__ = [
    "GoldenReport",
    "GoldenStats",
    "InvariantChecker",
    "SimSnapshot",
    "check_bus",
    "check_cache",
    "check_counter",
    "check_mshr",
    "check_stream_buffers",
    "golden_check",
    "resume_run",
    "run_golden",
]
