"""Golden-model differential validation.

A deliberately tiny, *obviously correct* functional model of the demand
side of the memory hierarchy: a set-associative LRU tag store with
immediate fills and no timing at all — no MSHRs, no buses, no
pipelining, no prefetching.  Replaying a run's trace through it yields
reference counts the timing simulator must reconcile with.

Because the timed model's miss accounting is timing-*dependent* (merges
into in-flight MSHR entries count as misses; fills land out of order and
perturb LRU), the two models are compared through **conservation laws**
that hold exactly, plus one soft miss-rate tolerance:

- instruction, load, store, and branch counts match exactly;
- every memory instruction either accessed the hierarchy or was
  store-forwarded: ``demand_accesses + forwarded_loads == golden
  accesses``, exactly;
- the timed model's miss count is bounded below by the number of
  distinct blocks the trace touches (compulsory misses), exactly;
- ``prefetches_used <= prefetches_issued``, exactly;
- the *primary* L1 miss rate — demand misses minus MSHR merges, i.e.
  counting each block fetch once the way the functional model does —
  agrees with the golden miss rate within a small tolerance (default 5
  percentage points).  Without prefetching the two match to four
  decimal places on every registered workload; the slack only covers
  prefetch-perturbed LRU ordering.

All comparisons require the timed run to have been collected with
``warmup_instructions == 0``: a warm-up reset discards events the golden
model still counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, List, Optional, Union

from repro.config import SimConfig
from repro.errors import IntegrityError
from repro.sim.results import SimulationResult
from repro.trace.record import InstrKind, TraceRecord

#: Allowed absolute difference between the timed and golden miss rates.
DEFAULT_MISS_RATE_TOLERANCE = 0.05


class GoldenCache:
    """Functional set-associative LRU tag store with immediate fills.

    Kept primitive on purpose — each set is a plain list in LRU→MRU
    order — so its correctness is evident by inspection.
    """

    def __init__(self, size_bytes: int, block_size: int, associativity: int) -> None:
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = max(1, size_bytes // (block_size * associativity))
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def access(self, address: int) -> bool:
        """Touch a block; fill it immediately on a miss.  Returns hit."""
        block = address - (address % self.block_size)
        index = (block // self.block_size) % self.num_sets
        ways = self._sets[index]
        if block in ways:
            ways.remove(block)
            ways.append(block)  # most recently used at the tail
            return True
        ways.append(block)
        if len(ways) > self.associativity:
            ways.pop(0)  # evict the least recently used
        return False


@dataclass
class GoldenStats:
    """Reference counts from one functional replay of a trace."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    distinct_blocks: int = 0

    @property
    def l1_miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.l1_misses / self.accesses


def run_golden(
    config: SimConfig,
    trace: Union[str, bytes, Iterable[TraceRecord]],
    max_instructions: Optional[int] = None,
) -> GoldenStats:
    """Replay ``trace`` through the functional model of ``config``.

    ``trace`` is either an iterable of :class:`TraceRecord` or a
    compiled binary trace (a ``.rtb`` path or its ``bytes`` payload, see
    :mod:`repro.trace.binfmt`), which replays straight off the packed
    struct array — no record objects, no per-record attribute lookups —
    at several times record-iteration speed.
    """
    l1 = GoldenCache(
        config.l1_data.size_bytes,
        config.l1_data.block_size,
        config.l1_data.associativity,
    )
    l2 = GoldenCache(
        config.l2_unified.size_bytes,
        config.l2_unified.block_size,
        config.l2_unified.associativity,
    )
    stats = GoldenStats()
    seen_blocks: set = set()
    if isinstance(trace, (str, bytes)):
        _replay_compiled(trace, l1, l2, stats, seen_blocks, max_instructions)
    else:
        _replay_records(trace, l1, l2, stats, seen_blocks, max_instructions)
    stats.distinct_blocks = len(seen_blocks)
    return stats


def _replay_records(
    trace: Iterable[TraceRecord],
    l1: GoldenCache,
    l2: GoldenCache,
    stats: GoldenStats,
    seen_blocks: set,
    max_instructions: Optional[int],
) -> None:
    """The record-iterable replay loop, hot attributes bound to locals."""
    source = iter(trace)
    if max_instructions is not None:
        source = islice(source, max_instructions)
    LOAD = InstrKind.LOAD
    STORE = InstrKind.STORE
    BRANCH = InstrKind.BRANCH
    l1_access = l1.access
    l2_access = l2.access
    l1_block_size = l1.block_size
    seen_add = seen_blocks.add
    instructions = loads = stores = branches = 0
    accesses = l1_misses = l2_misses = 0
    for record in source:
        instructions += 1
        kind = record.kind
        if kind is LOAD:
            loads += 1
        elif kind is STORE:
            stores += 1
        else:
            if kind is BRANCH:
                branches += 1
            continue
        accesses += 1
        addr = record.addr
        seen_add(addr - (addr % l1_block_size))
        if not l1_access(addr):
            l1_misses += 1
            if not l2_access(addr):
                l2_misses += 1
    stats.instructions += instructions
    stats.loads += loads
    stats.stores += stores
    stats.branches += branches
    stats.accesses += accesses
    stats.l1_misses += l1_misses
    stats.l2_misses += l2_misses


def _replay_compiled(
    trace: Union[str, bytes],
    l1: GoldenCache,
    l2: GoldenCache,
    stats: GoldenStats,
    seen_blocks: set,
    max_instructions: Optional[int],
) -> None:
    """Replay a compiled binary trace from its raw struct tuples.

    Iterates ``struct.iter_unpack`` tuples directly — the dominant cost
    of the record path is building one ``TraceRecord`` per instruction,
    which a tag-only functional replay never needs.
    """
    from repro.trace.binfmt import HEADER_BYTES, _map_payload, _RECORD

    if isinstance(trace, str):
        buffer, __ = _map_payload(trace)
    else:
        from repro.trace.binfmt import read_header

        buffer = trace
        read_header(buffer)
    KIND_LOAD = int(InstrKind.LOAD)
    KIND_STORE = int(InstrKind.STORE)
    KIND_BRANCH = int(InstrKind.BRANCH)
    l1_access = l1.access
    l2_access = l2.access
    l1_block_size = l1.block_size
    seen_add = seen_blocks.add
    instructions = loads = stores = branches = 0
    accesses = l1_misses = l2_misses = 0
    try:
        for kind, __, __, __, __, addr in _RECORD.iter_unpack(
            memoryview(buffer)[HEADER_BYTES:]
        ):
            if (
                max_instructions is not None
                and instructions >= max_instructions
            ):
                break
            instructions += 1
            if kind == KIND_LOAD:
                loads += 1
            elif kind == KIND_STORE:
                stores += 1
            else:
                if kind == KIND_BRANCH:
                    branches += 1
                continue
            accesses += 1
            seen_add(addr - (addr % l1_block_size))
            if not l1_access(addr):
                l1_misses += 1
                if not l2_access(addr):
                    l2_misses += 1
    finally:
        import mmap

        if isinstance(buffer, mmap.mmap):
            buffer.close()
    stats.instructions += instructions
    stats.loads += loads
    stats.stores += stores
    stats.branches += branches
    stats.accesses += accesses
    stats.l1_misses += l1_misses
    stats.l2_misses += l2_misses


@dataclass
class GoldenReport:
    """Outcome of diffing a timed result against the golden model."""

    label: str
    timed_miss_rate: float
    golden_miss_rate: float
    miss_rate_tolerance: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def verify(self) -> "GoldenReport":
        """Raise :class:`IntegrityError` when any law was broken."""
        if self.violations:
            raise IntegrityError(
                f"golden-model check failed for {self.label!r}: "
                + "; ".join(self.violations),
                invariant="golden.differential",
                state_dump={
                    "violations": list(self.violations),
                    "timed_miss_rate": self.timed_miss_rate,
                    "golden_miss_rate": self.golden_miss_rate,
                },
            )
        return self

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.violations)})"
        return (
            f"golden check [{status}] {self.label}: "
            f"timed missrate={self.timed_miss_rate:.4f} "
            f"golden={self.golden_miss_rate:.4f} "
            f"(tolerance {self.miss_rate_tolerance:.3f})"
        )


def golden_check(
    result: SimulationResult,
    golden: GoldenStats,
    warmup_instructions: int = 0,
    miss_rate_tolerance: float = DEFAULT_MISS_RATE_TOLERANCE,
) -> GoldenReport:
    """Diff a timed :class:`SimulationResult` against golden counts.

    ``result.extra`` must carry the raw ``demand_accesses`` /
    ``demand_misses`` / ``loads`` / ``stores`` / ``branches`` counters
    (the simulator records them on every run); the exact conservation
    laws need counts, not rates.
    """
    if warmup_instructions:
        raise IntegrityError(
            "golden-model validation requires warmup_instructions == 0: "
            "a warm-up reset discards events the golden model counts",
            invariant="golden.precondition",
        )
    demand_accesses = int(result.extra.get("demand_accesses", -1))
    demand_misses = int(result.extra.get("demand_misses", -1))
    if demand_accesses < 0 or demand_misses < 0:
        raise IntegrityError(
            "timed result carries no raw demand counters; it predates "
            "the integrity layer and cannot be golden-checked",
            invariant="golden.precondition",
        )
    merges = int(result.extra.get("l1_mshr_merges", 0))
    primary_misses = demand_misses - merges
    timed_rate = (
        primary_misses / demand_accesses if demand_accesses else 0.0
    )
    report = GoldenReport(
        label=result.label,
        timed_miss_rate=timed_rate,
        golden_miss_rate=golden.l1_miss_rate,
        miss_rate_tolerance=miss_rate_tolerance,
    )
    flaws = report.violations

    def expect_equal(name: str, timed_value: int, golden_value: int) -> None:
        if timed_value != golden_value:
            flaws.append(
                f"{name}: timed {timed_value} != golden {golden_value}"
            )

    expect_equal("instructions", result.instructions, golden.instructions)
    expect_equal("loads", int(result.extra.get("loads", -1)), golden.loads)
    expect_equal("stores", int(result.extra.get("stores", -1)), golden.stores)
    expect_equal(
        "branches", int(result.extra.get("branches", -1)), golden.branches
    )
    expect_equal(
        "memory accesses (demand + forwarded)",
        demand_accesses + result.forwarded_loads,
        golden.accesses,
    )
    if primary_misses < golden.distinct_blocks:
        flaws.append(
            f"misses below compulsory floor: timed {primary_misses} "
            f"primary misses < {golden.distinct_blocks} distinct blocks "
            "touched"
        )
    if result.prefetches_used > result.prefetches_issued:
        flaws.append(
            f"prefetches_used ({result.prefetches_used}) exceeds "
            f"prefetches_issued ({result.prefetches_issued})"
        )
    if abs(timed_rate - golden.l1_miss_rate) > miss_rate_tolerance:
        flaws.append(
            f"miss rate diverged: timed primary {timed_rate:.4f} vs "
            f"golden {golden.l1_miss_rate:.4f} "
            f"(tolerance {miss_rate_tolerance:.3f})"
        )
    return report
