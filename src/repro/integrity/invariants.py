"""Runtime invariant checking for the live simulator.

Every structural component of the machine obeys a conservation law the
timing model can state exactly:

- **MSHR balance** — every allocated fill is either still in flight or
  has been released: ``allocations == releases + len(inflight)``, and
  occupancy never exceeds the file's capacity.
- **Bus occupancy** — a single-transaction bus holds a sorted list of
  non-overlapping, positive-length reservations; any overlap means two
  transactions occupy the wires at once.
- **Stream buffers** — an unallocated buffer holds no entries and no
  stream state; occupied entries never exceed capacity; with overlap
  checking enabled no block is resident in two buffers at once; the
  LRU timestamp never runs ahead of the simulation clock.  Under a
  pooled sharing policy, pool conservation too: entries owned across
  all buffers equal the pool's allocated count, never exceed the pool
  size, and no entry object is owned by two streams at once.
- **Saturating counters** — priority/confidence values stay inside
  their ``[minimum, maximum]`` bounds.
- **Caches** — no set holds more blocks than its associativity, and
  ``hits + misses == accesses``.
- **Stats monotonicity** — event counters only grow between checks
  (except across the explicit warm-up reset), and derived pairs stay
  consistent (``misses <= accesses``).

A violation raises :class:`repro.errors.IntegrityError` carrying the
invariant's dotted name and a small JSON-able dump of the offending
component, so a failed campaign run records *what* broke, not just that
a number looked odd afterwards.

The module-level ``check_*`` functions are pure inspections usable on
any component instance (the Hypothesis property tests drive them
directly); :class:`InvariantChecker` wires them to a whole machine and
applies the sampling policy of :class:`repro.config.InvariantLevel`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import InvariantLevel, SimConfig
from repro.errors import IntegrityError

#: Cycle period for the expensive whole-cache set scans, which would
#: dominate runtime if run every cycle even at ``full`` level.
_CACHE_SCAN_PERIOD = 1024


def _fail(
    invariant: str, message: str, cycle: Optional[int], dump: Dict
) -> None:
    raise IntegrityError(
        f"invariant {invariant!r} violated: {message}",
        invariant=invariant,
        cycle=cycle,
        state_dump=dump,
    )


# ----------------------------------------------------------------------
# Component-level checks (pure functions; property tests call these)
# ----------------------------------------------------------------------


def check_mshr(mshr, name: str = "mshr", cycle: Optional[int] = None) -> None:
    """Allocate/release balance and capacity of one MSHR file."""
    occupancy = len(mshr)
    if occupancy > mshr.num_entries:
        _fail(
            f"{name}.capacity",
            f"{occupancy} in-flight entries in a "
            f"{mshr.num_entries}-entry file",
            cycle,
            {
                "occupancy": occupancy,
                "num_entries": mshr.num_entries,
                "inflight": {hex(b): r for b, r in mshr.in_flight_blocks().items()},
            },
        )
    if mshr.allocations != mshr.releases + occupancy:
        _fail(
            f"{name}.balance",
            f"allocations ({mshr.allocations}) != releases "
            f"({mshr.releases}) + in-flight ({occupancy})",
            cycle,
            {
                "allocations": mshr.allocations,
                "releases": mshr.releases,
                "occupancy": occupancy,
            },
        )


def check_bus(bus, name: str = "bus", cycle: Optional[int] = None) -> None:
    """Reservations are sorted, non-overlapping, positive-length."""
    previous_end = None
    reservations = bus.reservations()
    for start, end in reservations:
        dump = {
            "reservations": reservations,
            "busy_cycles": bus.busy_cycles,
            "transactions": bus.transactions,
        }
        if end <= start:
            _fail(
                f"{name}.reservation",
                f"non-positive reservation [{start}, {end})",
                cycle,
                dump,
            )
        if previous_end is not None and start < previous_end:
            _fail(
                f"{name}.occupancy",
                f"reservation [{start}, {end}) overlaps one ending at "
                f"{previous_end}: two transactions on a "
                "single-transaction bus",
                cycle,
                dump,
            )
        previous_end = end


def check_counter(
    counter, name: str = "counter", cycle: Optional[int] = None
) -> None:
    """A saturating counter's value is inside its clamp range."""
    if not counter.minimum <= counter.value <= counter.maximum:
        _fail(
            f"{name}.bounds",
            f"value {counter.value} escaped "
            f"[{counter.minimum}, {counter.maximum}]",
            cycle,
            {
                "value": counter.value,
                "minimum": counter.minimum,
                "maximum": counter.maximum,
            },
        )


def check_cache(cache, name: str = "cache", cycle: Optional[int] = None) -> None:
    """Set occupancy within associativity; hit/miss accounting closed."""
    if cache.hits + cache.misses != cache.accesses:
        _fail(
            f"{name}.accounting",
            f"hits ({cache.hits}) + misses ({cache.misses}) != "
            f"accesses ({cache.accesses})",
            cycle,
            {
                "hits": cache.hits,
                "misses": cache.misses,
                "accesses": cache.accesses,
            },
        )
    associativity = cache.associativity
    for index, cache_set in enumerate(cache._sets):
        if len(cache_set) > associativity:
            _fail(
                f"{name}.occupancy",
                f"set {index} holds {len(cache_set)} blocks in a "
                f"{associativity}-way cache",
                cycle,
                {
                    "set": index,
                    "blocks": [hex(b) for b in cache_set],
                    "associativity": associativity,
                },
            )


def check_stream_buffers(
    controller, cycle: Optional[int] = None, check_overlap: Optional[bool] = None
) -> None:
    """Structural coherence of every stream buffer in a controller.

    ``check_overlap`` defaults to the controller's own configuration:
    only architectures that forbid overlapping streams (Section 4.1)
    promise the cross-buffer uniqueness invariant.

    Under a pooled sharing policy (:mod:`repro.streambuf.sharing`) the
    pool-conservation laws are checked as well: entries owned across all
    buffers equal the pool's allocated count and never exceed its size,
    and no entry object is owned by two buffers at once.
    """
    buffers = getattr(controller, "buffers", None)
    if buffers is None:  # demand-based prefetchers have no buffers
        return
    if check_overlap is None:
        check_overlap = controller.config.check_overlap
    pool = getattr(controller, "pool", None)
    if pool is not None:
        owner_of_entry: Dict[int, int] = {}
        owned = 0
        for buffer in buffers:
            owned += len(buffer.entries)
            for entry in buffer.entries:
                previous = owner_of_entry.get(id(entry))
                if previous is not None:
                    _fail(
                        "streambuf.pool.ownership",
                        f"one entry object owned by buffers {previous} "
                        f"and {buffer.index}",
                        cycle,
                        {"buffers": [previous, buffer.index]},
                    )
                owner_of_entry[id(entry)] = buffer.index
        if owned != pool.allocated:
            _fail(
                "streambuf.pool.conservation",
                f"buffers own {owned} entries but the pool accounts for "
                f"{pool.allocated}",
                cycle,
                {
                    "owned": owned,
                    "allocated": pool.allocated,
                    "per_buffer": [len(b.entries) for b in buffers],
                },
            )
        if pool.allocated > pool.size or pool.allocated < 0:
            _fail(
                "streambuf.pool.capacity",
                f"{pool.allocated} entries allocated from a "
                f"{pool.size}-entry pool",
                cycle,
                {"allocated": pool.allocated, "size": pool.size},
            )
    owner_of_block: Dict[int, int] = {}
    for buffer in buffers:
        name = f"streambuf[{buffer.index}]"
        occupied = buffer.occupied_entries
        if occupied > len(buffer.entries):
            _fail(
                f"{name}.capacity",
                f"{occupied} occupied entries in a "
                f"{len(buffer.entries)}-entry buffer",
                cycle,
                {"occupied": occupied, "entries": len(buffer.entries)},
            )
        if not buffer.allocated and (occupied or buffer.state is not None):
            _fail(
                f"{name}.stale",
                f"unallocated buffer holds {occupied} entries "
                f"(stream state: {buffer.state!r})",
                cycle,
                {
                    "occupied": occupied,
                    "entries": [repr(e) for e in buffer.entries if e.occupied],
                },
            )
        check_counter(buffer.priority, f"{name}.priority", cycle)
        if cycle is not None and buffer.last_use_cycle > cycle:
            _fail(
                f"{name}.lru",
                f"last_use_cycle {buffer.last_use_cycle} is in the "
                f"future (clock at {cycle})",
                cycle,
                {"last_use_cycle": buffer.last_use_cycle},
            )
        if not buffer.allocated:
            continue
        for entry in buffer.entries:
            if not entry.occupied:
                continue
            if check_overlap and entry.block in owner_of_block:
                _fail(
                    "streambuf.overlap",
                    f"block {entry.block:#x} resident in buffers "
                    f"{owner_of_block[entry.block]} and {buffer.index} "
                    "with overlap checking on",
                    cycle,
                    {
                        "block": hex(entry.block),
                        "buffers": [owner_of_block[entry.block], buffer.index],
                    },
                )
            owner_of_block[entry.block] = buffer.index


# ----------------------------------------------------------------------
# The whole-machine checker
# ----------------------------------------------------------------------


class InvariantChecker:
    """Applies the component checks to one machine, on a sampling policy.

    Hook points:

    - :meth:`on_cycle` — the simulator calls this at cycle boundaries;
      at ``full`` level that is every cycle, at ``cheap`` level every
      ``invariant_sample_period`` cycles (the simulator's stepping
      stride already matches :attr:`stride`).
    - :meth:`on_miss` / :meth:`on_prefetch` — fired from inside the
      memory hierarchy on every demand miss / launched prefetch at
      ``full`` level, and on every ``invariant_sample_period``-th event
      at ``cheap`` level.

    The checker holds only plain references and dicts, so it snapshots
    along with the machine (monotonicity baselines survive a resume).
    """

    def __init__(self, config: SimConfig, hierarchy, controller=None) -> None:
        self.level = config.invariants
        self.sample_period = config.invariant_sample_period
        self.hierarchy = hierarchy
        self.controller = controller
        self.checks_run = 0
        self._misses_seen = 0
        self._prefetches_seen = 0
        self._last_cache_scan = -1
        self._stat_floor: Dict[str, int] = {}

    @property
    def stride(self) -> int:
        """Cycle stride the simulator should step at for :meth:`on_cycle`."""
        if self.level is InvariantLevel.FULL:
            return 1
        return self.sample_period

    # -- hook points ---------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Cycle-boundary sweep over every cheap structural invariant."""
        self.checks_run += 1
        hierarchy = self.hierarchy
        check_mshr(hierarchy.l1_mshr, "l1.mshr", cycle)
        check_mshr(hierarchy.l2_mshr, "l2.mshr", cycle)
        check_bus(hierarchy.l1_l2_bus, "l1_l2_bus", cycle)
        check_bus(hierarchy.l2_mem_bus, "l2_mem_bus", cycle)
        if self.controller is not None:
            check_stream_buffers(self.controller, cycle)
        self._check_stats(cycle)
        # Whole-cache set scans are O(sets); amortize them.
        if cycle - self._last_cache_scan >= _CACHE_SCAN_PERIOD:
            self._last_cache_scan = cycle
            check_cache(hierarchy.l1, "l1", cycle)
            check_cache(hierarchy.l2, "l2", cycle)

    def on_miss(self, cycle: int) -> None:
        """Per-demand-miss hook: MSHRs and the L1 just changed."""
        self._misses_seen += 1
        if (
            self.level is not InvariantLevel.FULL
            and self._misses_seen % self.sample_period
        ):
            return
        self.checks_run += 1
        check_mshr(self.hierarchy.l1_mshr, "l1.mshr", cycle)
        check_mshr(self.hierarchy.l2_mshr, "l2.mshr", cycle)
        self._check_stats(cycle)

    def on_prefetch(self, cycle: int) -> None:
        """Per-prefetch hook: buses and stream buffers just changed."""
        self._prefetches_seen += 1
        if (
            self.level is not InvariantLevel.FULL
            and self._prefetches_seen % self.sample_period
        ):
            return
        self.checks_run += 1
        check_bus(self.hierarchy.l1_l2_bus, "l1_l2_bus", cycle)
        check_bus(self.hierarchy.l2_mem_bus, "l2_mem_bus", cycle)
        if self.controller is not None:
            check_stream_buffers(self.controller, cycle)

    def note_reset(self) -> None:
        """Statistics were deliberately reset (warm-up boundary)."""
        self._stat_floor.clear()

    # -- statistics invariants -----------------------------------------

    def _observed_stats(self) -> Dict[str, int]:
        hierarchy = self.hierarchy
        stats = {
            "hierarchy.demand_accesses": hierarchy.demand_accesses,
            "hierarchy.demand_misses": hierarchy.demand_misses,
            "hierarchy.sb_hits": hierarchy.sb_hits,
            "hierarchy.sb_pending_hits": hierarchy.sb_pending_hits,
            "hierarchy.prefetches_issued": hierarchy.prefetches_issued,
            "l1.accesses": hierarchy.l1.accesses,
            "l1.misses": hierarchy.l1.misses,
            "l2.accesses": hierarchy.l2.accesses,
        }
        controller = self.controller
        if controller is not None:
            stats["controller.prefetches_issued"] = controller.prefetches_issued
            stats["controller.prefetches_used"] = controller.prefetches_used
        return stats

    def _check_stats(self, cycle: Optional[int]) -> None:
        hierarchy = self.hierarchy
        if hierarchy.demand_misses > hierarchy.demand_accesses:
            _fail(
                "stats.consistency",
                f"demand_misses ({hierarchy.demand_misses}) exceeds "
                f"demand_accesses ({hierarchy.demand_accesses})",
                cycle,
                {
                    "demand_misses": hierarchy.demand_misses,
                    "demand_accesses": hierarchy.demand_accesses,
                },
            )
        observed = self._observed_stats()
        floor = self._stat_floor
        for key, value in observed.items():
            previous = floor.get(key)
            if previous is not None and value < previous:
                _fail(
                    "stats.monotonic",
                    f"counter {key} went backwards: {previous} -> {value} "
                    "without a warm-up reset",
                    cycle,
                    {"counter": key, "previous": previous, "current": value},
                )
            floor[key] = value


def build_checker(config: SimConfig, hierarchy, controller=None):
    """An :class:`InvariantChecker` for ``config``, or None when off."""
    if config.invariants is InvariantLevel.OFF:
        return None
    return InvariantChecker(config, hierarchy, controller)
