"""Deterministic mid-run snapshot and resume.

A snapshot captures the *entire* machine — caches, MSHRs, buses, stream
buffers, predictor tables, the core's in-flight window — plus the run
bookkeeping (:class:`repro.cpu.core._RunState`), as one pickle taken at
a cycle boundary.  The trace iterator itself is deliberately **not**
captured: traces here are deterministic (workload generators seeded, or
files), so a resume rebuilds the trace from its source and skips the
``records_consumed`` records the snapshotted run already pulled.  The
result is bit-identical to an uninterrupted run, which the test suite
asserts field-for-field.

This extends PR 1's between-runs checkpointing to *within*-run: a
campaign run killed by a timeout resumes from its last snapshot file
instead of restarting from instruction zero.
"""

from __future__ import annotations

import itertools
import os
import pickle
import uuid
import zlib
from typing import Iterable, Iterator, Optional

from repro.errors import IntegrityError, SimulationError
from repro.trace.record import TraceRecord


class SimSnapshot:
    """One resumable machine state, pickled at a cycle boundary.

    The machine lives in an opaque ``payload`` blob; :meth:`restore`
    deserializes a *fresh* object graph on every call, so one snapshot
    can seed many independent resumes (and resuming never aliases the
    simulator that produced it).
    """

    __slots__ = (
        "payload", "cycle", "records_consumed", "label", "checksum", "mode"
    )

    def __init__(
        self,
        payload: bytes,
        cycle: int,
        records_consumed: int,
        label: str,
        mode: str = "detailed",
    ) -> None:
        self.payload = payload
        self.cycle = cycle
        self.records_consumed = records_consumed
        self.label = label
        self.checksum = zlib.crc32(payload) & 0xFFFFFFFF
        #: Which driver captured this snapshot: ``"detailed"`` payloads
        #: hold ``(simulator, _RunState)`` pairs, ``"sampled"`` ones hold
        #: ``(simulator, _SamplingState)``.  Resume paths check the tag
        #: so a cross-mode resume fails loudly instead of deserializing
        #: the wrong state shape into a silently diverging run.
        self.mode = mode

    @classmethod
    def capture(
        cls, simulator, state, label: str = "run", mode: str = "detailed"
    ) -> "SimSnapshot":
        """Freeze ``simulator`` + its run ``state`` into a snapshot."""
        payload = pickle.dumps(
            (simulator, state), protocol=pickle.HIGHEST_PROTOCOL
        )
        return cls(
            payload, state.cycle, state.records_consumed, label, mode=mode
        )

    def verify(self) -> None:
        """Raise :class:`SimulationError` if the payload was modified.

        The checksum is taken over the machine-state pickle at capture
        time, so a bit flip anywhere in the (dominant) payload blob is
        caught before :meth:`restore` can deserialize garbage machine
        state into a resumed run.
        """
        found = zlib.crc32(self.payload) & 0xFFFFFFFF
        if found != self.checksum:
            raise SimulationError(
                f"corrupt snapshot {self.label!r}: payload CRC32 is "
                f"{found:#010x}, captured as {self.checksum:#010x}"
            )

    def restore(self):
        """A fresh ``(simulator, run_state)`` pair from the payload."""
        self.verify()
        return pickle.loads(self.payload)

    def save(self, path: str) -> None:
        """Write atomically: a reader never sees a torn snapshot."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            with open(tmp_path, "wb") as handle:
                pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    @classmethod
    def load(cls, path: str) -> "SimSnapshot":
        """Read and verify a snapshot file.

        Any failure — unreadable file, torn/truncated pickle, a payload
        whose CRC32 disagrees with the captured checksum — surfaces as
        :class:`SimulationError`, never a raw ``pickle``/``EOFError``
        traceback, so callers can quarantine the file and restart the
        run from scratch.
        """
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except SimulationError:
            raise
        except Exception as error:
            raise SimulationError(
                f"cannot read snapshot {path!r}: "
                f"{type(error).__name__}: {error}"
            )
        if not isinstance(snapshot, cls):
            raise SimulationError(
                f"{path!r} does not contain a simulation snapshot"
            )
        snapshot.verify()
        return snapshot

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        # Snapshots written before the checksum slot existed verify
        # against their own payload (no integrity claim either way).
        if "checksum" not in state:
            self.checksum = zlib.crc32(self.payload) & 0xFFFFFFFF
        # Snapshots written before sampling existed were all detailed.
        if "mode" not in state:
            self.mode = "detailed"

    def __repr__(self) -> str:
        return (
            f"SimSnapshot({self.label!r} @ cycle {self.cycle}, "
            f"{self.records_consumed} records, "
            f"{len(self.payload)} bytes)"
        )


def fast_forward(
    trace: Iterable[TraceRecord], records_consumed: int
) -> Iterator[TraceRecord]:
    """Skip the records a snapshotted run already consumed."""
    return itertools.islice(iter(trace), records_consumed, None)


def resume_run(
    snapshot: SimSnapshot,
    trace: Iterable[TraceRecord],
    label: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    snapshot_sink=None,
):
    """Continue a snapshotted run to completion.

    ``trace`` must be (a fresh instance of) the same deterministic trace
    the original run consumed; the first ``snapshot.records_consumed``
    records are skipped.  Returns the same
    :class:`~repro.sim.results.SimulationResult` an uninterrupted run
    would, with ``extra["resumed_from_cycle"]`` marking the seam.

    Only ``"detailed"`` snapshots can resume here; a sampled-mode
    snapshot carries driver state the detailed loop cannot interpret, so
    it must resume through :func:`repro.sampling.driver.resume_sampled`.
    """
    if snapshot.mode != "detailed":
        raise IntegrityError(
            f"snapshot {snapshot.label!r} was captured in "
            f"{snapshot.mode!r} mode and cannot resume into the detailed "
            f"loop; use repro.sampling.driver.resume_sampled"
        )
    simulator, state = snapshot.restore()
    source = fast_forward(trace, snapshot.records_consumed)
    result = simulator._drive(
        state,
        source,
        label if label is not None else snapshot.label,
        snapshot_every=snapshot_every,
        snapshot_sink=snapshot_sink,
    )
    result.extra["resumed_from_cycle"] = float(snapshot.cycle)
    return result
