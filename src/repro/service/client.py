"""Minimal stdlib HTTP client for the campaign service.

Used by the ``submit`` and ``jobs`` CLI commands and the smoke tests.
Deliberately tiny: one function that speaks JSON over
``urllib.request`` and maps connection-level failures to
:class:`~repro.errors.ServiceError` so the CLI's error taxonomy stays
uniform.  HTTP *status* errors are not raised — the caller gets the
status code and decides (a 429 with ``Retry-After`` is a protocol
answer, not an exception).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError

__all__ = ["request_json"]


def request_json(
    method: str,
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], Any]:
    """``(status, headers, body)`` for one JSON request.

    ``body`` is the parsed JSON document when the response claims (or
    parses as) JSON, else the raw text.  Raises
    :class:`ServiceError` only when no HTTP response came back at all
    (refused connection, DNS failure, timeout).
    """
    data = None
    request = urllib.request.Request(url, method=method.upper())
    if payload is not None:
        data = json.dumps(payload).encode()
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(
            request, data=data, timeout=timeout
        ) as response:
            status = response.status
            headers = {k.lower(): v for k, v in response.headers.items()}
            raw = response.read()
    except urllib.error.HTTPError as error:
        status = error.code
        headers = {k.lower(): v for k, v in error.headers.items()}
        raw = error.read()
    except (urllib.error.URLError, OSError) as error:
        raise ServiceError(
            f"cannot reach campaign service at {url}: {error}"
        )
    text = raw.decode(errors="replace")
    try:
        body: Any = json.loads(text) if text else {}
    except json.JSONDecodeError:
        body = text
    return status, headers, body
