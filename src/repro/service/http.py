"""The campaign service: asyncio HTTP front end over the job store.

:class:`CampaignService` is the long-lived process the ROADMAP's
"simulation-as-a-service" north star asks for: clients POST sweep
specs, the service queues them durably (:mod:`repro.service.jobstore`),
executes each as a standard campaign via
:class:`~repro.runner.campaign.CampaignRunner`, and serves back live
progress events, manifests, and HTML reports.  Everything is stdlib:
the HTTP/1.1 server is a hand-rolled parser over
``asyncio.start_server`` (no frameworks to install, nothing to vendor).

Threading model — one rule: **all job-store and lease mutations happen
on the event-loop thread.**  The scheduler coroutine claims jobs,
reaps expired leases, and records completions; only the blocking
``CampaignRunner.run`` call is pushed to a thread-pool executor.  The
store therefore needs no locks, and every crash-recovery invariant is
enforced in exactly one place.

Crash-safety composition (each layer already proven separately):

- A job's run directory *is* a campaign directory under
  ``<service_dir>/runs/<job_id>/``, always executed with
  ``resume=True`` — so a job that died mid-flight re-runs only its
  unfinished points and reports bit-identical numbers (checkpoint
  replay round-trips results exactly).
- The job log replays on boot; the reaper re-enqueues ``running`` jobs
  whose lease has expired (waiting out the TTL rather than trusting
  pid liveness, which lies across reboots).
- Graceful drain (SIGTERM/SIGINT): stop admitting (503), ask every
  active runner to stop at its next safe boundary
  (:meth:`~repro.runner.campaign.CampaignRunner.request_stop`), let
  each write its resumable ``interrupted`` manifest, re-enqueue the
  jobs, flush pending job-log appends, exit.  A restart picks the
  queue back up with nothing lost and nothing torn.

Back-pressure: a full admission queue is an HTTP 429 with a
``Retry-After`` header; a draining server is a 503 with the same —
clients get an honest signal instead of a hung socket.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BackPressureError,
    ConfigError,
    LeaseLostError,
    ReproError,
    error_kind,
)
from repro.service.jobstore import JobRecord, JobStore

__all__ = ["CampaignService", "normalize_spec", "build_campaign"]

#: Spec fields a submission may set, with their defaults (None = required
#: or computed).  Unknown fields are rejected so a typo'd field name
#: fails loudly instead of silently running the default sweep.
_SPEC_FIELDS = (
    "workload",
    "machines",
    "instructions",
    "warmup",
    "seed",
    "workers",
    "timeout",
    "retries",
    "snapshot_every",
    "isolation",
)


def normalize_spec(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a submission payload into the canonical job spec.

    Canonicalization is what makes submission idempotent: two requests
    that mean the same sweep normalize to the same dict, hash to the
    same job_id, and land on the same job.  Raises
    :class:`~repro.errors.ConfigError` on anything malformed.
    """
    from repro.cli import MACHINES
    from repro.workloads.registry import workload_names

    if not isinstance(payload, dict):
        raise ConfigError("job spec must be a JSON object", field="job.spec")
    unknown = sorted(set(payload) - set(_SPEC_FIELDS))
    if unknown:
        raise ConfigError(
            f"unknown job spec field(s): {', '.join(unknown)}; "
            f"known: {', '.join(_SPEC_FIELDS)}",
            field="job.spec",
        )
    workload = payload.get("workload")
    if not isinstance(workload, str) or workload not in workload_names():
        raise ConfigError(
            f"job spec needs a known workload, got {workload!r}; "
            f"known: {', '.join(workload_names())}",
            field="job.workload",
        )
    machines = payload.get("machines", "all")
    if isinstance(machines, str):
        names = (
            sorted(MACHINES)
            if machines == "all"
            else [m.strip() for m in machines.split(",") if m.strip()]
        )
    elif isinstance(machines, list) and all(
        isinstance(m, str) for m in machines
    ):
        names = list(machines)
    else:
        raise ConfigError(
            f"job.machines must be 'all', a comma list, or a JSON list "
            f"of names, got {machines!r}",
            field="job.machines",
        )
    bad = sorted(set(names) - set(MACHINES))
    if bad:
        raise ConfigError(
            f"unknown machine(s) {', '.join(bad)}; "
            f"known: {', '.join(sorted(MACHINES))}",
            field="job.machines",
        )
    if not names:
        raise ConfigError("no machines selected", field="job.machines")

    def _int(name: str, default: int, minimum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigError(
                f"job.{name} must be an integer, got {value!r}",
                field=f"job.{name}",
            )
        if value < minimum:
            raise ConfigError(
                f"job.{name} must be >= {minimum}, got {value}",
                field=f"job.{name}",
            )
        return value

    instructions = _int("instructions", 5000, 1)
    warmup = _int("warmup", instructions // 3, 0)
    if warmup >= instructions:
        raise ConfigError(
            f"job.warmup ({warmup}) must be < instructions "
            f"({instructions})",
            field="job.warmup",
        )
    timeout = payload.get("timeout")
    if timeout is not None and (
        isinstance(timeout, bool)
        or not isinstance(timeout, (int, float))
        or timeout <= 0
    ):
        raise ConfigError(
            f"job.timeout must be a positive number or null, "
            f"got {timeout!r}",
            field="job.timeout",
        )
    snapshot_every = payload.get("snapshot_every")
    if snapshot_every is not None:
        if not isinstance(snapshot_every, int) or isinstance(
            snapshot_every, bool
        ) or snapshot_every < 1:
            raise ConfigError(
                f"job.snapshot_every must be a positive integer or "
                f"null, got {snapshot_every!r}",
                field="job.snapshot_every",
            )
    isolation = payload.get("isolation", "process")
    if isolation not in ("process", "inline"):
        raise ConfigError(
            f"job.isolation must be 'process' or 'inline', "
            f"got {isolation!r}",
            field="job.isolation",
        )
    workers = _int("workers", 1, 1)
    if isolation == "inline" and workers > 1:
        raise ConfigError(
            "job.workers > 1 requires process isolation",
            field="job.workers",
        )
    if isolation == "inline" and timeout is not None:
        raise ConfigError(
            "job.timeout requires process isolation",
            field="job.timeout",
        )
    return {
        "workload": workload,
        "machines": sorted(set(names)),
        "instructions": instructions,
        "warmup": warmup,
        "seed": _int("seed", 1, 0),
        "workers": workers,
        "timeout": timeout,
        "retries": _int("retries", 0, 0),
        "snapshot_every": snapshot_every,
        "isolation": isolation,
    }


def build_campaign(
    spec: Dict[str, Any],
) -> Tuple[List[Any], Dict[str, Any]]:
    """Turn a normalized job spec into ``(run_specs, runner_kwargs)``.

    The run_ids (``workload/machine``) match the ``sweep`` CLI exactly,
    so a job's campaign directory is interchangeable with a hand-run
    sweep's — same checkpoints, same manifest, same audit rules.
    """
    from repro.cli import MACHINES
    from repro.runner import RunSpec, WorkloadSpec

    specs = [
        RunSpec(
            run_id=f"{spec['workload']}/{machine}",
            config=MACHINES[machine](),
            trace=WorkloadSpec(spec["workload"], seed=spec["seed"]),
            max_instructions=spec["instructions"],
            warmup_instructions=spec["warmup"],
        )
        for machine in spec["machines"]
    ]
    runner_kwargs = {
        "workers": spec["workers"],
        "timeout": spec["timeout"],
        "retries": spec["retries"],
        "on_error": "skip",
        "isolation": spec["isolation"],
        "snapshot_every": spec["snapshot_every"],
        "resume": True,
    }
    return specs, runner_kwargs


class _ActiveJob:
    """Book-keeping for one job currently executing in this process."""

    __slots__ = (
        "record", "lease", "task", "events", "lease_lost", "_request_stop"
    )

    def __init__(self, record: JobRecord, lease: Any) -> None:
        self.record = record
        self.lease = lease
        self.task: Optional[asyncio.Task] = None
        #: Progress events buffered for ``GET /jobs/<id>/events``.
        self.events: List[Dict[str, Any]] = []
        self.lease_lost = False
        #: Set to the runner's ``request_stop`` once the job's runner
        #: exists; the drain path calls it cross-thread.
        self._request_stop: Optional[Callable[[], None]] = None


class CampaignService:
    """The crash-safe campaign server.  See the module docstring."""

    def __init__(
        self,
        service_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        job_workers: int = 1,
        lease_ttl: float = 30.0,
        renew_interval: Optional[float] = None,
        max_queued: int = 16,
        max_expiries: int = 3,
        retry_after: float = 2.0,
        poll_interval: float = 0.1,
        chaos: Optional[Any] = None,
    ) -> None:
        from repro.runner.chaos import ChaosEngine

        self.service_dir = service_dir
        self.host = host
        self.port = port
        self.job_workers = max(1, job_workers)
        self.lease_ttl = lease_ttl
        self.renew_interval = (
            renew_interval if renew_interval is not None else lease_ttl / 3.0
        )
        self.poll_interval = poll_interval
        self.chaos = (
            ChaosEngine(chaos)
            if chaos is not None and not chaos.is_noop
            else None
        )
        self.store = JobStore(
            service_dir,
            max_queued=max_queued,
            max_expiries=max_expiries,
            lease_ttl=lease_ttl,
            retry_after=retry_after,
            chaos=self.chaos,
        )
        #: Unique identity of this server incarnation; lease owner
        #: strings embed it so a restarted server never confuses its
        #: own leases with a predecessor's.
        self.owner = (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"
        )
        self.draining = False
        self._active: Dict[str, _ActiveJob] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler loop."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        self._scheduler = asyncio.get_event_loop().create_task(
            self._schedule_loop()
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, wind down, flush, close.

        Active jobs are asked to stop at their next safe boundary;
        their runners write resumable ``interrupted`` manifests, the
        jobs go back to ``queued``, and a restarted server (or another
        worker) resumes them from their checkpoints.
        """
        if self.draining:
            return
        self.draining = True
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
        for active in list(self._active.values()):
            # request_stop was stashed on the active job when its
            # runner was built; jobs that never got that far just
            # finish naturally below.
            stop = getattr(active, "_request_stop", None)
            if callable(stop):
                stop()
        for active in list(self._active.values()):
            if active.task is not None:
                try:
                    await active.task
                except Exception:  # pragma: no cover - job task logs itself
                    pass
        self.store.flush_pending()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def run(
        self, on_ready: Optional[Callable[["CampaignService"], None]] = None
    ) -> None:
        """Start, serve until SIGTERM/SIGINT, then drain and return."""
        await self.start()
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_event_loop()
        stop_event = asyncio.Event()
        import signal as _signal

        installed = []
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.drain()

    # -- scheduler -----------------------------------------------------

    async def _schedule_loop(self) -> None:
        """Claim work while capacity allows; reap lost leases."""
        while True:
            active_ids = frozenset(self._active)
            self.store.reap(exclude=active_ids)
            while not self.draining and len(self._active) < self.job_workers:
                claimed = self.store.claim(self.owner)
                if claimed is None:
                    break
                record, lease = claimed
                active = _ActiveJob(record, lease)
                self._active[record.job_id] = active
                active.task = asyncio.get_event_loop().create_task(
                    self._run_job(active)
                )
            await asyncio.sleep(self.poll_interval)

    async def _run_job(self, active: _ActiveJob) -> None:
        """Execute one claimed job; runs on the event loop, simulation
        in the executor, heartbeats as a sibling task."""
        from repro.obs.progress import CampaignProgress
        from repro.runner.campaign import CampaignRunner

        record = active.record
        loop = asyncio.get_event_loop()
        seq = [0]

        def _emit(line: str) -> None:
            seq[0] += 1
            event = {
                "seq": seq[0],
                "job_id": record.job_id,
                "line": line,
            }
            loop.call_soon_threadsafe(active.events.append, event)

        manifest: Optional[Dict[str, Any]] = None
        failure: Optional[BaseException] = None
        runner: Optional[CampaignRunner] = None
        heartbeat: Optional[asyncio.Task] = None
        try:
            try:
                specs, runner_kwargs = build_campaign(record.spec)
                runner = CampaignRunner(
                    self.store.run_dir(record.job_id),
                    progress=CampaignProgress(emit=_emit),
                    **runner_kwargs,
                )
            except Exception as error:
                # A spec that normalized at submission but cannot build
                # a campaign anymore (machine registry drift, bad
                # kwargs) is a terminal failure, never a requeue loop.
                failure = error
            else:
                # Drain needs a handle on the runner's stop switch.
                active._request_stop = runner.request_stop
                heartbeat = loop.create_task(
                    self._heartbeat_loop(active, runner)
                )
                try:
                    await loop.run_in_executor(None, runner.run, specs)
                except ReproError as error:
                    failure = error
                except Exception as error:  # pragma: no cover - defensive
                    failure = error
                manifest_path = os.path.join(
                    self.store.run_dir(record.job_id), "manifest.json"
                )
                if os.path.exists(manifest_path):
                    try:
                        with open(manifest_path) as handle:
                            manifest = json.load(handle)
                    except (OSError, json.JSONDecodeError):
                        manifest = None
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
                try:
                    await heartbeat
                except asyncio.CancelledError:
                    pass
            self._finish_job(active, manifest, failure)
            self._active.pop(record.job_id, None)

    async def _heartbeat_loop(
        self, active: _ActiveJob, runner: Any
    ) -> None:
        """Renew the job's lease every ``renew_interval`` seconds.

        Chaos can drop a renewal (simulating a wedged worker: the lease
        silently ages out) or steal the lease (simulating the expired-
        lease race: another owner fenced us).  Both end the same way —
        the job is abandoned locally, the reaper or the thief owns it.
        """
        record = active.record
        while True:
            await asyncio.sleep(self.renew_interval)
            fault = (
                self.chaos.lease_renewal_fault() if self.chaos else None
            )
            if fault == "drop":
                active.lease_lost = True
                runner.request_stop()
                return
            if fault == "steal":
                self.store.leases.force_expire(active.lease)
            try:
                active.lease = await asyncio.get_event_loop().run_in_executor(
                    None, self.store.heartbeat, record, active.lease
                )
            except LeaseLostError:
                active.lease_lost = True
                runner.request_stop()
                return

    def _finish_job(
        self,
        active: _ActiveJob,
        manifest: Optional[Dict[str, Any]],
        failure: Optional[BaseException],
    ) -> None:
        """Record the job's outcome in the store (event-loop thread)."""
        record = active.record
        if active.lease_lost:
            # We were fenced out.  Say nothing: the lease's new owner
            # (or the reaper, after TTL) decides the job's fate.  Our
            # checkpointed points survive for whoever resumes.
            return
        status = (manifest or {}).get("status")
        if failure is None and status == "complete":
            summary = {
                key: (manifest or {}).get(key)
                for key in ("total_points", "ok", "failed", "poisoned")
            }
            try:
                self.store.complete(
                    record, active.lease, "done", summary=summary
                )
            except LeaseLostError:
                pass
            return
        if failure is None and status in (None, "interrupted"):
            # Drained or stopped before finishing: hand the job back.
            self.store.requeue(record, active.lease)
            return
        error: Dict[str, Any] = {
            "kind": error_kind(failure) if failure else "SimulationError",
            "message": (
                str(failure)
                if failure
                else f"campaign ended with status {status!r}"
            ),
        }
        try:
            self.store.complete(record, active.lease, "failed", error=error)
        except LeaseLostError:
            pass

    # -- HTTP ----------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, headers, body = await self._handle_request(reader)
        except Exception:  # pragma: no cover - parse error on close
            status, headers, body = 400, {}, b'{"error": "bad request"}\n'
        reason = {
            200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 503: "Service Unavailable",
        }.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}"]
        headers.setdefault("Content-Type", "application/json")
        headers["Content-Length"] = str(len(body))
        headers["Connection"] = "close"
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {}, b'{"error": "empty request"}\n'
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {}, b'{"error": "malformed request line"}\n'
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return self._route(method.upper(), target.split("?", 1)[0], body)

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if path == "/healthz" and method == "GET":
            counts = self.store.counts()
            return self._json(200, {
                "status": "draining" if self.draining else "ok",
                "owner": self.owner,
                "active": sorted(self._active),
                "jobs": counts,
            })
        if path == "/jobs" and method == "GET":
            return self._json(
                200, {"jobs": [r.public() for r in self.store.jobs()]}
            )
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            if method != "GET":
                return self._json(405, {"error": "method not allowed"})
            record = self.store.get(job_id)
            if record is None:
                return self._json(404, {"error": f"no job {job_id!r}"})
            if not sub:
                return self._json(200, record.public())
            if sub == "events":
                return self._events(job_id)
            if sub == "manifest":
                return self._manifest(record)
            if sub == "report":
                return self._report(record)
            return self._json(404, {"error": f"no resource {sub!r}"})
        return self._json(404, {"error": f"no route {path!r}"})

    def _submit(
        self, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self.draining:
            return self._json(
                503,
                {"error": "service is draining; resubmit after restart"},
                extra_headers={
                    "Retry-After": f"{self.store.retry_after:g}"
                },
            )
        try:
            payload = json.loads(body.decode() or "{}")
            spec = normalize_spec(payload)
        except json.JSONDecodeError:
            return self._json(400, {"error": "request body is not JSON"})
        except ConfigError as error:
            return self._json(400, {"error": str(error)})
        try:
            duplicated = (
                self.chaos.duplicate_submission() if self.chaos else False
            )
            record, created = self.store.submit(spec)
            if duplicated:
                # Chaos: the client's retry arrives twice.  Idempotency
                # must make the second submission a no-op.
                dup, dup_created = self.store.submit(spec)
                assert dup.job_id == record.job_id and not dup_created
        except BackPressureError as error:
            return self._json(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                extra_headers={"Retry-After": f"{error.retry_after:g}"},
            )
        return self._json(
            201 if created else 200,
            {"job": record.public(), "created": created},
        )

    def _events(self, job_id: str) -> Tuple[int, Dict[str, str], bytes]:
        active = self._active.get(job_id)
        events = active.events if active is not None else []
        lines = "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in events
        )
        return (
            200,
            {"Content-Type": "application/x-ndjson"},
            lines.encode(),
        )

    def _manifest(
        self, record: JobRecord
    ) -> Tuple[int, Dict[str, str], bytes]:
        path = os.path.join(
            self.store.run_dir(record.job_id), "manifest.json"
        )
        try:
            with open(path, "rb") as handle:
                return 200, {}, handle.read()
        except OSError:
            return self._json(
                404, {"error": f"job {record.job_id!r} has no manifest yet"}
            )

    def _report(
        self, record: JobRecord
    ) -> Tuple[int, Dict[str, str], bytes]:
        from repro.obs.report import campaign_report, markdown_to_html

        run_dir = self.store.run_dir(record.job_id)
        if not os.path.exists(os.path.join(run_dir, "manifest.json")):
            return self._json(
                404, {"error": f"job {record.job_id!r} has no report yet"}
            )
        markdown = campaign_report(run_dir)
        html = markdown_to_html(
            markdown, title=f"Job {record.job_id}"
        )
        return (
            200,
            {"Content-Type": "text/html; charset=utf-8"},
            html.encode(),
        )

    @staticmethod
    def _json(
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        headers = dict(extra_headers or {})
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        return status, headers, body.encode()
