"""Durable job queue: an append-only JSONL log with last-wins replay.

The store reuses the campaign checkpoint's line format
(:func:`~repro.runner.checkpoint.encode_entry` — per-line CRC32,
canonical JSON) for a different key: every state transition of every
job is appended to ``<service_dir>/jobs.jsonl`` as a ``job_id``-keyed
entry, and the current state of the world is the last valid entry per
``job_id``.  That one decision buys the whole crash-safety story:

- **Submission is durable** the moment the ``queued`` entry hits disk
  (appends fsync; a failed append queues in memory for
  :meth:`JobStore.flush_pending`, mirroring the checkpoint store).
- **Restart is replay**: a rebooted server reads the log and knows
  every job's last recorded state.  Jobs recorded ``running`` whose
  lease has expired are re-enqueued by :meth:`reap` — the crashed
  incarnation's work is not lost, because each job's *point-level*
  progress lives in its own campaign checkpoint under
  ``<service_dir>/runs/<job_id>/`` and re-execution resumes from it.
- **Torn writes are confined**: a SIGKILL mid-append leaves a fragment
  that fails CRC and is skipped; the next append heals the missing
  newline, and the superseded state is simply re-derived.

Idempotent submission falls out of content-addressing:
:func:`job_id_of` hashes the canonical spec JSON *together with the
code revision* (:func:`current_rev`), so re-POSTing the same sweep
returns the existing job instead of a duplicate — but the same sweep
submitted against different code is a different job.  Keying on spec
alone was a bug: a service upgraded in place would dedupe a fresh
submission onto a job whose recorded results came from old code.
Legacy logs written before revision keying replay fine (their records
simply carry no ``rev``); ``repro-sim audit`` flags any job_id whose
entries mix revisions.  Exactly once is enforced at completion: :meth:`JobStore.complete` releases the
lease *before* appending the terminal entry and refuses (raises
:class:`~repro.errors.LeaseLostError`) if the lease was lost — a
fenced-out zombie can never write ``done``.

Back-pressure is the admission-side bound: ``queued`` jobs above
``max_queued`` raise :class:`~repro.errors.BackPressureError`, which
the HTTP layer maps to ``429`` + ``Retry-After``.  The repeated-expiry
budget is the execution-side bound: a job whose lease expires
``max_expiries`` times is declared ``poisoned`` (same terminal state
and error taxonomy as a campaign point that keeps killing its worker)
instead of being re-enqueued forever.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

from repro.errors import BackPressureError, LeaseLostError, ServiceError
from repro.runner.checkpoint import encode_entry, iter_checkpoint_lines
from repro.service.lease import LEASES_DIR, Lease, LeaseManager

__all__ = [
    "JOBS_NAME",
    "RUNS_DIR",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "current_rev",
    "job_id_of",
]

JOBS_NAME = "jobs.jsonl"
RUNS_DIR = "runs"

#: Every state a job can be in.  ``queued`` and ``running`` are
#: transient; the terminal trio deliberately matches the campaign
#: checkpoint's vocabulary (``ok`` maps to ``done`` because a job is a
#: whole campaign, not one point).
JOB_STATES = ("queued", "running", "done", "failed", "poisoned")
TERMINAL_STATES = ("done", "failed", "poisoned")


def current_rev() -> str:
    """The code revision jobs are keyed on.

    The working tree's hash (``git rev-parse HEAD^{tree}``) rather than
    the commit hash: two commits with identical trees produce identical
    results, so they should dedupe onto the same job.  Falls back to
    the short commit hash, then ``"unknown"`` outside a git checkout —
    an unknown rev still participates in the key, it just cannot
    distinguish code versions.
    """
    for args in (
        ["git", "rev-parse", "--short", "HEAD^{tree}"],
        ["git", "rev-parse", "--short", "HEAD"],
    ):
        try:
            out = subprocess.run(
                args, capture_output=True, text=True, timeout=10
            )
        except OSError:
            return "unknown"
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


def job_id_of(spec: Dict[str, Any], rev: Optional[str] = None) -> str:
    """Content address of a normalized job spec (idempotency key).

    With ``rev`` the address covers ``(spec, code revision)`` — the
    fixed keying that stops a re-submitted sweep from deduping onto
    results computed by different code.  ``rev=None`` reproduces the
    legacy spec-only address (what pre-revision logs were written
    with); :class:`JobStore` always passes its revision.
    """
    canonical = json.dumps(spec, sort_keys=True)
    if rev is not None:
        canonical = json.dumps(
            {"rev": rev, "spec": spec}, sort_keys=True
        )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class JobRecord:
    """The current state of one job, as replayed from the log."""

    job_id: str
    state: str
    spec: Dict[str, Any]
    submitted_at: float
    updated_at: float
    #: How many times a worker has claimed (or re-claimed) the job.
    claims: int = 0
    #: How many times the job's lease expired under a worker — the
    #: poison budget's counter.
    expiries: int = 0
    #: Owner string of the worker currently running the job, if any.
    owner: Optional[str] = None
    #: Code revision the job was submitted under.  ``None`` on records
    #: replayed from a pre-revision-keying log (tolerated: such jobs
    #: keep their legacy spec-only ids).
    rev: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    summary: Optional[Dict[str, Any]] = None

    def to_entry(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "claims": self.claims,
            "expiries": self.expiries,
        }
        if self.owner is not None:
            entry["owner"] = self.owner
        if self.rev is not None:
            entry["rev"] = self.rev
        if self.error is not None:
            entry["error"] = self.error
        if self.summary is not None:
            entry["summary"] = self.summary
        return entry

    @classmethod
    def from_entry(cls, entry: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=entry["job_id"],
            state=entry.get("state", "queued"),
            spec=entry.get("spec", {}),
            submitted_at=entry.get("submitted_at", 0.0),
            updated_at=entry.get("updated_at", 0.0),
            claims=entry.get("claims", 0),
            expiries=entry.get("expiries", 0),
            owner=entry.get("owner"),
            rev=entry.get("rev"),
            error=entry.get("error"),
            summary=entry.get("summary"),
        )

    def public(self) -> Dict[str, Any]:
        """The wire shape served to HTTP clients."""
        payload = self.to_entry()
        payload["terminal"] = self.state in TERMINAL_STATES
        return payload


class JobStore:
    """The service's durable source of truth for job state.

    Single-writer by design: all mutations happen on the service's
    scheduler thread (the event loop), so the in-memory ``_records``
    map and the on-disk log cannot diverge under concurrency.  The log
    is the recovery mechanism, not a coordination mechanism.
    """

    def __init__(
        self,
        service_dir: str,
        *,
        max_queued: int = 16,
        max_expiries: int = 3,
        lease_ttl: float = 30.0,
        retry_after: float = 2.0,
        chaos: Optional[Any] = None,
        clock: Callable[[], float] = time.time,
        rev: Optional[str] = None,
    ) -> None:
        if max_queued < 1:
            raise ServiceError(
                f"JobStore.max_queued: must be >= 1, got {max_queued}"
            )
        if max_expiries < 1:
            raise ServiceError(
                f"JobStore.max_expiries: must be >= 1, got {max_expiries}"
            )
        if lease_ttl <= 0:
            raise ServiceError(
                f"JobStore.lease_ttl: must be > 0, got {lease_ttl}"
            )
        self.service_dir = service_dir
        os.makedirs(service_dir, exist_ok=True)
        os.makedirs(os.path.join(service_dir, RUNS_DIR), exist_ok=True)
        self.jobs_path = os.path.join(service_dir, JOBS_NAME)
        self.max_queued = max_queued
        self.max_expiries = max_expiries
        self.retry_after = retry_after
        #: The revision new submissions are keyed on (auto-detected
        #: from the checkout unless injected for tests).
        self.rev = rev if rev is not None else current_rev()
        self.chaos = chaos
        self._clock = clock
        self.leases = LeaseManager(
            os.path.join(service_dir, LEASES_DIR), ttl=lease_ttl, clock=clock
        )
        #: job_id -> current record (replayed once, then kept in step).
        self._records: Dict[str, JobRecord] = {}
        #: Entries whose append failed, awaiting :meth:`flush_pending`.
        self._pending: List[Dict[str, Any]] = []
        self.append_failures = 0
        self._replay()

    # -- durability ----------------------------------------------------

    def _replay(self) -> None:
        for __, __, entry, problem in iter_checkpoint_lines(
            self.jobs_path, key="job_id"
        ):
            if problem is None and entry is not None:
                self._records[entry["job_id"]] = JobRecord.from_entry(entry)

    def _append(self, record: JobRecord) -> bool:
        """Durably log ``record``'s current state; mirror of
        :meth:`~repro.runner.checkpoint.CheckpointStore.append`."""
        entry = record.to_entry()
        line = encode_entry(entry) + "\n"
        fault = self.chaos.job_append_fault() if self.chaos else None
        try:
            if fault == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left")
            with open(self.jobs_path, "a+b") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
                if fault == "torn":
                    handle.write(line.encode()[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise OSError(errno.EIO, "injected: torn write")
                handle.write(line.encode())
                handle.flush()
                os.fsync(handle.fileno())
            return True
        except OSError:
            self.append_failures += 1
            self._pending.append(entry)
            return False

    def flush_pending(self) -> int:
        """Retry failed appends; how many are still stuck.

        The in-memory record is always current, so a re-append of a
        stale queued entry is harmless: the *current* state was
        appended after it and last-wins replay keeps the right one.
        To preserve that ordering the retry re-encodes the *current*
        record for each pending job_id rather than the stale entry.
        """
        still = list(self._pending)
        self._pending = []
        flushed_ids = []
        for entry in still:
            job_id = entry.get("job_id")
            if job_id in flushed_ids:
                continue
            flushed_ids.append(job_id)
            record = self._records.get(job_id)
            if record is not None:
                self._append(record)
        return len(self._pending)

    # -- queries -------------------------------------------------------

    def jobs(self) -> List[JobRecord]:
        """All records, oldest submission first (stable order)."""
        return sorted(
            self._records.values(),
            key=lambda r: (r.submitted_at, r.job_id),
        )

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._records.get(job_id)

    def counts(self) -> Dict[str, int]:
        tally = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            tally[record.state] = tally.get(record.state, 0) + 1
        return tally

    def run_dir(self, job_id: str) -> str:
        """The job's campaign directory (checkpoint + manifest live here)."""
        return os.path.join(self.service_dir, RUNS_DIR, job_id)

    # -- transitions ---------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Tuple[JobRecord, bool]:
        """Admit a normalized spec; ``(record, created)``.

        Idempotent *per code revision*: an identical spec under the
        same :attr:`rev` returns its existing job with
        ``created=False``, whatever state that job is in; the same
        spec under different code keys to a fresh job.  A full
        admission queue raises :class:`BackPressureError` — bounded
        queues fail loudly at the edge instead of slowly everywhere.
        """
        job_id = job_id_of(spec, self.rev)
        existing = self._records.get(job_id)
        if existing is not None:
            return existing, False
        queued = sum(
            1 for r in self._records.values() if r.state == "queued"
        )
        if queued >= self.max_queued:
            raise BackPressureError(
                f"admission queue full ({queued}/{self.max_queued} "
                f"jobs queued); retry after {self.retry_after:g}s",
                retry_after=self.retry_after,
            )
        now = self._clock()
        record = JobRecord(
            job_id=job_id,
            state="queued",
            spec=spec,
            submitted_at=now,
            updated_at=now,
            rev=self.rev,
        )
        self._records[job_id] = record
        self._append(record)
        return record, True

    def claim(self, owner: str) -> Optional[Tuple[JobRecord, Lease]]:
        """Hand the oldest queued job to ``owner`` under a fresh lease."""
        for record in self.jobs():
            if record.state != "queued":
                continue
            lease = self.leases.acquire(record.job_id, owner)
            if lease is None:
                continue
            record.state = "running"
            record.owner = owner
            record.claims += 1
            record.updated_at = self._clock()
            self._append(record)
            return record, lease
        return None

    def heartbeat(self, record: JobRecord, lease: Lease) -> Lease:
        """Renew the worker's lease; raises :class:`LeaseLostError`."""
        return self.leases.renew(lease)

    def complete(
        self,
        record: JobRecord,
        lease: Lease,
        state: str,
        summary: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Record a terminal state — release-then-append fencing.

        The lease release is the linearization point: it verifies owner
        and generation against the persisted lease, so of all the
        workers that ever held this job, exactly one can get past it.
        Only then is the terminal entry appended.  A worker that lost
        its lease gets :class:`LeaseLostError` and must walk away.
        """
        if state not in TERMINAL_STATES:
            raise ServiceError(
                f"JobStore.complete: {state!r} is not terminal "
                f"(expected one of {TERMINAL_STATES})"
            )
        if not self.leases.release(lease):
            raise LeaseLostError(
                f"lease on job {record.job_id!r} no longer held by "
                f"{lease.owner!r}; refusing to record {state!r}"
            )
        record.state = state
        record.owner = None
        record.error = error
        record.summary = summary
        record.updated_at = self._clock()
        self._append(record)
        return record

    def requeue(
        self, record: JobRecord, lease: Optional[Lease] = None
    ) -> JobRecord:
        """Put a running job back in the queue (graceful drain path)."""
        if lease is not None:
            self.leases.release(lease)
        record.state = "queued"
        record.owner = None
        record.updated_at = self._clock()
        self._append(record)
        return record

    def reap(self, exclude: FrozenSet[str] = frozenset()) -> List[JobRecord]:
        """Recover jobs whose worker stopped heartbeating.

        A job recorded ``running`` whose lease is missing or expired
        lost its worker (crash, SIGKILL, wedge past TTL).  Its expiry
        budget is charged; within budget it is re-enqueued (the next
        claim resumes the job's campaign checkpoint — no repeated
        work), over budget it is ``poisoned`` exactly like a campaign
        point that keeps taking its worker down.

        ``exclude`` lists job_ids still actively executing *in this
        process*: a locally running job whose lease was stolen or
        force-expired is left to its own runner to notice (via
        heartbeat failure) rather than re-enqueued while its old run
        still mutates the run directory.  Returns the records touched.
        """
        now = self._clock()
        touched: List[JobRecord] = []
        for record in self.jobs():
            if record.state != "running" or record.job_id in exclude:
                continue
            lease = self.leases.load(record.job_id)
            if lease is not None and not lease.expired(now):
                continue
            record.expiries += 1
            if lease is not None:
                try:
                    os.remove(
                        os.path.join(
                            self.leases.lease_dir,
                            f"{record.job_id}.lease",
                        )
                    )
                except OSError:
                    pass
            if record.expiries >= self.max_expiries:
                record.state = "poisoned"
                record.owner = None
                record.error = {
                    "kind": "WorkerPoisonedError",
                    "message": (
                        f"job lease expired {record.expiries} times "
                        f"(budget {self.max_expiries}); giving up"
                    ),
                }
                record.updated_at = now
                self._append(record)
            else:
                record.state = "queued"
                record.owner = None
                record.updated_at = now
                self._append(record)
            touched.append(record)
        return touched
