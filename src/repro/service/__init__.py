"""Crash-safe campaign service: durable queue, leases, HTTP front end.

The package turns the single-process campaign runner into a long-lived
server without weakening any of its durability guarantees:

- :mod:`repro.service.jobstore` — the durable job queue (CRC32 JSONL
  log, last-wins replay, back-pressure, poison budget).
- :mod:`repro.service.lease` — revocable job ownership with generation
  fencing (heartbeats, expiry, exactly-once completion).
- :mod:`repro.service.http` — the asyncio HTTP server and scheduler.
- :mod:`repro.service.client` — the stdlib client the CLI uses.
"""

from repro.service.http import CampaignService, build_campaign, normalize_spec
from repro.service.jobstore import (
    JOB_STATES,
    JOBS_NAME,
    RUNS_DIR,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    current_rev,
    job_id_of,
)
from repro.service.lease import LEASES_DIR, Lease, LeaseManager

__all__ = [
    "CampaignService",
    "build_campaign",
    "normalize_spec",
    "JobStore",
    "JobRecord",
    "current_rev",
    "job_id_of",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JOBS_NAME",
    "RUNS_DIR",
    "LEASES_DIR",
    "Lease",
    "LeaseManager",
]
