"""Lease-based job ownership with generation fencing.

A lease is the service's unit of *exclusive, revocable* ownership: a
worker that claims a job holds a lease on it and must renew (heartbeat)
the lease before its TTL runs out.  A worker that crashes, wedges, or
gets paused past the TTL simply stops renewing — no cleanup required —
and the reaper observes the expiry and re-enqueues the job.

The subtle failure this module exists for is the *zombie worker*: a
worker that was presumed dead (lease expired, job re-enqueued, maybe
re-claimed by someone else) but then wakes up and tries to record a
completion.  Each acquisition increments a monotonically increasing
**generation** number persisted in the lease file; renewal and release
verify both the owner string and the generation, so the zombie's next
heartbeat raises :class:`~repro.errors.LeaseLostError` and it abandons
the job without writing anything.  The job store orders *release before
terminal append* so a completion record can only ever be written by the
owner the lease file still names — the exactly-once half of the
service's crash-safety story (durable replay is the other half).

Lease files live under ``<service_dir>/leases/<job_id>.lease`` as small
JSON documents written atomically (temp file + ``os.replace``), so a
kill mid-renewal leaves the previous valid lease in place rather than a
torn file.  Time is injectable (``clock``) and the files store absolute
wall-clock timestamps, so expiry survives a full service restart — a
rebooted server waits out the TTL of leases left behind by its previous
incarnation instead of trusting process liveness checks.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import LeaseLostError
from repro.ioutil import atomic_write_json

__all__ = ["Lease", "LeaseManager", "LEASES_DIR"]

LEASES_DIR = "leases"
LEASE_SUFFIX = ".lease"


@dataclasses.dataclass(frozen=True)
class Lease:
    """One worker's revocable claim on one job (immutable snapshot)."""

    job_id: str
    owner: str
    #: Fencing token: bumped on every acquisition, verified on every
    #: renewal/release, so a stale holder can never act on the job.
    generation: int
    acquired_at: float
    renewed_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        return self.renewed_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class LeaseManager:
    """Acquire/renew/release leases persisted under ``lease_dir``.

    The manager is deliberately storage-dumb: one atomic JSON file per
    job, no locking beyond atomic replace.  The service runs a single
    scheduler thread, so the files never race locally; the fencing
    generation is what protects against *temporal* races (a holder
    acting after expiry), which no file lock can.
    """

    def __init__(
        self,
        lease_dir: str,
        ttl: float,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.lease_dir = lease_dir
        self.ttl = ttl
        self._clock = clock
        os.makedirs(lease_dir, exist_ok=True)

    def _path(self, job_id: str) -> str:
        return os.path.join(self.lease_dir, f"{job_id}{LEASE_SUFFIX}")

    def load(self, job_id: str) -> Optional[Lease]:
        """The persisted lease for ``job_id``, or None (missing/unreadable).

        An unreadable lease file (torn by a crash before atomic writes
        existed, or hand-edited) is treated as absent: the job is
        claimable, and the auditor flags the file.
        """
        path = self._path(job_id)
        try:
            with open(path) as handle:
                data = json.load(handle)
            if not isinstance(data, dict):
                return None
            return Lease.from_dict(data)
        except (OSError, json.JSONDecodeError, TypeError):
            return None

    def acquire(self, job_id: str, owner: str) -> Optional[Lease]:
        """Claim ``job_id`` for ``owner``; None when live-held by another.

        Succeeds over a missing, expired, or unreadable lease; the new
        lease's generation strictly exceeds any previously persisted
        one, fencing out the previous holder.
        """
        now = self._clock()
        previous = self.load(job_id)
        if (
            previous is not None
            and not previous.expired(now)
            and previous.owner != owner
        ):
            return None
        generation = (previous.generation + 1) if previous is not None else 1
        lease = Lease(
            job_id=job_id,
            owner=owner,
            generation=generation,
            acquired_at=now,
            renewed_at=now,
            ttl=self.ttl,
        )
        atomic_write_json(self._path(job_id), lease.to_dict())
        return lease

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: push the lease's expiry out by one TTL.

        Raises :class:`LeaseLostError` when the persisted lease is
        missing, names a different owner or generation (someone fenced
        us out), or has already expired (renewing a corpse would
        silently un-expire it under the reaper).
        """
        current = self.load(lease.job_id)
        if current is None:
            raise LeaseLostError(
                f"lease on job {lease.job_id!r} vanished "
                f"(held by {lease.owner!r})"
            )
        if (
            current.owner != lease.owner
            or current.generation != lease.generation
        ):
            raise LeaseLostError(
                f"lease on job {lease.job_id!r} was taken over by "
                f"{current.owner!r} (generation {current.generation} "
                f"> {lease.generation})"
            )
        now = self._clock()
        if current.expired(now):
            raise LeaseLostError(
                f"lease on job {lease.job_id!r} expired "
                f"{now - current.expires_at:.1f}s ago; "
                f"holder {lease.owner!r} must abandon the job"
            )
        renewed = dataclasses.replace(current, renewed_at=now)
        atomic_write_json(self._path(lease.job_id), renewed.to_dict())
        return renewed

    def release(self, lease: Lease) -> bool:
        """Drop the lease; True when we still owned it.

        False means the caller was already fenced out — it must not
        record any terminal state for the job.
        """
        current = self.load(lease.job_id)
        if (
            current is None
            or current.owner != lease.owner
            or current.generation != lease.generation
        ):
            return False
        try:
            os.remove(self._path(lease.job_id))
        except OSError:
            return False
        return True

    def force_expire(self, lease: Lease) -> None:
        """Rewrite the lease as already expired (chaos / admin tooling).

        Simulates the holder having silently stopped renewing long ago:
        the next ``renew`` from the old holder raises, and ``acquire``
        by anyone succeeds.
        """
        current = self.load(lease.job_id)
        if current is None:
            return
        expired = dataclasses.replace(
            current, renewed_at=self._clock() - current.ttl - 1.0
        )
        atomic_write_json(self._path(lease.job_id), expired.to_dict())
