"""Trace sources: anything iterable over :class:`TraceRecord`.

Workload generators yield records lazily; the helpers here let tests and
analyses cap, materialize, and profile traces without pulling the whole
stream into memory unless asked.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List

from repro.trace.record import InstrKind, TraceRecord

#: A trace source is simply an iterable of records.
TraceSource = Iterable[TraceRecord]


class ListTrace:
    """A trace backed by an in-memory list; reusable across runs."""

    def __init__(self, records: List[TraceRecord]) -> None:
        self._records = records

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]


def counted(source: TraceSource, limit: int) -> Iterator[TraceRecord]:
    """Yield at most ``limit`` records from ``source``."""
    return itertools.islice(iter(source), limit)


def materialize(source: TraceSource, limit: int) -> ListTrace:
    """Pull up to ``limit`` records into a reusable :class:`ListTrace`."""
    return ListTrace(list(counted(source, limit)))


def profile(source: TraceSource) -> dict:
    """Summarize a trace: counts per kind and load/store fractions.

    Used to validate that synthetic workloads hit the instruction-mix
    targets of Table 2.
    """
    counts = {kind: 0 for kind in InstrKind}
    total = 0
    for record in source:
        counts[record.kind] += 1
        total += 1
    loads = counts[InstrKind.LOAD]
    stores = counts[InstrKind.STORE]
    return {
        "total": total,
        "counts": counts,
        "load_fraction": loads / total if total else 0.0,
        "store_fraction": stores / total if total else 0.0,
        "branch_fraction": counts[InstrKind.BRANCH] / total if total else 0.0,
    }


def load_addresses(source: TraceSource) -> Iterator[int]:
    """Yield the effective address of every load in ``source``."""
    for record in source:
        if record.kind == InstrKind.LOAD:
            yield record.addr
