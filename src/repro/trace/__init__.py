"""Instruction-trace substrate: records, sources, and serialization."""

from repro.trace.record import InstrKind, TraceRecord, OP_LATENCY
from repro.trace.stream import (
    ListTrace,
    TraceSource,
    counted,
    materialize,
)

__all__ = [
    "InstrKind",
    "TraceRecord",
    "OP_LATENCY",
    "ListTrace",
    "TraceSource",
    "counted",
    "materialize",
]
