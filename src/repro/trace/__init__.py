"""Instruction-trace substrate: records, sources, and serialization."""

from repro.trace.binfmt import (
    compile_trace,
    load_binary_trace,
    load_binary_trace_list,
    sniff_binary,
)
from repro.trace.record import InstrKind, TraceRecord, OP_LATENCY
from repro.trace.stream import (
    ListTrace,
    TraceSource,
    counted,
    materialize,
)

__all__ = [
    "InstrKind",
    "TraceRecord",
    "OP_LATENCY",
    "ListTrace",
    "TraceSource",
    "counted",
    "materialize",
    "compile_trace",
    "load_binary_trace",
    "load_binary_trace_list",
    "sniff_binary",
]
