"""Trace serialization: save and reload instruction traces.

Workload generators are cheap to re-run, but saved traces make runs
bit-reproducible across library versions and let users bring their own
traces (e.g. converted from a real program's memory trace).  The format
is a compact text format, one record per line::

    # repro-trace v1
    L pc addr dep1 dep2        # load
    S pc addr dep1 dep2        # store
    B pc taken dep1 dep2       # branch
    A|M|D|F|X|V|N pc dep1 dep2 # IALU/IMUL/IDIV/FADD/FMUL/FDIV/NOP

All numbers are hexadecimal except the dependence distances.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.errors import TraceFormatError
from repro.trace.binfmt import load_binary_trace, sniff_binary
from repro.trace.record import InstrKind, TraceRecord

_HEADER = "# repro-trace v1"

_KIND_TO_CODE = {
    InstrKind.LOAD: "L",
    InstrKind.STORE: "S",
    InstrKind.BRANCH: "B",
    InstrKind.IALU: "A",
    InstrKind.IMUL: "M",
    InstrKind.IDIV: "D",
    InstrKind.FADD: "F",
    InstrKind.FMUL: "X",
    InstrKind.FDIV: "V",
    InstrKind.NOP: "N",
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


__all__ = [
    "TraceFormatError",
    "save_trace",
    "load_trace",
    "load_trace_list",
]


def _format_record(record: TraceRecord) -> str:
    code = _KIND_TO_CODE[record.kind]
    if record.is_memory:
        return (
            f"{code} {record.pc:x} {record.addr:x} "
            f"{record.dep1} {record.dep2}"
        )
    if record.is_branch:
        return (
            f"{code} {record.pc:x} {int(record.taken)} "
            f"{record.dep1} {record.dep2}"
        )
    return f"{code} {record.pc:x} {record.dep1} {record.dep2}"


def _parse_line(line: str, line_number: int) -> TraceRecord:
    fields = line.split()
    try:
        kind = _CODE_TO_KIND[fields[0]]
        pc = int(fields[1], 16)
        if kind in (InstrKind.LOAD, InstrKind.STORE):
            return TraceRecord(
                kind, pc, addr=int(fields[2], 16),
                dep1=int(fields[3]), dep2=int(fields[4]),
            )
        if kind == InstrKind.BRANCH:
            return TraceRecord(
                kind, pc, taken=bool(int(fields[2])),
                dep1=int(fields[3]), dep2=int(fields[4]),
            )
        return TraceRecord(kind, pc, dep1=int(fields[2]), dep2=int(fields[3]))
    except (KeyError, IndexError, ValueError) as error:
        raise TraceFormatError(
            f"line {line_number}: cannot parse {line!r}",
            line_number=line_number,
            line=line,
        ) from error


def save_trace(
    destination: Union[str, IO[str]],
    records: Iterable[TraceRecord],
    limit: int = 0,
) -> int:
    """Write ``records`` (up to ``limit``, 0 = all) as a trace file.

    Returns the number of records written.
    """

    def _write(handle: IO[str]) -> int:
        handle.write(_HEADER + "\n")
        written = 0
        for record in records:
            if limit and written >= limit:
                break
            handle.write(_format_record(record) + "\n")
            written += 1
        return written

    if isinstance(destination, str):
        with open(destination, "w") as handle:
            return _write(handle)
    return _write(destination)


def load_trace(
    source: Union[str, IO[str]],
    strict: bool = True,
    errors: Optional[List[TraceFormatError]] = None,
) -> Iterator[TraceRecord]:
    """Lazily yield records from a trace file or open handle.

    Blank lines and ``#`` comments are tolerated anywhere in the file.
    With ``strict=False`` unparseable records are skipped instead of
    aborting the load; each skipped record's :class:`TraceFormatError`
    (carrying ``line_number`` and ``line``) is appended to ``errors``
    when a list is supplied, so callers can count and report them.  A
    missing or wrong header always raises: the file cannot be a trace.

    A path that starts with the compiled-trace magic is transparently
    loaded via :func:`repro.trace.binfmt.load_binary_trace`; compiled
    traces have no malformed-record state, so ``strict``/``errors``
    are moot there (validation is wholesale, at the header).
    """

    def _read(handle: IO[str]) -> Iterator[TraceRecord]:
        first = handle.readline().rstrip("\n")
        if first != _HEADER:
            raise TraceFormatError(
                f"bad header: expected {_HEADER!r}, got {first!r}",
                line_number=1,
                line=first,
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield _parse_line(line, line_number)
            except TraceFormatError as error:
                if strict:
                    raise
                if errors is not None:
                    errors.append(error)

    if isinstance(source, str):
        if sniff_binary(source):
            yield from load_binary_trace(source)
            return
        try:
            handle = open(source)
        except OSError as error:
            raise TraceFormatError(f"cannot open trace {source!r}: {error}")
        with handle:
            yield from _read(handle)
    else:
        yield from _read(source)


def load_trace_list(
    source: Union[str, IO[str]],
    strict: bool = True,
    errors: Optional[List[TraceFormatError]] = None,
) -> List[TraceRecord]:
    """Eagerly load a whole trace file (same options as :func:`load_trace`)."""
    return list(load_trace(source, strict=strict, errors=errors))
