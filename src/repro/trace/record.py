"""Dynamic-instruction trace records.

The simulator is execution-driven in spirit but trace-driven in practice:
workload generators emit a stream of :class:`TraceRecord` objects carrying
everything the timing model needs — opcode class, PC, effective address,
branch outcome, and register dependences expressed as *distances* back in
the dynamic instruction stream (a compact, ISA-independent encoding).
"""

from __future__ import annotations

from enum import IntEnum


class InstrKind(IntEnum):
    """Operation classes with distinct timing behaviour (Section 5.1)."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FADD = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    NOP = 9


#: Execution latency in cycles per kind (loads use the memory system instead).
OP_LATENCY = {
    InstrKind.IALU: 1,
    InstrKind.IMUL: 3,
    InstrKind.IDIV: 12,
    InstrKind.FADD: 2,
    InstrKind.FMUL: 4,
    InstrKind.FDIV: 12,
    InstrKind.LOAD: 1,  # address-generation portion; memory adds the rest
    InstrKind.STORE: 1,
    InstrKind.BRANCH: 1,
    InstrKind.NOP: 1,
}

#: Kinds whose functional units are not pipelined (Section 5.1).
UNPIPELINED_KINDS = frozenset({InstrKind.IDIV, InstrKind.FDIV})

MEMORY_KINDS = frozenset({InstrKind.LOAD, InstrKind.STORE})


class TraceRecord:
    """One dynamic instruction.

    Attributes
    ----------
    kind:
        The :class:`InstrKind` opcode class.
    pc:
        Static instruction address; predictors index by this.
    addr:
        Effective address for loads/stores; 0 otherwise.
    taken:
        Branch outcome; False for non-branches.
    dep1, dep2:
        Distances (in dynamic instructions) back to the producers of this
        instruction's source operands; 0 means "no dependence".  A pointer
        chase is a chain of loads with ``dep1 == 1``.
    """

    __slots__ = ("kind", "pc", "addr", "taken", "dep1", "dep2")

    def __init__(
        self,
        kind: InstrKind,
        pc: int,
        addr: int = 0,
        taken: bool = False,
        dep1: int = 0,
        dep2: int = 0,
    ) -> None:
        self.kind = kind
        self.pc = pc
        self.addr = addr
        self.taken = taken
        self.dep1 = dep1
        self.dep2 = dep2

    @property
    def is_memory(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def is_load(self) -> bool:
        return self.kind == InstrKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind == InstrKind.STORE

    @property
    def is_branch(self) -> bool:
        return self.kind == InstrKind.BRANCH

    def __repr__(self) -> str:
        parts = [f"{self.kind.name} pc={self.pc:#x}"]
        if self.is_memory:
            parts.append(f"addr={self.addr:#x}")
        if self.is_branch:
            parts.append(f"taken={self.taken}")
        if self.dep1 or self.dep2:
            parts.append(f"deps=({self.dep1},{self.dep2})")
        return f"TraceRecord({' '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.pc == other.pc
            and self.addr == other.addr
            and self.taken == other.taken
            and self.dep1 == other.dep1
            and self.dep2 == other.dep2
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.pc, self.addr, self.taken, self.dep1, self.dep2))
