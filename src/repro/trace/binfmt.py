"""Packed binary trace format (``.rtb`` — repro trace binary).

Text traces re-parse every line on every sweep point; a campaign that
visits the same workload hundreds of times spends more wall time in
``int(x, 16)`` than in the simulator.  This module lowers a record
stream into a fixed-stride struct array that loads with one ``mmap``
and one ``struct.iter_unpack`` — no per-field parsing at all.

Layout (little-endian throughout)::

    offset  size  field
    0       8     magic  b"RTRACE\\x00\\x01"
    8       2     format version (u16)
    10      2     record size in bytes (u16)
    12      4     CRC32 of the record payload (u32)
    16      8     record count (u64)
    24      ...   records, ``record size`` bytes each

Each record is ``<BBIIQQ``: kind (u8), taken (u8), dep1 (u32),
dep2 (u32), pc (u64), addr (u64) — 26 bytes.  Dependence distances
beyond the u32 range cannot occur (the core only looks back a ROB's
worth of instructions), but :func:`compile_trace` validates them
anyway rather than silently truncating.

The version lives in the header, not the magic, so a reader can say
"stale version" rather than "not a trace".  The payload CRC32 is
back-patched into the header at compile time and verified on every
load, so a truncated, bit-flipped, or torn compiled trace is rejected
up front — a corrupt cache entry can never feed garbage records into a
simulation.  Any header mismatch raises
:class:`~repro.errors.TraceFormatError` whose message carries the file
offset and the expected-vs-found detail, mirroring the line-numbered
errors of the text parser.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import time
import uuid
import zlib
from typing import IO, Iterable, Iterator, List, Union

from repro.errors import TraceFormatError
from repro.trace.record import InstrKind, TraceRecord

#: File magic: identifies the container, not the record layout.
MAGIC = b"RTRACE\x00\x01"

#: Bump on any change to the record struct or header semantics.
#: v2 repurposed the reserved header bytes as a payload CRC32.
VERSION = 2

_HEADER = struct.Struct("<8sHHIQ")
_RECORD = struct.Struct("<BBIIQQ")

HEADER_BYTES = _HEADER.size
RECORD_BYTES = _RECORD.size

#: Suggested extension for compiled traces.
SUFFIX = ".rtb"

_MAX_DEP1 = (1 << 32) - 1
_MAX_DEP2 = (1 << 32) - 1
_MAX_U64 = (1 << 64) - 1

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_BYTES",
    "RECORD_BYTES",
    "SUFFIX",
    "binary_trace_count",
    "compile_trace",
    "load_binary_trace",
    "load_binary_trace_list",
    "read_header",
    "sniff_binary",
]

#: Temp files this old (seconds) are presumed orphaned by a dead writer.
_STALE_TMP_SECONDS = 3600.0


def _sweep_stale_tmp(destination: str, max_age: float = _STALE_TMP_SECONDS) -> None:
    """Remove orphaned ``destination + ".tmp*"`` files left by writers
    that died mid-compile.  Only files older than ``max_age`` go — a
    young temp file may belong to a live concurrent compiler."""
    directory = os.path.dirname(destination) or "."
    prefix = os.path.basename(destination) + ".tmp"
    try:
        entries = os.listdir(directory)
    except OSError:
        return
    now = time.time()
    for entry in entries:
        if not entry.startswith(prefix):
            continue
        path = os.path.join(directory, entry)
        try:
            if now - os.path.getmtime(path) > max_age:
                os.unlink(path)
        except OSError:
            pass


def _pack_record(record: TraceRecord, index: int) -> bytes:
    dep1 = record.dep1
    dep2 = record.dep2
    pc = record.pc
    addr = record.addr
    if not 0 <= dep1 <= _MAX_DEP1 or not 0 <= dep2 <= _MAX_DEP2:
        raise TraceFormatError(
            f"record {index}: dependence distances ({dep1}, {dep2}) "
            f"exceed the binary format's field widths"
        )
    if not 0 <= pc <= _MAX_U64 or not 0 <= addr <= _MAX_U64:
        raise TraceFormatError(
            f"record {index}: pc/addr ({pc:#x}, {addr:#x}) do not fit in "
            f"64 bits"
        )
    return _RECORD.pack(
        int(record.kind), 1 if record.taken else 0, dep1, dep2, pc, addr
    )


def compile_trace(
    destination: Union[str, IO[bytes]],
    records: Iterable[TraceRecord],
    limit: int = 0,
) -> int:
    """Write ``records`` (up to ``limit``, 0 = all) as a binary trace.

    Returns the number of records written.  The count is back-patched
    into the header after the record stream is exhausted, so unbounded
    generators work (with a ``limit``) without materializing a list.
    """

    def _write(handle: IO[bytes]) -> int:
        handle.write(_HEADER.pack(MAGIC, VERSION, RECORD_BYTES, 0, 0))
        written = 0
        checksum = 0
        for record in records:
            if limit and written >= limit:
                break
            packed = _pack_record(record, written)
            checksum = zlib.crc32(packed, checksum)
            handle.write(packed)
            written += 1
        # Back-patch the count and the payload checksum now that the
        # stream is exhausted; readers verify both on every load.
        handle.seek(0)
        handle.write(
            _HEADER.pack(
                MAGIC, VERSION, RECORD_BYTES, checksum & 0xFFFFFFFF, written
            )
        )
        handle.seek(0, io.SEEK_END)
        return written

    if isinstance(destination, str):
        # Write to a temp name and rename into place, so readers (and
        # the workload cache) never observe a half-written trace.  The
        # temp name is unique per writer: concurrent processes compiling
        # the same cache entry (a parallel campaign's workers) must not
        # interleave into one file and rename a corrupt trace into place.
        tmp_path = f"{destination}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            with open(tmp_path, "wb") as handle:
                written = _write(handle)
            os.replace(tmp_path, destination)
        except OSError as error:
            raise TraceFormatError(
                f"cannot write binary trace {destination!r}: {error}"
            )
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            _sweep_stale_tmp(destination)
        return written
    return _write(destination)


def read_header(buffer: bytes, verify_checksum: bool = True) -> int:
    """Validate a binary-trace header; return the record count.

    Raises :class:`TraceFormatError` on anything that is not a current-
    version, well-formed, checksum-consistent trace: wrong magic (not a
    binary trace at all), stale version (recompile needed), wrong
    record stride, a count that disagrees with the payload length, or a
    payload whose CRC32 does not match the header (truncation at a
    record boundary, bit flips, torn writes).  Every message carries
    the byte offset of the problem and the expected-vs-found values.
    ``verify_checksum=False`` skips only the (payload-sized) CRC pass.
    """
    if len(buffer) < HEADER_BYTES:
        raise TraceFormatError(
            f"binary trace truncated at offset {len(buffer)}: expected "
            f"a {HEADER_BYTES}-byte header, found {len(buffer)} bytes"
        )
    magic, version, record_bytes, checksum, count = _HEADER.unpack_from(
        buffer, 0
    )
    if magic != MAGIC:
        raise TraceFormatError(
            f"not a binary trace: at offset 0 expected magic {MAGIC!r}, "
            f"found {bytes(magic)!r}"
        )
    if version != VERSION:
        raise TraceFormatError(
            f"stale binary trace: at offset 8 expected format version "
            f"{VERSION}, found {version} — recompile the trace"
        )
    if record_bytes != RECORD_BYTES:
        raise TraceFormatError(
            f"corrupt binary trace: at offset 10 expected "
            f"{RECORD_BYTES}-byte records, header claims {record_bytes}"
        )
    payload = len(buffer) - HEADER_BYTES
    if payload != count * RECORD_BYTES:
        raise TraceFormatError(
            f"corrupt binary trace: header claims {count} records "
            f"({count * RECORD_BYTES} payload bytes) but the payload "
            f"ends at offset {len(buffer)} ({payload} bytes — "
            f"{'truncated' if payload < count * RECORD_BYTES else 'trailing garbage'})"
        )
    if verify_checksum:
        found = zlib.crc32(memoryview(buffer)[HEADER_BYTES:]) & 0xFFFFFFFF
        if found != checksum:
            raise TraceFormatError(
                f"corrupt binary trace: header checksum {checksum:#010x} "
                f"but payload CRC32 is {found:#010x} (bytes "
                f"{HEADER_BYTES}..{len(buffer)} were modified after "
                f"compile)"
            )
    return count


def sniff_binary(path: str) -> bool:
    """Cheap test: does ``path`` start with the binary-trace magic?

    Used by loaders to auto-detect text vs binary traces.  Only the
    magic is checked; a True answer still needs :func:`read_header`'s
    full validation at load time.
    """
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _map_payload(path: str):
    """Open ``path`` and return a validated read-only buffer of it."""
    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                buffer = b""
            else:
                buffer = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
    except (OSError, ValueError) as error:
        raise TraceFormatError(
            f"cannot open binary trace {path!r}: {error}"
        )
    count = read_header(buffer)
    return buffer, count


def binary_trace_count(path: str) -> int:
    """Validate a compiled trace's header and return its record count.

    Cheap relative to a full load — one CRC32 pass over the mmap'd
    payload, no record objects — so callers like the workload-cache
    pre-warm can test "is this entry complete and uncorrupted?" without
    materializing the records.  Raises :class:`TraceFormatError` for a
    missing, stale, or corrupt file.
    """
    buffer, count = _map_payload(path)
    if isinstance(buffer, mmap.mmap):
        buffer.close()
    return count


def load_binary_trace(source: Union[str, bytes]) -> Iterator[TraceRecord]:
    """Lazily yield the records of a compiled trace.

    ``source`` is a file path (mmap-ed, so large traces do not load
    into memory up front) or an in-memory ``bytes`` buffer.  The binary
    format has no malformed-record state — every post-header stride is
    a record, validated wholesale by :func:`read_header` — so there is
    no ``strict`` knob; a file either loads fully or raises.
    """
    if isinstance(source, str):
        buffer, __ = _map_payload(source)
    else:
        buffer = source
        read_header(buffer)
    record_cls = TraceRecord.__new__
    kinds = list(InstrKind)
    index = 0
    try:
        for kind, taken, dep1, dep2, pc, addr in _RECORD.iter_unpack(
            memoryview(buffer)[HEADER_BYTES:]
        ):
            record = record_cls(TraceRecord)
            try:
                record.kind = kinds[kind]
            except IndexError:
                raise TraceFormatError(
                    f"corrupt binary trace: record {index} at offset "
                    f"{HEADER_BYTES + index * RECORD_BYTES} has unknown "
                    f"instruction kind {kind} (expected 0..{len(kinds) - 1})"
                )
            record.pc = pc
            record.addr = addr
            record.taken = taken != 0
            record.dep1 = dep1
            record.dep2 = dep2
            yield record
            index += 1
    except struct.error as error:
        # Cannot happen after read_header's length check, but a mmap of
        # a file truncated *while being read* could still get here.
        raise TraceFormatError(
            f"corrupt binary trace: record {index} at offset "
            f"{HEADER_BYTES + index * RECORD_BYTES} does not unpack: "
            f"{error}"
        )
    finally:
        if isinstance(buffer, mmap.mmap):
            buffer.close()


def load_binary_trace_list(source: Union[str, bytes]) -> List[TraceRecord]:
    """Eagerly load a whole compiled trace."""
    return list(load_binary_trace(source))
