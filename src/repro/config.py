"""Configuration dataclasses for every simulated component.

All values default to the baseline architecture of Section 5.1 of the
paper.  Configurations are frozen so a single config object can safely be
shared between sweeps; derived values (set counts, transfer cycles) are
computed by the components that consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.errors import ConfigError
from repro.utils import is_power_of_two


def _require(condition: bool, owner: str, field_name: str, message: str) -> None:
    """Raise a field-labelled :class:`ConfigError` unless ``condition``."""
    if not condition:
        qualified = f"{owner}.{field_name}"
        raise ConfigError(f"{qualified}: {message}", field=qualified)


class DisambiguationPolicy(Enum):
    """Load/store memory disambiguation policy (Section 6.1).

    ``PERFECT_STORE_SETS``: a load only waits on earlier in-flight stores
    to the same word and receives the value through a 2-cycle forward.
    ``NO_DISAMBIGUATION``: a load waits until every prior store has issued.
    """

    PERFECT_STORE_SETS = "perfect-store-sets"
    NO_DISAMBIGUATION = "no-disambiguation"


class PrefetcherKind(Enum):
    """Which prefetcher architecture fronts the L2 (Sections 3 and 6)."""

    NONE = "none"
    SEQUENTIAL = "sequential"  # Jouppi next-block streaming (extra baseline)
    STRIDE_PC = "stride-pc"  # Farkas et al. PC-stride stream buffers
    PREDICTOR_DIRECTED = "psb"  # this paper
    MIN_DELTA = "min-delta"  # Palacharla & Kessler stream buffers
    NEXT_LINE = "next-line"  # Smith's tagged next-line prefetching
    DEMAND_MARKOV = "demand-markov"  # Joseph & Grunwald Markov prefetcher


class InvariantLevel(Enum):
    """How aggressively the integrity layer checks runtime invariants.

    ``OFF`` disables checking entirely (zero overhead).  ``CHEAP``
    samples the hook points every ``SimConfig.invariant_sample_period``
    events, catching persistent corruption at a few percent overhead.
    ``FULL`` checks every hook invocation — the validation mode used by
    the smoke suite and the acceptance tests.
    """

    OFF = "off"
    CHEAP = "cheap"
    FULL = "full"


class AllocationPolicy(Enum):
    """Stream-buffer allocation filter (Section 4.3)."""

    ALWAYS = "always"
    TWO_MISS = "two-miss"
    CONFIDENCE = "confidence"


class SchedulingPolicy(Enum):
    """Stream-buffer predictor/bus scheduling (Section 4.4)."""

    ROUND_ROBIN = "round-robin"
    PRIORITY = "priority"


class BufferSharing(Enum):
    """How stream-buffer entries are partitioned across streams.

    ``FIXED`` is the paper's static partition (each buffer owns
    ``entries_per_buffer`` slots) and is bit-identical to the
    pre-sharing simulator.  ``HARMONIC`` and ``CREDENCE`` treat the
    entries as one shared pool allocated online across streams — see
    :mod:`repro.streambuf.sharing`.
    """

    FIXED = "fixed"
    HARMONIC = "harmonic"
    CREDENCE = "credence"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    block_size: int
    hit_latency: int
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        owner = f"CacheConfig({self.name})"
        _require(self.size_bytes > 0, owner, "size_bytes", "must be positive")
        _require(
            self.associativity > 0, owner, "associativity", "must be positive"
        )
        _require(self.hit_latency >= 0, owner, "hit_latency", "must be >= 0")
        _require(
            self.mshr_entries > 0, owner, "mshr_entries", "must be positive"
        )
        _require(
            self.block_size > 0 and is_power_of_two(self.block_size),
            owner, "block_size", "must be a power of two",
        )
        _require(
            self.size_bytes % (self.block_size * self.associativity) == 0,
            owner, "size_bytes", "not divisible into sets",
        )
        _require(self.num_sets >= 1, owner, "size_bytes", "fewer than one set")

    @property
    def num_sets(self) -> int:
        """Number of sets this geometry divides into."""
        return self.size_bytes // (self.block_size * self.associativity)

    @property
    def num_blocks(self) -> int:
        """Total number of block frames in the cache."""
        return self.size_bytes // self.block_size


@dataclass(frozen=True)
class BusConfig:
    """A bus that moves one request at a time at a fixed bytes/cycle rate."""

    name: str
    bytes_per_cycle: int

    def __post_init__(self) -> None:
        _require(
            self.bytes_per_cycle > 0,
            f"BusConfig({self.name})", "bytes_per_cycle", "must be positive",
        )

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles the bus stays busy moving ``num_bytes``."""
        return max(1, -(-num_bytes // self.bytes_per_cycle))


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory (DRAM) access parameters."""

    access_latency: int = 120

    def __post_init__(self) -> None:
        _require(
            self.access_latency >= 0,
            "MemoryConfig", "access_latency", "must be >= 0",
        )


@dataclass(frozen=True)
class TlbConfig:
    """Data TLB used to translate prefetch addresses (Section 4.5)."""

    entries: int = 128
    page_size: int = 4096
    miss_latency: int = 30

    def __post_init__(self) -> None:
        _require(self.entries > 0, "TlbConfig", "entries", "must be positive")
        _require(
            self.page_size > 0 and is_power_of_two(self.page_size),
            "TlbConfig", "page_size", "must be a power of two",
        )
        _require(
            self.miss_latency >= 0, "TlbConfig", "miss_latency", "must be >= 0"
        )


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Section 5.1)."""

    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    retire_width: int = 8
    rob_entries: int = 128
    lsq_entries: int = 64
    branch_predictions_per_cycle: int = 2
    mispredict_penalty: int = 8
    store_forward_latency: int = 2
    gshare_history_bits: int = 12
    disambiguation: DisambiguationPolicy = DisambiguationPolicy.PERFECT_STORE_SETS
    int_alu_units: int = 8
    load_store_units: int = 4
    fp_add_units: int = 2
    int_mul_div_units: int = 2
    fp_mul_div_units: int = 2

    def __post_init__(self) -> None:
        positive = (
            "fetch_width", "decode_width", "issue_width", "retire_width",
            "rob_entries", "lsq_entries", "branch_predictions_per_cycle",
            "int_alu_units", "load_store_units", "fp_add_units",
            "int_mul_div_units", "fp_mul_div_units",
        )
        for name in positive:
            _require(
                getattr(self, name) > 0, "CoreConfig", name, "must be positive"
            )
        _require(
            self.mispredict_penalty >= 0,
            "CoreConfig", "mispredict_penalty", "must be >= 0",
        )
        _require(
            self.gshare_history_bits > 0,
            "CoreConfig", "gshare_history_bits", "must be positive",
        )


@dataclass(frozen=True)
class StridePredictorConfig:
    """PC-indexed two-delta stride table (Sections 2.1 and 6)."""

    entries: int = 256
    associativity: int = 4
    confidence_max: int = 7
    confidence_initial: int = 0

    def __post_init__(self) -> None:
        owner = "StridePredictorConfig"
        _require(self.entries > 0, owner, "entries", "must be positive")
        _require(
            self.associativity > 0, owner, "associativity", "must be positive"
        )
        _require(
            self.confidence_max > 0, owner, "confidence_max",
            "must be positive",
        )
        _require(
            0 <= self.confidence_initial <= self.confidence_max,
            owner, "confidence_initial",
            f"must be within [0, confidence_max={self.confidence_max}]",
        )


@dataclass(frozen=True)
class MarkovPredictorConfig:
    """First-order differential Markov table (Section 4.2)."""

    entries: int = 2048
    delta_bits: int = 16
    differential: bool = True
    associativity: int = 4

    def __post_init__(self) -> None:
        owner = "MarkovPredictorConfig"
        _require(self.entries > 0, owner, "entries", "must be positive")
        _require(self.delta_bits > 0, owner, "delta_bits", "must be positive")
        _require(
            self.associativity > 0, owner, "associativity", "must be positive"
        )


@dataclass(frozen=True)
class StreamBufferConfig:
    """Stream-buffer array parameters (Sections 4 and 6)."""

    num_buffers: int = 8
    entries_per_buffer: int = 4
    allocation: AllocationPolicy = AllocationPolicy.CONFIDENCE
    scheduling: SchedulingPolicy = SchedulingPolicy.PRIORITY
    confidence_threshold: int = 1
    priority_max: int = 12
    priority_hit_bonus: int = 2
    priority_age_period: int = 10  # L1 data-cache misses between agings
    priority_age_amount: int = 1
    #: Section 4.5: store the TLB translation with each stream buffer and
    #: only re-walk when a prefetch crosses a page boundary.
    cache_tlb_translations: bool = False
    #: Section 3.3.2: Jouppi's original buffers were FIFOs probed only at
    #: the head; Farkas et al. made the lookup fully associative (the
    #: model the paper uses).  False selects the FIFO behaviour.
    associative_lookup: bool = True
    #: Section 3.3.2 / 4.1: Farkas et al. forbid two buffers following
    #: overlapping streams; disabling the check lets duplicate blocks be
    #: prefetched twice (an ablation knob).
    check_overlap: bool = True
    #: Beyond the paper: how entries are partitioned across streams.
    #: ``FIXED`` (the default) reproduces the paper's 8 x 4 exactly;
    #: the pooled policies share one entry pool online
    #: (:mod:`repro.streambuf.sharing`).
    sharing: BufferSharing = BufferSharing.FIXED
    #: Shared-pool capacity for the pooled sharing policies.  ``None``
    #: (the default) sizes the pool at ``num_buffers *
    #: entries_per_buffer`` — the same silicon as the fixed partition.
    #: Ignored under ``FIXED`` sharing.
    pool_entries: Optional[int] = None

    def __post_init__(self) -> None:
        owner = "StreamBufferConfig"
        _require(self.num_buffers > 0, owner, "num_buffers", "must be positive")
        _require(
            self.entries_per_buffer > 0,
            owner, "entries_per_buffer", "must be positive",
        )
        _require(
            self.pool_entries is None or self.pool_entries > 0,
            owner, "pool_entries", "must be positive when set",
        )
        _require(
            self.confidence_threshold >= 0,
            owner, "confidence_threshold", "must be >= 0",
        )
        _require(
            self.priority_max > 0, owner, "priority_max", "must be positive"
        )
        _require(
            self.priority_age_period > 0,
            owner, "priority_age_period", "must be positive",
        )

    @property
    def pool_size(self) -> int:
        """Shared-pool capacity: ``pool_entries`` or the full 8 x 4."""
        if self.pool_entries is not None:
            return self.pool_entries
        return self.num_buffers * self.entries_per_buffer


@dataclass(frozen=True)
class PrefetchConfig:
    """Which prefetcher to build and how to configure it."""

    kind: PrefetcherKind = PrefetcherKind.PREDICTOR_DIRECTED
    stream_buffers: StreamBufferConfig = field(default_factory=StreamBufferConfig)
    stride: StridePredictorConfig = field(default_factory=StridePredictorConfig)
    markov: MarkovPredictorConfig = field(default_factory=MarkovPredictorConfig)

    def __post_init__(self) -> None:
        # The allocation filter compares stream-buffer confidence against
        # the stride predictor's saturating counter, so the threshold must
        # lie inside that counter's range to ever admit or deny anything.
        _require(
            self.stream_buffers.confidence_threshold
            <= self.stride.confidence_max,
            "PrefetchConfig", "stream_buffers.confidence_threshold",
            f"outside counter range [0, {self.stride.confidence_max}]",
        )


@dataclass(frozen=True)
class SamplingConfig:
    """SMARTS-style systematic sampling (fast-forward + measured windows).

    The trace is divided into back-to-back periods of ``period`` records.
    Each period starts with a detailed window of ``warmup + window``
    instructions — the first ``warmup`` warm the timing state and are
    discarded, the remaining ``window`` are measured — and the rest of
    the period is replayed by the functional fast-forward engine
    (:mod:`repro.sampling`), which warms cache tags, branch-predictor
    state, and prefetcher tables at trace-replay speed.
    """

    #: Records per sampling period (detailed window + fast-forward gap).
    period: int = 50_000
    #: Measured detailed instructions per period.
    window: int = 1_000
    #: Detailed warm-up instructions preceding each measured window.
    warmup: int = 500
    #: Number of strata each period subdivides into.  ``1`` (the
    #: default) is the classic SMARTS grid: one ``window`` at each
    #: period's midpoint.  With ``s > 1`` the period's detailed budget
    #: splits into ``s`` sub-windows of ``window / s`` instructions
    #: (each preceded by ``warmup / s`` warm-up), one at the midpoint of
    #: each of the period's ``s`` strata — the same measured fraction
    #: spread across ``s`` phases of the period, so the estimate stops
    #: depending on which phase of a long program loop the single
    #: midpoint happened to land on (the phase-alignment bias visible on
    #: strongly phased workloads).  Must divide ``period``, ``window``,
    #: and ``warmup`` evenly.
    strata: int = 1
    #: Timing-aware predictor warm-up: when set, the fast-forward engine
    #: warms prefetcher state through
    #: :meth:`~repro.memory.hierarchy.PrefetcherPort.warm_confidence`,
    #: which trains the address/history tables at full rate but moves
    #: the accuracy-confidence and priority counters at a detuned rate —
    #: matching detailed steady state, where prefetch hits remove
    #: training events, instead of overshooting it.  Off by default so
    #: existing sampled results stay bit-identical.
    warm_confidence: bool = False

    def __post_init__(self) -> None:
        owner = "SamplingConfig"
        _require(self.period > 0, owner, "period", "must be positive")
        _require(self.window > 0, owner, "window", "must be positive")
        _require(self.warmup >= 0, owner, "warmup", "must be >= 0")
        _require(self.strata > 0, owner, "strata", "must be positive")
        if self.strata > 1:
            _require(
                self.period % self.strata == 0,
                owner, "strata", "must divide period evenly",
            )
            _require(
                self.window % self.strata == 0
                and self.window >= self.strata,
                owner, "strata", "must divide window evenly",
            )
            _require(
                self.warmup % self.strata == 0,
                owner, "strata", "must divide warmup evenly",
            )
        _require(
            self.window + self.warmup < self.period,
            owner, "window",
            "window + warmup must be smaller than the period",
        )

    @property
    def detailed_per_period(self) -> int:
        """Instructions simulated in detail each period."""
        return self.window + self.warmup


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration: the paper's baseline machine."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1_data: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D",
            size_bytes=32 * 1024,
            associativity=4,
            block_size=32,
            hit_latency=1,
        )
    )
    l2_unified: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2",
            size_bytes=1024 * 1024,
            associativity=4,
            block_size=64,
            hit_latency=12,
            mshr_entries=16,
        )
    )
    l1_l2_bus: BusConfig = field(
        default_factory=lambda: BusConfig(name="L1-L2", bytes_per_cycle=8)
    )
    l2_mem_bus: BusConfig = field(
        default_factory=lambda: BusConfig(name="L2-Mem", bytes_per_cycle=4)
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    prefetch: PrefetchConfig = field(
        default_factory=lambda: PrefetchConfig(kind=PrefetcherKind.NONE)
    )
    l2_pipeline_depth: int = 3
    warmup_instructions: int = 0
    max_cycles: Optional[int] = None
    #: Event-driven fast path: when the core is provably quiescent the
    #: main loop jumps straight to the next interesting cycle instead of
    #: stepping one cycle at a time.  Results are bit-identical either
    #: way (the equivalence tests assert it); the switch exists so any
    #: suspected fast-path divergence can be ruled out in one run.
    event_driven: bool = True
    #: Runtime invariant checking level (see :class:`InvariantLevel`).
    invariants: InvariantLevel = InvariantLevel.OFF
    #: Under ``CHEAP`` checking, hook points fire once every this many
    #: events (cycles, misses, or prefetches respectively).
    invariant_sample_period: int = 64
    #: When set, the observability layer (:mod:`repro.obs`) samples every
    #: registered metric into a time series once per this many cycles.
    #: ``None`` (the default) disables metrics collection entirely —
    #: components then talk to shared no-op instruments and the run is
    #: bit-identical to an unobserved one.
    metrics_interval: Optional[int] = None
    #: When set, runs use SMARTS-style systematic sampling: detailed
    #: measured windows alternating with functional fast-forward
    #: (:mod:`repro.sampling`).  ``None`` (the default) simulates every
    #: instruction in detail; the detailed path is untouched by the
    #: sampling machinery, so results stay bit-identical.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        _require(
            self.invariant_sample_period > 0,
            "SimConfig", "invariant_sample_period", "must be positive",
        )
        _require(
            self.metrics_interval is None or self.metrics_interval > 0,
            "SimConfig", "metrics_interval", "must be positive when set",
        )

    def with_invariants(
        self, level: InvariantLevel, sample_period: Optional[int] = None
    ) -> "SimConfig":
        """Return a copy of this config with invariant checking ``level``."""
        if sample_period is None:
            return replace(self, invariants=level)
        return replace(
            self, invariants=level, invariant_sample_period=sample_period
        )

    def with_event_driven(self, enabled: bool) -> "SimConfig":
        """Return a copy with the core's skip-ahead fast path toggled."""
        return replace(self, event_driven=enabled)

    def with_metrics(self, interval: Optional[int] = 1000) -> "SimConfig":
        """Return a copy with metrics sampling every ``interval`` cycles.

        Pass ``None`` to turn metrics collection back off.
        """
        return replace(self, metrics_interval=interval)

    def with_sampling(
        self,
        period: int = 50_000,
        window: int = 1_000,
        warmup: int = 500,
        strata: int = 1,
        warm_confidence: bool = False,
    ) -> "SimConfig":
        """Return a copy that runs under systematic sampling.

        ``strata`` splits each period's measured window across that many
        sub-strata (same detailed fraction, finer phase coverage);
        ``warm_confidence`` enables timing-aware (detuned) warming of
        predictor confidence counters.  The defaults reproduce the
        classic single-grid, full-rate warming bit-identically.
        """
        return replace(
            self,
            sampling=SamplingConfig(
                period=period,
                window=window,
                warmup=warmup,
                strata=strata,
                warm_confidence=warm_confidence,
            ),
        )

    def with_prefetcher(self, prefetch: PrefetchConfig) -> "SimConfig":
        """Return a copy of this config using ``prefetch``."""
        return replace(self, prefetch=prefetch)

    def with_sharing(
        self, sharing: BufferSharing, pool_entries: Optional[int] = None
    ) -> "SimConfig":
        """Return a copy using ``sharing`` for stream-buffer entries.

        ``pool_entries`` overrides the shared-pool capacity; ``None``
        keeps the default (``num_buffers * entries_per_buffer``).
        """
        buffers = replace(
            self.prefetch.stream_buffers,
            sharing=sharing,
            pool_entries=pool_entries,
        )
        return replace(
            self, prefetch=replace(self.prefetch, stream_buffers=buffers)
        )

    def with_l1(self, size_bytes: int, associativity: int) -> "SimConfig":
        """Return a copy with a resized L1 data cache (Figure 10 sweep)."""
        l1 = replace(
            self.l1_data, size_bytes=size_bytes, associativity=associativity
        )
        return replace(self, l1_data=l1)

    def with_disambiguation(self, policy: DisambiguationPolicy) -> "SimConfig":
        """Return a copy with a different load/store policy (Figure 11)."""
        core = replace(self.core, disambiguation=policy)
        return replace(self, core=core)
