"""The out-of-order core timing model (Section 5.1).

An 8-wide dynamically scheduled processor: gshare branch prediction (two
predictions per cycle), a 128-entry reorder buffer with a 64-entry
load/store queue, the paper's functional-unit mix and latencies, and a
selectable load/store disambiguation policy (perfect store sets or
no-disambiguation, Section 6.1).
"""

from repro.cpu.branch import GsharePredictor
from repro.cpu.core import CoreStats, OutOfOrderCore
from repro.cpu.funits import FunctionalUnits
from repro.cpu.storesets import StoreTracker

__all__ = [
    "GsharePredictor",
    "CoreStats",
    "OutOfOrderCore",
    "FunctionalUnits",
    "StoreTracker",
]
