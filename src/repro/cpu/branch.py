"""McFarling gshare branch prediction (Section 5.1).

The fetch unit is driven by a gshare predictor making up to two
predictions per cycle.  gshare XORs the global branch history with the
branch PC to index a table of two-bit saturating counters, decorrelating
different branches that share history patterns.
"""

from __future__ import annotations


class GsharePredictor:
    """Global-history XOR PC indexed table of 2-bit counters."""

    def __init__(self, history_bits: int = 12) -> None:
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self._mask = self.table_size - 1
        self._counters = [2] * self.table_size  # weakly taken
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, then train with the actual outcome.

        Returns True when the prediction was correct.  The global history
        is updated with the resolved outcome (the trace-driven front end
        never fetches down a wrong path, so no history repair is needed).
        """
        index = self._index(pc)
        predicted = self._counters[index] >= 2
        self.predictions += 1
        if taken:
            if self._counters[index] < 3:
                self._counters[index] += 1
        else:
            if self._counters[index] > 0:
                self._counters[index] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._mask
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
