"""Cycle-driven out-of-order core (Section 5.1).

The model keeps every mechanism the paper's results depend on:

- 8-wide fetch limited to two branch predictions per cycle, stalling on a
  gshare misprediction until the branch resolves plus an 8-cycle penalty;
- a 128-entry reorder buffer and 64-entry load/store queue; dispatch
  stalls when either is full, so long-latency misses back the window up;
- dependence-driven issue over the paper's functional-unit mix, with
  unpipelined dividers;
- loads issued to the memory hierarchy (L1 + stream buffers + L2 + DRAM)
  with a selectable disambiguation policy; same-word store-to-load
  forwarding costs 2 cycles and forwarded loads never train the
  prefetcher (Section 4.2);
- in-order retirement, up to 8 per cycle.

Simplifications vs. SimpleScalar (documented in DESIGN.md): wrong-path
instructions are not executed (the misprediction penalty is charged
instead), and stores access the cache at issue rather than at commit.

**Event-driven fast path** (``event_driven``, default on): when a cycle
ends with nothing to issue, nothing retirable, fetch provably blocked,
and the prefetcher idle, the loop computes a *horizon* — the earliest
of the next completion in the heap, a stalled branch's redirect cycle,
and the prefetcher's ``next_event_cycle`` (next free bus slot or
in-flight-fill refresh) — and jumps ``cycle`` straight there.  Skipped
iterations have exactly one per-cycle side effect to replay
(``FunctionalUnits.new_cycle``), so the machine state at every cycle
boundary is bit-identical to the cycle-stepped loop; the equivalence
tests assert this stats-, snapshot-, and golden-check-deep.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.config import CoreConfig, DisambiguationPolicy
from repro.cpu.branch import GsharePredictor
from repro.cpu.funits import FunctionalUnits
from repro.cpu.storesets import StoreTracker
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import Accumulator
from repro.trace.record import InstrKind, TraceRecord

#: Safety valve: if nothing retires for this many cycles, the model is wedged.
_DEADLOCK_CYCLES = 100_000

#: "No event pending" horizon sentinel (matches the hierarchy's NEVER).
_NEVER = 1 << 62


class _Instr:
    """Book-keeping for one in-flight instruction."""

    __slots__ = (
        "seq",
        "kind",
        "pc",
        "addr",
        "pending_deps",
        "dependents",
        "issued",
        "completed",
        "complete_cycle",
        "forward_from",
    )

    def __init__(self, seq: int, record: TraceRecord) -> None:
        self.seq = seq
        self.kind = record.kind
        self.pc = record.pc
        self.addr = record.addr
        self.pending_deps = 0
        self.dependents: List["_Instr"] = []
        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.forward_from: Optional[int] = None  # store seq feeding this load


class _RunState:
    """All mutable state of one in-progress simulation run.

    Everything the main loop needs lives here (not in locals of a
    monolithic ``run``) so a run can be paused between cycles, pickled
    into a snapshot, and resumed bit-identically.  Holds plain data
    only — callbacks stay parameters of :meth:`OutOfOrderCore.advance`
    so the state never captures unpicklable closures.
    """

    __slots__ = (
        "max_instructions",
        "warmup_instructions",
        "rob",
        "rob_head",
        "alive",
        "completions",
        "ready",
        "lsq_occupancy",
        "seq",
        "fetched",
        "retired",
        "cycle",
        "trace_done",
        "pending_record",
        "stall_branch",
        "last_retire_cycle",
        "warmup_cycle",
        "warmup_retired",
        "warmup_pending",
        "loads",
        "stores",
        "branches",
        "forwarded",
        "finished",
    )

    def __init__(
        self, max_instructions: Optional[int], warmup_instructions: int
    ) -> None:
        self.max_instructions = max_instructions
        self.warmup_instructions = warmup_instructions
        self.rob: List[Optional[_Instr]] = []  # deque via head index
        self.rob_head = 0
        self.alive: Dict[int, _Instr] = {}
        self.completions: List[tuple] = []
        self.ready: List[_Instr] = []
        self.lsq_occupancy = 0
        self.seq = 0
        self.fetched = 0
        self.retired = 0
        self.cycle = 0
        self.trace_done = False
        self.pending_record: Optional[TraceRecord] = None
        self.stall_branch: Optional[_Instr] = None
        self.last_retire_cycle = 0
        self.warmup_cycle = 0
        self.warmup_retired = 0
        self.warmup_pending = warmup_instructions > 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.forwarded = 0
        self.finished = False

    @property
    def records_consumed(self) -> int:
        """How many records have been pulled off the trace iterator.

        Every consumed record was either dispatched (``fetched``) or is
        parked in ``pending_record``; a resumed run skips exactly this
        many records of a freshly built trace to land where it left off.
        """
        return self.fetched + (1 if self.pending_record is not None else 0)

    def observable_state(self):
        """Core-progress probes for the observability layer.

        Returns ``name -> zero-argument reader`` over this run's state.
        The readers are sampled at ``advance`` boundaries, where the
        locals-to-state sync guarantees every field is current.
        """
        return {
            "retired": lambda: float(self.retired),
            "fetched": lambda: float(self.fetched),
            "rob_occupancy": lambda: float(len(self.rob) - self.rob_head),
            "lsq_occupancy": lambda: float(self.lsq_occupancy),
        }

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class CoreStats:
    """Post-warm-up statistics for one simulation."""

    def __init__(self) -> None:
        self.cycles = 0
        self.retired = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.forwarded_loads = 0
        self.load_latency = Accumulator("load-latency")

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.retired / self.cycles

    @property
    def load_fraction(self) -> float:
        if self.retired == 0:
            return 0.0
        return self.loads / self.retired

    @property
    def store_fraction(self) -> float:
        if self.retired == 0:
            return 0.0
        return self.stores / self.retired


class OutOfOrderCore:
    """Executes a trace against a memory hierarchy, cycle by cycle."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        event_driven: bool = True,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.event_driven = event_driven
        self.branch_predictor = GsharePredictor(config.gshare_history_bits)
        self.funits = FunctionalUnits(config)
        self.store_tracker = StoreTracker(config.disambiguation)
        self.stats = CoreStats()
        #: Optional :class:`repro.perf.PerfCollector`; cycles the fast
        #: path skipped are tallied here (never into the snapshotted
        #: run state, so fast and stepped runs stay bit-identical).
        self.perf = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable[TraceRecord],
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
        on_warmup_end: Optional[Callable[[], None]] = None,
    ) -> CoreStats:
        """Simulate ``trace`` to completion; return post-warm-up stats.

        ``warmup_instructions`` retire before statistics begin; at that
        point ``on_warmup_end`` (if given) is invoked so callers can reset
        prefetcher/hierarchy statistics too.
        """
        state = self.begin_run(max_instructions, warmup_instructions)
        self.advance(iter(trace), state, on_warmup_end=on_warmup_end)
        return self.finish_run(state)

    def begin_run(
        self,
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
    ) -> _RunState:
        """Create the state for a new run, ready for :meth:`advance`."""
        return _RunState(max_instructions, warmup_instructions)

    def advance(
        self,
        source: Iterator[TraceRecord],
        state: _RunState,
        on_warmup_end: Optional[Callable[[], None]] = None,
        stop_cycle: Optional[int] = None,
    ) -> bool:
        """Simulate until the trace drains or ``state.cycle`` reaches
        ``stop_cycle`` (a cycle *boundary*: that cycle has not started).

        Returns True once the run is finished.  Between calls the entire
        run lives in ``state``, so callers may snapshot it, run
        invariant checks, or simply call again to continue — an
        interrupted sequence of ``advance`` calls is cycle-for-cycle
        identical to one uninterrupted call.
        """
        if state.finished:
            return True
        config = self.config
        hierarchy = self.hierarchy
        prefetcher = hierarchy.prefetcher
        # The loop body reads/writes locals (hot path); state fields are
        # synced at entry and, via ``finally``, at every exit.  Config
        # scalars, enum members, and bound methods are hoisted too —
        # attribute lookups in this loop are a measurable fraction of
        # total simulation wall time.
        fetch_width = config.fetch_width
        rob_entries = config.rob_entries
        lsq_entries = config.lsq_entries
        issue_width = config.issue_width
        retire_width = config.retire_width
        branch_preds_per_cycle = config.branch_predictions_per_cycle
        mispredict_penalty = config.mispredict_penalty
        store_forward_latency = config.store_forward_latency
        no_disambiguation = (
            config.disambiguation == DisambiguationPolicy.NO_DISAMBIGUATION
        )
        LOAD = InstrKind.LOAD
        STORE = InstrKind.STORE
        BRANCH = InstrKind.BRANCH
        heappush = heapq.heappush
        heappop = heapq.heappop
        funits_new_cycle = self.funits.new_cycle
        funits_try_issue = self.funits.try_issue
        hier_access = hierarchy.access
        prefetcher_tick = prefetcher.tick
        prefetcher_next_event = prefetcher.next_event_cycle
        bp_update = self.branch_predictor.update
        tracker = self.store_tracker
        track_load = tracker.for_load
        track_store_dispatched = tracker.note_store_dispatched
        track_store_retired = tracker.note_store_retired
        track_previous_store = tracker.previous_store
        load_latency_add = self.stats.load_latency.add
        rob = state.rob
        rob_head = state.rob_head
        alive = state.alive
        completions = state.completions
        ready = state.ready
        lsq_occupancy = state.lsq_occupancy
        seq = state.seq
        fetched = state.fetched
        retired = state.retired
        cycle = state.cycle
        trace_done = state.trace_done
        pending_record = state.pending_record
        stall_branch = state.stall_branch
        last_retire_cycle = state.last_retire_cycle
        warmup_pending = state.warmup_pending
        loads = state.loads
        stores = state.stores
        branches = state.branches
        forwarded = state.forwarded
        max_instructions = state.max_instructions
        warmup_instructions = state.warmup_instructions
        finished = False
        event_driven = self.event_driven
        cycles_skipped = 0
        alive_get = alive.get
        alive_pop = alive.pop

        try:
            while True:
                if stop_cycle is not None and cycle >= stop_cycle:
                    break
                funits_new_cycle(cycle)

                # ---- complete --------------------------------------------
                while completions and completions[0][0] <= cycle:
                    __, __, instr = heappop(completions)
                    instr.completed = True
                    for dependent in instr.dependents:
                        dependent.pending_deps -= 1
                        if dependent.pending_deps == 0 and not dependent.issued:
                            ready.append(dependent)
                    instr.dependents = []

                # ---- retire ----------------------------------------------
                retired_this_cycle = 0
                while (
                    rob_head < len(rob)
                    and rob[rob_head].completed
                    and retired_this_cycle < retire_width
                ):
                    instr = rob[rob_head]
                    rob[rob_head] = None  # free the reference
                    rob_head += 1
                    retired_this_cycle += 1
                    retired += 1
                    last_retire_cycle = cycle
                    alive_pop(instr.seq, None)
                    kind = instr.kind
                    if kind is LOAD:
                        loads += 1
                        lsq_occupancy -= 1
                    elif kind is STORE:
                        stores += 1
                        lsq_occupancy -= 1
                        track_store_retired(instr.seq, instr.addr)
                    elif kind is BRANCH:
                        branches += 1
                    if warmup_pending and retired >= warmup_instructions:
                        warmup_pending = False
                        state.warmup_cycle = cycle
                        state.warmup_retired = retired
                        loads = stores = branches = forwarded = 0
                        self.stats.load_latency.reset()
                        self.branch_predictor.reset_stats()
                        self.store_tracker.reset_stats()
                        if on_warmup_end is not None:
                            on_warmup_end()
                if rob_head > 4096 and rob_head == len(rob):
                    rob = []
                    rob_head = 0

                # ---- fetch / dispatch ------------------------------------
                if stall_branch is not None:
                    if (
                        stall_branch.complete_cycle >= 0
                        and cycle
                        >= stall_branch.complete_cycle + mispredict_penalty
                    ):
                        stall_branch = None
                if stall_branch is None and not trace_done:
                    branches_this_cycle = 0
                    for __ in range(fetch_width):
                        if len(rob) - rob_head >= rob_entries:
                            break
                        if (
                            max_instructions is not None
                            and fetched >= max_instructions
                        ):
                            trace_done = True
                            break
                        if pending_record is not None:
                            record = pending_record
                            pending_record = None
                        else:
                            record = next(source, None)
                            if record is None:
                                trace_done = True
                                break
                        rkind = record.kind
                        is_memory = rkind is LOAD or rkind is STORE
                        if is_memory and lsq_occupancy >= lsq_entries:
                            pending_record = record
                            break
                        if rkind is BRANCH:
                            if branches_this_cycle >= branch_preds_per_cycle:
                                pending_record = record
                                break
                            branches_this_cycle += 1

                        instr = _Instr(seq, record)
                        alive[seq] = instr
                        seq += 1
                        fetched += 1
                        if is_memory:
                            lsq_occupancy += 1

                        # Dependence wiring (_register_dependences inlined).
                        dep1 = record.dep1
                        if dep1 > 0:
                            producer = alive_get(instr.seq - dep1)
                            if producer is not None and not producer.completed:
                                producer.dependents.append(instr)
                                instr.pending_deps += 1
                        dep2 = record.dep2
                        if dep2 > 0 and dep2 != dep1:
                            producer = alive_get(instr.seq - dep2)
                            if producer is not None and not producer.completed:
                                producer.dependents.append(instr)
                                instr.pending_deps += 1
                        if rkind is LOAD:
                            store_seq, forward_seq = track_load(record.addr)
                            if store_seq is not None:
                                producer = alive_get(store_seq)
                                if (
                                    producer is not None
                                    and not producer.completed
                                ):
                                    producer.dependents.append(instr)
                                    instr.pending_deps += 1
                            if forward_seq is not None:
                                instr.forward_from = forward_seq
                        elif rkind is STORE:
                            if no_disambiguation:
                                # Chain stores so they issue in order;
                                # with the load->previous-store edge this
                                # makes every load wait for all prior
                                # stores, the paper's "NoDis" behaviour.
                                previous = track_previous_store()
                                if previous is not None:
                                    producer = alive_get(previous)
                                    if (
                                        producer is not None
                                        and not producer.completed
                                    ):
                                        producer.dependents.append(instr)
                                        instr.pending_deps += 1
                            track_store_dispatched(instr.seq, instr.addr)
                        rob.append(instr)
                        if instr.pending_deps == 0:
                            ready.append(instr)
                        if rkind is BRANCH:
                            if not bp_update(record.pc, record.taken):
                                stall_branch = instr
                                break

                # ---- issue -----------------------------------------------
                if ready:
                    issued_count = 0
                    still_waiting: List[_Instr] = []
                    for instr in ready:
                        ikind = instr.kind
                        if (
                            issued_count >= issue_width
                            or (latency := funits_try_issue(ikind)) < 0
                        ):
                            still_waiting.append(instr)
                            continue
                        issued_count += 1
                        instr.issued = True
                        # _execute inlined.
                        if ikind is LOAD:
                            if instr.forward_from is not None:
                                # Same-word store still in the window:
                                # forward, skip the cache (and therefore
                                # skip prefetcher training).
                                complete = cycle + store_forward_latency
                                forwarded += 1
                            else:
                                complete = hier_access(
                                    instr.pc, instr.addr, cycle, is_store=False
                                ).complete_cycle
                            load_latency_add(complete - cycle)
                        elif ikind is STORE:
                            # Stores access the hierarchy for bandwidth and
                            # state effects but never stall the window.
                            hier_access(instr.pc, instr.addr, cycle, is_store=True)
                            complete = cycle + 1
                        else:
                            complete = cycle + latency
                        instr.complete_cycle = complete
                        heappush(completions, (complete, instr.seq, instr))
                    ready = still_waiting

                # ---- prefetcher gets its cycle ---------------------------
                prefetcher_tick(cycle)

                # ---- termination / deadlock ------------------------------
                if trace_done and rob_head >= len(rob):
                    finished = True
                    break
                if cycle - last_retire_cycle > _DEADLOCK_CYCLES:
                    raise RuntimeError(
                        f"core wedged: no retirement since cycle "
                        f"{last_retire_cycle}"
                    )
                cycle += 1

                # ---- event-driven skip-ahead -----------------------------
                # Quiescence test for the cycle about to start: nothing
                # issuable, nothing retirable, fetch provably blocked,
                # prefetcher idle.  Each clause either proves the next
                # cycle is a no-op or falls back to single-stepping, so
                # a wrong horizon can cost time but never correctness.
                if not event_driven or ready:
                    continue
                if completions:
                    horizon = completions[0][0]
                    if horizon <= cycle:
                        continue  # a completion lands this cycle
                else:
                    horizon = _NEVER
                if rob_head < len(rob) and rob[rob_head].completed:
                    continue  # more retires this cycle (width-limited)
                if not trace_done:
                    if stall_branch is not None:
                        redirect = stall_branch.complete_cycle
                        if redirect >= 0:
                            redirect += mispredict_penalty
                            if redirect <= cycle:
                                continue  # fetch resumes this cycle
                            if redirect < horizon:
                                horizon = redirect
                        # An unissued stalled branch waits on a
                        # completion already in the horizon.
                    elif len(rob) - rob_head >= rob_entries:
                        pass  # ROB full: frees only via retire
                    elif (
                        pending_record is not None
                        and (
                            pending_record.kind is LOAD
                            or pending_record.kind is STORE
                        )
                        and lsq_occupancy >= lsq_entries
                    ):
                        pass  # LSQ full: frees only via retire
                    else:
                        continue  # fetch can dispatch this cycle
                next_prefetch = prefetcher_next_event(cycle)
                if next_prefetch <= cycle:
                    continue
                if next_prefetch < horizon:
                    horizon = next_prefetch
                # Never skip past the deadlock detector's trip point or
                # a caller's stop boundary.
                deadline = last_retire_cycle + _DEADLOCK_CYCLES + 1
                if horizon > deadline:
                    horizon = deadline
                if stop_cycle is not None and horizon > stop_cycle:
                    horizon = stop_cycle
                if horizon > cycle:
                    # The skipped iterations' only per-cycle side effect
                    # is the functional units' slot reset; replay it so
                    # state at the landing cycle (or a stop boundary)
                    # matches the stepped loop bit for bit.
                    funits_new_cycle(horizon - 1)
                    cycles_skipped += horizon - cycle
                    cycle = horizon
        finally:
            state.rob = rob
            state.rob_head = rob_head
            state.alive = alive
            state.completions = completions
            state.ready = ready
            state.lsq_occupancy = lsq_occupancy
            state.seq = seq
            state.fetched = fetched
            state.retired = retired
            state.cycle = cycle
            state.trace_done = trace_done
            state.pending_record = pending_record
            state.stall_branch = stall_branch
            state.last_retire_cycle = last_retire_cycle
            state.warmup_pending = warmup_pending
            state.loads = loads
            state.stores = stores
            state.branches = branches
            state.forwarded = forwarded
            state.finished = finished
            if self.perf is not None:
                self.perf.add("core.cycles_skipped", cycles_skipped)
        return finished

    def finish_run(self, state: _RunState) -> CoreStats:
        """Aggregate a finished (or aborted) run's post-warm-up stats."""
        stats = self.stats
        stats.cycles = max(1, state.cycle - state.warmup_cycle)
        stats.retired = state.retired - state.warmup_retired
        stats.loads = state.loads
        stats.stores = state.stores
        stats.branches = state.branches
        stats.forwarded_loads = state.forwarded
        return stats
