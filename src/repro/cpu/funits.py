"""Functional-unit pools (Section 5.1).

The baseline core has 8 integer ALUs, 4 load/store units, 2 FP adders,
2 integer multiply/divide units, and 2 FP multiply/divide units.  Every
unit is fully pipelined (one new operation per cycle per unit) except
the dividers, which occupy their unit for the whole operation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import CoreConfig
from repro.trace.record import OP_LATENCY, UNPIPELINED_KINDS, InstrKind

#: Which pool serves each instruction kind.
_POOL_OF_KIND = {
    InstrKind.IALU: "int_alu",
    InstrKind.BRANCH: "int_alu",
    InstrKind.NOP: "int_alu",
    InstrKind.IMUL: "int_mul_div",
    InstrKind.IDIV: "int_mul_div",
    InstrKind.FADD: "fp_add",
    InstrKind.FMUL: "fp_mul_div",
    InstrKind.FDIV: "fp_mul_div",
    InstrKind.LOAD: "load_store",
    InstrKind.STORE: "load_store",
}


class FunctionalUnits:
    """Tracks per-cycle issue slots and divider occupancy."""

    def __init__(self, config: CoreConfig) -> None:
        self._capacity: Dict[str, int] = {
            "int_alu": config.int_alu_units,
            "load_store": config.load_store_units,
            "fp_add": config.fp_add_units,
            "int_mul_div": config.int_mul_div_units,
            "fp_mul_div": config.fp_mul_div_units,
        }
        # Pipelined pools: how many ops each pool accepted *this cycle*.
        self._issued_this_cycle: Dict[str, int] = {
            name: 0 for name in self._capacity
        }
        # Unpipelined dividers: per-pool list of unit-free cycles.
        self._divider_free_at: Dict[str, List[int]] = {
            "int_mul_div": [0] * config.int_mul_div_units,
            "fp_mul_div": [0] * config.fp_mul_div_units,
        }
        self._current_cycle = 0

    def new_cycle(self, cycle: int) -> None:
        """Reset the per-cycle issue slots at the start of ``cycle``."""
        self._current_cycle = cycle
        for name in self._issued_this_cycle:
            self._issued_this_cycle[name] = 0

    def latency_of(self, kind: InstrKind) -> int:
        return OP_LATENCY[kind]

    def can_issue(self, kind: InstrKind) -> bool:
        """Whether a ``kind`` operation can begin this cycle."""
        pool = _POOL_OF_KIND[kind]
        if self._issued_this_cycle[pool] >= self._capacity[pool]:
            return False
        if kind in UNPIPELINED_KINDS:
            free_times = self._divider_free_at[pool]
            return any(free <= self._current_cycle for free in free_times)
        return True

    def issue(self, kind: InstrKind) -> int:
        """Claim a unit for this cycle; return the operation latency.

        Callers must check :meth:`can_issue` first.
        """
        pool = _POOL_OF_KIND[kind]
        self._issued_this_cycle[pool] += 1
        latency = OP_LATENCY[kind]
        if kind in UNPIPELINED_KINDS:
            free_times = self._divider_free_at[pool]
            for index, free in enumerate(free_times):
                if free <= self._current_cycle:
                    free_times[index] = self._current_cycle + latency
                    break
        return latency

    def try_issue(self, kind: InstrKind) -> int:
        """Claim a unit if one is available; return the latency, or -1.

        Fuses :meth:`can_issue` + :meth:`issue` into one call for the
        core's issue loop; behaviour is identical (no side effects on
        refusal).
        """
        pool = _POOL_OF_KIND[kind]
        issued = self._issued_this_cycle
        if issued[pool] >= self._capacity[pool]:
            return -1
        latency = OP_LATENCY[kind]
        if kind in UNPIPELINED_KINDS:
            free_times = self._divider_free_at[pool]
            current = self._current_cycle
            for index, free in enumerate(free_times):
                if free <= current:
                    free_times[index] = current + latency
                    break
            else:
                return -1
        issued[pool] += 1
        return latency
