"""Load/store disambiguation policies (Section 6.1).

The paper runs its main results with *perfect store sets* (Chrysos and
Emer, modelled as an oracle): a load depends only on in-flight stores
that actually write the same memory word, and receives the value via a
2-cycle store-to-load forward.  The contrast configuration, *no
disambiguation*, makes every load wait until all prior stores have
issued.  :class:`StoreTracker` computes the extra dependence each load
needs under either policy.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import DisambiguationPolicy

#: Stores and loads conflict at this granularity.
WORD_BYTES = 8


def word_of(address: int) -> int:
    return address & ~(WORD_BYTES - 1)


class StoreTracker:
    """Tracks in-flight stores and answers "what must this load wait for?"."""

    def __init__(self, policy: DisambiguationPolicy) -> None:
        self.policy = policy
        self._last_store_seq: Optional[int] = None
        self._store_by_word: Dict[int, int] = {}  # word -> youngest store seq
        self.forwarded_loads = 0
        self.serialized_loads = 0

    def note_store_dispatched(self, seq: int, address: int) -> None:
        """Record a store entering the window, in program order."""
        self._last_store_seq = seq
        self._store_by_word[word_of(address)] = seq

    def note_store_retired(self, seq: int, address: int) -> None:
        """Forget a store once it leaves the window."""
        word = word_of(address)
        if self._store_by_word.get(word) == seq:
            del self._store_by_word[word]
        if self._last_store_seq == seq:
            self._last_store_seq = None

    def dependence_for_load(self, address: int) -> Optional[int]:
        """Sequence number of the store this load must wait for, if any.

        Under perfect store sets only a same-word store creates a
        dependence (and implies forwarding).  Under no-disambiguation the
        load is serialized behind the most recent prior store, whatever
        its address — and because stores are themselves chained in order,
        this makes the load wait for *all* prior stores.
        """
        if self.policy == DisambiguationPolicy.PERFECT_STORE_SETS:
            seq = self._store_by_word.get(word_of(address))
            if seq is not None:
                self.forwarded_loads += 1
            return seq
        if self._last_store_seq is not None:
            self.serialized_loads += 1
        return self._last_store_seq

    def forwards(self, address: int) -> Optional[int]:
        """Seq of an in-flight same-word store whose data this load gets."""
        return self._store_by_word.get(word_of(address))

    def for_load(self, address: int):
        """Fused (dependence, forward) query for one load.

        One ``word_of`` computation and one call for the core's fetch
        path; identical counters and results to calling
        :meth:`dependence_for_load` then :meth:`forwards`.
        """
        word = address & ~(WORD_BYTES - 1)
        if self.policy == DisambiguationPolicy.PERFECT_STORE_SETS:
            seq = self._store_by_word.get(word)
            if seq is not None:
                self.forwarded_loads += 1
            return seq, seq
        if self._last_store_seq is not None:
            self.serialized_loads += 1
        return self._last_store_seq, self._store_by_word.get(word)

    def previous_store(self) -> Optional[int]:
        """Most recent in-flight store (used to chain stores in order)."""
        return self._last_store_seq

    def reset_stats(self) -> None:
        self.forwarded_loads = 0
        self.serialized_loads = 0
