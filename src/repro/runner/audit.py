"""Offline consistency audit of a campaign directory.

``repro-sim audit <campaign-dir>`` (and :func:`audit_campaign` behind
it) re-derives the campaign's state from its artifacts alone — no
specs, no live runner — and cross-checks every layer of the
persistence story the runner tells:

- every ``checkpoint.jsonl`` line parses and its per-line CRC32
  verifies (torn or bit-flipped lines are reported, not silently
  replayed);
- ``run_id`` replay is coherent: duplicate entries are last-wins by
  design, but duplicates whose spec fingerprints *differ* are flagged,
  as are distinct run_ids sharing one fingerprint;
- every ``ok`` entry's result round-trips exactly through
  :func:`~repro.runner.checkpoint.result_from_dict` /
  :func:`~repro.runner.checkpoint.result_to_dict` — the bit-identical
  resume guarantee, checked offline;
- every ``failed``/``poisoned`` entry carries its error taxonomy kind
  and message;
- ``manifest.json`` exists, parses, and agrees with the replayed
  checkpoint: ok/failed/poisoned tallies, per-point metrics keys, and
  failure records all line up, with appends the manifest *declared*
  lost (``checkpoint_gaps``) excused;
- leftover within-run snapshots, quarantined (``.corrupt``) artifacts,
  and orphaned temp files are surfaced.

Verification failures are **errors** (the directory lies about its
campaign); recoverable damage the runner already survived — a CRC-
rejected line, a quarantined snapshot — surfaces as **warnings**.
This is the boot-time check the ROADMAP's campaign server runs before
trusting a persistent job store.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.checkpoint import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    iter_checkpoint_lines,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "AuditIssue",
    "AuditReport",
    "audit_campaign",
    "audit_service",
    "is_service_dir",
]

#: Terminal statuses a checkpoint entry may carry.
_TERMINAL_STATUSES = ("ok", "failed", "poisoned")


@dataclass(frozen=True)
class AuditIssue:
    """One audit finding: a severity, a stable code, and the detail."""

    severity: str  # "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class AuditReport:
    """Everything :func:`audit_campaign` found in one directory."""

    campaign_dir: str
    issues: List[AuditIssue] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[AuditIssue]:
        """The findings that make the directory untrustworthy."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[AuditIssue]:
        """Recoverable damage and litter worth a look."""
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not self.errors

    def summary(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"audit {self.campaign_dir}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)"
        ]
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]}")
        for issue in self.issues:
            lines.append(f"  {issue}")
        return "\n".join(lines)

    def _add(self, severity: str, code: str, message: str) -> None:
        self.issues.append(AuditIssue(severity, code, message))


def audit_campaign(campaign_dir: str) -> AuditReport:
    """Verify a campaign directory's artifacts against each other."""
    report = AuditReport(campaign_dir=campaign_dir)
    if not os.path.isdir(campaign_dir):
        report._add(
            "error", "campaign.missing",
            f"{campaign_dir!r} is not a directory",
        )
        return report
    entries = _audit_checkpoint(report)
    manifest = _audit_manifest(report)
    if manifest is not None:
        _cross_check(report, entries, manifest)
    _audit_litter(report)
    return report


def _audit_checkpoint(report: AuditReport) -> Dict[str, Dict[str, Any]]:
    """Replay the checkpoint, flagging bad lines; run_id -> last entry."""
    path = os.path.join(report.campaign_dir, CHECKPOINT_NAME)
    entries: Dict[str, Dict[str, Any]] = {}
    fingerprints: Dict[str, str] = {}
    lines = corrupt = 0
    for number, line, entry, problem in iter_checkpoint_lines(path):
        lines += 1
        if problem is not None:
            corrupt += 1
            detail = {
                "json": "does not parse (torn write)",
                "crc": "CRC32 mismatch (bit rot)",
                "shape": "not a run-keyed object",
            }[problem]
            report._add(
                "warning", f"checkpoint.line.{problem}",
                f"{CHECKPOINT_NAME} line {number}: {detail}",
            )
            continue
        assert entry is not None
        run_id = entry["run_id"]
        fingerprint = entry.get("fingerprint", "")
        if run_id in entries:
            # Last-wins duplicates are by design (a resumed campaign
            # re-runs a fingerprint-mismatched point); two entries for
            # one run_id with the *same* fingerprint mean the runner
            # recorded one point terminal twice.
            if fingerprints.get(run_id) == fingerprint:
                report._add(
                    "warning", "checkpoint.duplicate",
                    f"run {run_id!r}: duplicate entry with identical "
                    f"fingerprint at line {number} (last wins)",
                )
        entries[run_id] = entry
        fingerprints[run_id] = fingerprint
        _audit_entry(report, entry)
    shared: Dict[str, List[str]] = {}
    for run_id, fingerprint in fingerprints.items():
        shared.setdefault(fingerprint, []).append(run_id)
    for fingerprint, run_ids in shared.items():
        if fingerprint and len(run_ids) > 1:
            report._add(
                "warning", "checkpoint.fingerprint.shared",
                f"runs {sorted(run_ids)} share fingerprint "
                f"{fingerprint} (identical inputs recorded under "
                f"multiple ids)",
            )
    if lines and not entries:
        report._add(
            "error", "checkpoint.unreadable",
            f"{CHECKPOINT_NAME} has {lines} lines but none replay",
        )
    report.stats["checkpoint_lines"] = lines
    report.stats["checkpoint_corrupt_lines"] = corrupt
    report.stats["checkpoint_entries"] = len(entries)
    for status in _TERMINAL_STATUSES:
        report.stats[f"entries_{status}"] = sum(
            1 for e in entries.values() if e.get("status") == status
        )
    return entries


def _audit_entry(report: AuditReport, entry: Dict[str, Any]) -> None:
    """Validate one replayed entry's internal consistency."""
    run_id = entry["run_id"]
    status = entry.get("status")
    if status not in _TERMINAL_STATUSES:
        report._add(
            "error", "entry.status",
            f"run {run_id!r}: unknown terminal status {status!r}",
        )
        return
    if status == "ok":
        payload = entry.get("result")
        if not isinstance(payload, dict):
            report._add(
                "error", "entry.result.missing",
                f"run {run_id!r}: status ok but no result payload",
            )
            return
        try:
            round_tripped = result_to_dict(result_from_dict(payload))
        except Exception as error:
            report._add(
                "error", "entry.result.load",
                f"run {run_id!r}: result does not deserialize: "
                f"{type(error).__name__}: {error}",
            )
            return
        if round_tripped != payload:
            report._add(
                "error", "entry.result.roundtrip",
                f"run {run_id!r}: result does not round-trip "
                f"(bit-identical resume is broken for this entry)",
            )
    else:
        error_record = entry.get("error") or {}
        if not error_record.get("kind") or not error_record.get("message"):
            report._add(
                "error", "entry.error.missing",
                f"run {run_id!r}: status {status} but no error "
                f"kind/message",
            )


def _audit_manifest(report: AuditReport) -> Optional[Dict[str, Any]]:
    """Load and shape-check the manifest; None when unusable."""
    path = os.path.join(report.campaign_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        report._add(
            "error", "manifest.missing",
            f"{MANIFEST_NAME} not found (campaign never finished a "
            f"write, or its final write was lost)",
        )
        return None
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        report._add(
            "error", "manifest.unreadable",
            f"{MANIFEST_NAME}: {type(error).__name__}: {error}",
        )
        return None
    if not isinstance(manifest, dict):
        report._add(
            "error", "manifest.shape",
            f"{MANIFEST_NAME} is not a JSON object",
        )
        return None
    return manifest


def _cross_check(
    report: AuditReport,
    entries: Dict[str, Dict[str, Any]],
    manifest: Dict[str, Any],
) -> None:
    """Do the checkpoint and the manifest tell the same story?"""
    gaps = set(manifest.get("checkpoint_gaps") or [])
    if gaps:
        report._add(
            "warning", "manifest.checkpoint_gaps",
            f"manifest declares {len(gaps)} checkpoint appends lost: "
            f"{sorted(gaps)}",
        )
    tallies = {
        status: sum(
            1 for e in entries.values() if e.get("status") == status
        )
        for status in _TERMINAL_STATUSES
    }
    failure_records = manifest.get("failures") or []
    failed_ids = {
        record.get("run_id"): record for record in failure_records
    }
    manifest_poisoned = manifest.get("poisoned", 0)
    # ok-side agreement: the metrics map is keyed by completed run_id.
    metrics = manifest.get("metrics")
    if isinstance(metrics, dict):
        if len(metrics) != manifest.get("ok"):
            report._add(
                "error", "manifest.ok.count",
                f"manifest says ok={manifest.get('ok')} but lists "
                f"{len(metrics)} per-point metrics",
            )
        for run_id in metrics:
            entry = entries.get(run_id)
            if entry is None:
                if run_id not in gaps:
                    report._add(
                        "error", "manifest.ok.unbacked",
                        f"run {run_id!r}: manifest says ok but the "
                        f"checkpoint has no entry (and no declared gap)",
                    )
            elif entry.get("status") != "ok":
                report._add(
                    "error", "manifest.ok.disagrees",
                    f"run {run_id!r}: manifest says ok, checkpoint "
                    f"says {entry.get('status')!r}",
                )
    for run_id, record in failed_ids.items():
        entry = entries.get(run_id)
        if entry is None:
            if run_id not in gaps:
                report._add(
                    "error", "manifest.failure.unbacked",
                    f"run {run_id!r}: manifest records a failure but "
                    f"the checkpoint has no entry (and no declared gap)",
                )
        elif entry.get("status") == "ok":
            report._add(
                "error", "manifest.failure.disagrees",
                f"run {run_id!r}: manifest records a failure, "
                f"checkpoint says ok",
            )
    # Tally agreement, modulo declared gaps (a gap's entry is missing
    # from the checkpoint but counted in the manifest).
    gap_slack = len(gaps)
    for name, checkpoint_count, manifest_count in (
        ("ok", tallies["ok"], manifest.get("ok")),
        ("failed", tallies["failed"], manifest.get("failed")),
        ("poisoned", tallies["poisoned"], manifest_poisoned),
    ):
        if manifest_count is None:
            continue
        if not (
            checkpoint_count <= manifest_count
            <= checkpoint_count + gap_slack
        ):
            report._add(
                "error", f"manifest.tally.{name}",
                f"{name}: checkpoint replays {checkpoint_count}, "
                f"manifest claims {manifest_count} "
                f"({gap_slack} declared gaps)",
            )
    if manifest.get("status") == "complete":
        total = manifest.get("total_points")
        accounted = (
            (manifest.get("ok") or 0)
            + (manifest.get("failed") or 0)
            + manifest_poisoned
        )
        if total is not None and accounted != total:
            report._add(
                "error", "manifest.total",
                f"status complete but ok+failed+poisoned={accounted} "
                f"!= total_points={total}",
            )


def _audit_litter(report: AuditReport) -> None:
    """Surface stale snapshots, quarantines, and orphaned temp files."""
    snapshots_dir = os.path.join(report.campaign_dir, "snapshots")
    stale = sorted(glob.glob(os.path.join(snapshots_dir, "*.snap")))
    quarantined = sorted(
        glob.glob(os.path.join(snapshots_dir, "*.corrupt"))
    )
    tmp_files = sorted(
        glob.glob(os.path.join(report.campaign_dir, MANIFEST_NAME + ".tmp.*"))
    )
    for path in stale:
        report._add(
            "warning", "snapshot.stale",
            f"leftover within-run snapshot {os.path.basename(path)} "
            f"(no terminal outcome discarded it — killed mid-campaign?)",
        )
    for path in quarantined:
        report._add(
            "warning", "snapshot.quarantined",
            f"quarantined corrupt snapshot {os.path.basename(path)} "
            f"(the runner recovered; kept for post-mortem)",
        )
    for path in tmp_files:
        report._add(
            "warning", "manifest.tmp",
            f"orphaned manifest temp file {os.path.basename(path)} "
            f"(a manifest rewrite died before its os.replace)",
        )
    report.stats["snapshots_stale"] = len(stale)
    report.stats["snapshots_quarantined"] = len(quarantined)
    report.stats["manifest_tmp_files"] = len(tmp_files)


# -- service directories -----------------------------------------------


def is_service_dir(path: str) -> bool:
    """Does ``path`` look like a campaign-service directory?

    The job log is the service's defining artifact; its presence is how
    ``repro-sim audit`` decides which audit to run.
    """
    from repro.service.jobstore import JOBS_NAME

    return os.path.isfile(os.path.join(path, JOBS_NAME))


def audit_service(service_dir: str) -> AuditReport:
    """Cross-check a service directory: job store ↔ leases ↔ manifests.

    Extends the campaign audit one level up.  The job log replays
    under the same CRC32 rules as a checkpoint; every replayed record
    is checked for internal consistency (terminal jobs carry their
    summary or error); leases are matched against job states (a lease
    for a finished job is litter, a running job without a live lease
    is a crashed worker the reaper will recover); and every *done*
    job's run directory is audited as a full campaign whose manifest
    must agree with the summary the job store recorded.  Transient
    damage the service recovers from by design — an expired lease, a
    torn log line — surfaces as warnings; contradictions between
    layers are errors.
    """
    report = AuditReport(campaign_dir=service_dir)
    if not os.path.isdir(service_dir):
        report._add(
            "error", "service.missing",
            f"{service_dir!r} is not a directory",
        )
        return report
    records = _audit_jobstore(report)
    _audit_leases(report, records)
    _audit_job_runs(report, records)
    _audit_service_litter(report)
    return report


def _audit_jobstore(report: AuditReport) -> Dict[str, Dict[str, Any]]:
    """Replay ``jobs.jsonl``; job_id -> last valid record."""
    from repro.service.jobstore import (
        JOB_STATES,
        JOBS_NAME,
        TERMINAL_STATES,
        job_id_of,
    )

    path = os.path.join(report.campaign_dir, JOBS_NAME)
    records: Dict[str, Dict[str, Any]] = {}
    #: job_id -> every distinct rev its entries were logged under
    #: (``None`` = a legacy entry from before revision keying).
    revs_seen: Dict[str, set] = {}
    lines = corrupt = 0
    for number, line, entry, problem in iter_checkpoint_lines(
        path, key="job_id"
    ):
        lines += 1
        if problem is not None:
            corrupt += 1
            detail = {
                "json": "does not parse (torn write)",
                "crc": "CRC32 mismatch (bit rot)",
                "shape": "not a job-keyed object",
            }[problem]
            report._add(
                "warning", f"jobs.line.{problem}",
                f"{JOBS_NAME} line {number}: {detail}",
            )
            continue
        assert entry is not None
        records[entry["job_id"]] = entry
        revs_seen.setdefault(entry["job_id"], set()).add(entry.get("rev"))
    # Mixed-rev collisions: one job_id whose log entries span code
    # revisions means its run directory may mix results from different
    # code — exactly the aliasing the (spec, rev) keying exists to
    # prevent.  Legacy spec-only ids are how this happens in practice.
    for job_id in sorted(revs_seen):
        revs = revs_seen[job_id]
        named = sorted(r for r in revs if r is not None)
        if len(named) > 1 or (named and None in revs):
            span = " + ".join(
                named + (["unversioned"] if None in revs else [])
            )
            report._add(
                "error", "job.rev.collision",
                f"job {job_id!r}: entries span code revisions ({span}); "
                f"its recorded results may mix code versions",
            )
    # A revision-keyed id must be the hash it claims to be; a mismatch
    # means the log was hand-edited or the entry was forged under the
    # wrong key.  Legacy (rev-less) entries get the spec-only check as
    # a warning — their ids predate the keying fix.
    for job_id, entry in records.items():
        rev = entry.get("rev")
        expected = job_id_of(entry.get("spec", {}), rev)
        if job_id != expected:
            report._add(
                "error" if rev is not None else "warning",
                "job.id.mismatch",
                f"job {job_id!r}: id does not match its content address "
                f"{expected!r} for spec+rev={rev!r}",
            )
    if lines and not records:
        report._add(
            "error", "jobs.unreadable",
            f"{JOBS_NAME} has {lines} lines but none replay",
        )
    for job_id, entry in records.items():
        state = entry.get("state")
        if state not in JOB_STATES:
            report._add(
                "error", "job.state",
                f"job {job_id!r}: unknown state {state!r}",
            )
            continue
        if state == "done" and not isinstance(entry.get("summary"), dict):
            report._add(
                "error", "job.summary.missing",
                f"job {job_id!r}: state done but no summary recorded",
            )
        if state in ("failed", "poisoned"):
            error_record = entry.get("error") or {}
            if not error_record.get("kind") or not error_record.get(
                "message"
            ):
                report._add(
                    "error", "job.error.missing",
                    f"job {job_id!r}: state {state} but no error "
                    f"kind/message",
                )
        if state in TERMINAL_STATES and entry.get("owner"):
            report._add(
                "error", "job.owner.terminal",
                f"job {job_id!r}: state {state} but still records "
                f"owner {entry.get('owner')!r}",
            )
    report.stats["job_lines"] = lines
    report.stats["job_corrupt_lines"] = corrupt
    report.stats["jobs"] = len(records)
    for state in JOB_STATES:
        report.stats[f"jobs_{state}"] = sum(
            1 for e in records.values() if e.get("state") == state
        )
    return records


def _audit_leases(
    report: AuditReport, records: Dict[str, Dict[str, Any]]
) -> None:
    """Match lease files against job states."""
    import time as _time

    from repro.service.jobstore import TERMINAL_STATES
    from repro.service.lease import LEASE_SUFFIX, LEASES_DIR, Lease

    lease_dir = os.path.join(report.campaign_dir, LEASES_DIR)
    now = _time.time()
    leased: Dict[str, Any] = {}
    for path in sorted(glob.glob(os.path.join(lease_dir, f"*{LEASE_SUFFIX}"))):
        name = os.path.basename(path)
        job_id = name[: -len(LEASE_SUFFIX)]
        try:
            with open(path) as handle:
                lease = Lease.from_dict(json.load(handle))
        except (OSError, json.JSONDecodeError, TypeError, KeyError):
            report._add(
                "error", "lease.unparsable",
                f"lease file {name} does not parse",
            )
            continue
        leased[job_id] = lease
        record = records.get(job_id)
        if record is None:
            report._add(
                "warning", "lease.orphaned",
                f"lease file {name} names a job the store does not know",
            )
            continue
        state = record.get("state")
        if state in TERMINAL_STATES or state == "queued":
            report._add(
                "warning", "lease.orphaned",
                f"lease file {name} held by {lease.owner!r} but job "
                f"{job_id!r} is {state} (release was lost or skipped)",
            )
        elif lease.expired(now):
            report._add(
                "warning", "lease.expired",
                f"job {job_id!r}: lease held by {lease.owner!r} "
                f"expired {now - lease.expires_at:.1f}s ago "
                f"(worker crashed or wedged; reaper will recover it)",
            )
    for job_id, record in records.items():
        if record.get("state") == "running" and job_id not in leased:
            report._add(
                "warning", "job.running.unleased",
                f"job {job_id!r}: recorded running but no lease file "
                f"exists (worker crashed; reaper will recover it)",
            )
    report.stats["leases"] = len(leased)


def _audit_job_runs(
    report: AuditReport, records: Dict[str, Dict[str, Any]]
) -> None:
    """Audit every finished job's run directory as a full campaign."""
    from repro.service.jobstore import RUNS_DIR

    runs_root = os.path.join(report.campaign_dir, RUNS_DIR)
    audited = 0
    for job_id, record in sorted(records.items()):
        if record.get("state") != "done":
            continue
        run_dir = os.path.join(runs_root, job_id)
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            report._add(
                "error", "job.manifest.missing",
                f"job {job_id!r}: state done but its run directory has "
                f"no manifest",
            )
            continue
        audited += 1
        sub = audit_campaign(run_dir)
        for issue in sub.issues:
            report._add(
                issue.severity, issue.code,
                f"job {job_id!r}: {issue.message}",
            )
        try:
            with open(manifest_path) as handle:
                job_manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # already reported by the sub-audit
        if job_manifest.get("status") != "complete":
            report._add(
                "error", "job.manifest.status",
                f"job {job_id!r}: state done but manifest status is "
                f"{job_manifest.get('status')!r}",
            )
        summary = record.get("summary") or {}
        for key in ("total_points", "ok", "failed", "poisoned"):
            if key in summary and summary[key] != job_manifest.get(key):
                report._add(
                    "error", "job.manifest.disagrees",
                    f"job {job_id!r}: store summary says {key}="
                    f"{summary[key]} but manifest says "
                    f"{job_manifest.get(key)}",
                )
    report.stats["job_runs_audited"] = audited


def _audit_service_litter(report: AuditReport) -> None:
    """Orphaned atomic-write temp files under the service tree."""
    from repro.service.lease import LEASES_DIR

    tmp_files = sorted(
        glob.glob(os.path.join(report.campaign_dir, "*.tmp.*"))
        + glob.glob(os.path.join(report.campaign_dir, LEASES_DIR, "*.tmp.*"))
    )
    for path in tmp_files:
        report._add(
            "warning", "service.tmp",
            f"orphaned temp file {os.path.relpath(path, report.campaign_dir)} "
            f"(an atomic write died before its os.replace)",
        )
    report.stats["service_tmp_files"] = len(tmp_files)
