"""Resilient experiment runner: isolated, retryable, checkpointed sweeps.

Quickstart::

    from repro.runner import CampaignRunner, RunSpec, WorkloadSpec
    from repro.sim import psb_config

    specs = [
        RunSpec(run_id=f"health/{label}", config=config,
                trace=WorkloadSpec("health", seed=1),
                max_instructions=20_000, warmup_instructions=5_000)
        for label, config in {"psb": psb_config()}.items()
    ]
    runner = CampaignRunner("campaign-dir", timeout=120, retries=2,
                            on_error="skip")
    campaign = runner.run(specs)          # survives crashes/hangs
    campaign = CampaignRunner("campaign-dir", resume=True).run(specs)
    # ...completed points are loaded from checkpoint, not re-run.
"""

from repro.runner.audit import (
    AuditIssue,
    AuditReport,
    audit_campaign,
    audit_service,
    is_service_dir,
)
from repro.runner.campaign import (
    CampaignResult,
    CampaignRunner,
    RunOutcome,
    RunSpec,
    TraceFileSpec,
    WorkloadSpec,
    execute_spec,
)
from repro.runner.chaos import ChaosEngine, ChaosSpec, corrupt_binary_file
from repro.runner.checkpoint import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    CheckpointStore,
    result_from_dict,
    result_to_dict,
)
from repro.runner.faults import (
    CORRUPT_STATE_TARGETS,
    FaultSpec,
    InjectedCrash,
    corrupt_simulator_state,
    corrupt_trace_file,
    inject_faults,
)

__all__ = [
    "AuditIssue",
    "AuditReport",
    "audit_campaign",
    "audit_service",
    "is_service_dir",
    "CampaignResult",
    "CampaignRunner",
    "ChaosEngine",
    "ChaosSpec",
    "corrupt_binary_file",
    "RunOutcome",
    "RunSpec",
    "TraceFileSpec",
    "WorkloadSpec",
    "execute_spec",
    "CHECKPOINT_NAME",
    "MANIFEST_NAME",
    "CheckpointStore",
    "result_from_dict",
    "result_to_dict",
    "CORRUPT_STATE_TARGETS",
    "FaultSpec",
    "InjectedCrash",
    "corrupt_simulator_state",
    "corrupt_trace_file",
    "inject_faults",
]
