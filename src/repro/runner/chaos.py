"""Deterministic environment-level chaos for campaign durability tests.

:mod:`repro.runner.faults` injects faults *inside* a run's trace
stream; this module injects them *around* runs, into the environment a
long-lived campaign actually depends on: the checkpoint file, the
worker pool, the compiled-trace cache, snapshot files, and the
manifest.  A :class:`ChaosSpec` is a frozen, seeded schedule (same
design as :class:`~repro.runner.faults.FaultSpec`); a
:class:`ChaosEngine` is its mutable parent-process counterpart that the
runner and :class:`~repro.runner.checkpoint.CheckpointStore` consult at
each injection point:

- **ENOSPC / torn checkpoint appends** — an append raises ``OSError``
  before (ENOSPC) or after half the line is on disk (torn).  The store
  queues the entry and retries at campaign end; the torn fragment is
  healed by the next append's newline check and skipped by CRC
  validation on replay.
- **worker kills** — the first launch of a ``kill_points`` point (or
  every launch of a ``poison_points`` point) has its worker process
  SIGKILLed right after submission.  Keying on the point's *spec index*
  rather than a global launch counter keeps the ok/poisoned tallies
  independent of parallel scheduling order.
- **cache corruption** — freshly prewarmed compiled traces are
  truncated or bit-flipped before workers load them; the binfmt
  checksum turns that into a transparent recompile.
- **snapshot corruption** — a retry's resume snapshot is bit-flipped
  before the retry reads it; the snapshot CRC turns that into a
  quarantine plus a from-scratch rerun.
- **torn manifest writes** — a scheduled manifest rewrite tears its
  *temp* file and abandons the ``os.replace`` (a kill mid-rewrite);
  atomic writes mean the previous manifest survives untouched.

Everything is a pure function of the spec and the injection-point
counters, so a seeded chaos campaign produces the same fault sequence
— and the same manifest tallies — on every run.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Valid ``ChaosSpec.corrupt_cache`` modes.
CACHE_CORRUPTION_MODES = ("", "truncate", "bitflip")


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded schedule of environment faults around a campaign's runs.

    All indices are 0-based.  ``enospc_appends``/``torn_appends`` count
    checkpoint-append attempts in completion order;
    ``kill_points``/``poison_points`` are *spec-order* point indices
    (scheduling-independent); ``corrupt_snapshot_retries`` counts
    snapshot-resumed retry reschedules; ``torn_manifest_writes`` counts
    manifest rewrites.  An empty tuple (or ``""``) disables that fault.
    """

    #: Seed for the corruption byte/offset choices (not the schedule —
    #: the schedule is explicit in the tuples below).
    seed: int = 0
    #: Checkpoint appends that fail with ENOSPC before writing.
    enospc_appends: Tuple[int, ...] = ()
    #: Checkpoint appends that write half a line, then fail with EIO.
    torn_appends: Tuple[int, ...] = ()
    #: Spec indices whose first worker launch is killed (once).
    kill_points: Tuple[int, ...] = ()
    #: Spec indices whose every worker launch is killed (poisoned).
    poison_points: Tuple[int, ...] = ()
    #: How prewarmed compiled-trace cache entries are damaged.
    corrupt_cache: str = ""
    #: Snapshot-resumed retries whose snapshot file is bit-flipped.
    corrupt_snapshot_retries: Tuple[int, ...] = ()
    #: Manifest rewrites whose temp file is torn (replace abandoned).
    torn_manifest_writes: Tuple[int, ...] = ()
    #: Service job-store appends that fail with ENOSPC before writing.
    enospc_job_appends: Tuple[int, ...] = ()
    #: Service job-store appends that write half a line, then fail.
    torn_job_appends: Tuple[int, ...] = ()
    #: Submission indices the HTTP front end replays twice (the store's
    #: idempotent dedup must absorb the duplicate).
    duplicate_submissions: Tuple[int, ...] = ()
    #: Lease-renewal indices where the worker "crashes" between
    #: renewals: the heartbeat stops and the run is abandoned, so the
    #: lease must expire and the reaper must re-enqueue the job.
    drop_lease_renewals: Tuple[int, ...] = ()
    #: Lease-renewal indices where the lease is force-expired under its
    #: owner (the expired-lease race): the renewal must fence with
    #: :class:`~repro.errors.LeaseLostError` and the owner must abandon
    #: the job without recording a completion.
    steal_lease_renewals: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "enospc_appends",
            "torn_appends",
            "kill_points",
            "poison_points",
            "corrupt_snapshot_retries",
            "torn_manifest_writes",
            "enospc_job_appends",
            "torn_job_appends",
            "duplicate_submissions",
            "drop_lease_renewals",
            "steal_lease_renewals",
        ):
            values = getattr(self, name)
            if any(value < 0 for value in values):
                raise ValueError(f"ChaosSpec.{name}: indices must be >= 0")
        if self.corrupt_cache not in CACHE_CORRUPTION_MODES:
            raise ValueError(
                f"ChaosSpec.corrupt_cache: {self.corrupt_cache!r} is not "
                f"one of {CACHE_CORRUPTION_MODES}"
            )
        overlap = set(self.kill_points) & set(self.poison_points)
        if overlap:
            raise ValueError(
                f"ChaosSpec: points {sorted(overlap)} are in both "
                f"kill_points and poison_points"
            )
        races = set(self.drop_lease_renewals) & set(self.steal_lease_renewals)
        if races:
            raise ValueError(
                f"ChaosSpec: renewals {sorted(races)} are in both "
                f"drop_lease_renewals and steal_lease_renewals"
            )

    @property
    def is_noop(self) -> bool:
        """True when the spec schedules no fault at all."""
        return (
            not self.enospc_appends
            and not self.torn_appends
            and not self.kill_points
            and not self.poison_points
            and not self.corrupt_cache
            and not self.corrupt_snapshot_retries
            and not self.torn_manifest_writes
            and not self.enospc_job_appends
            and not self.torn_job_appends
            and not self.duplicate_submissions
            and not self.drop_lease_renewals
            and not self.steal_lease_renewals
        )

    @classmethod
    def scheduled(
        cls,
        seed: int,
        points: int,
        intensity: float = 0.5,
        poison: int = 0,
    ) -> "ChaosSpec":
        """A deterministic fault schedule for a ``points``-long campaign.

        Spreads recoverable faults — one-shot worker kills, ENOSPC and
        torn checkpoint appends, cache bit-flips — over the campaign at
        a density set by ``intensity`` (0..1), and marks ``poison``
        points as unkillable-budget-exhausting.  The same
        ``(seed, points, intensity, poison)`` always yields the same
        spec, so expected ok/failed/poisoned tallies are exact:
        everything except the ``poison`` points must end ``ok``.
        """
        if points <= 0:
            raise ValueError("ChaosSpec.scheduled: points must be > 0")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("ChaosSpec.scheduled: intensity must be in 0..1")
        if not 0 <= poison <= points:
            raise ValueError(
                "ChaosSpec.scheduled: poison must be in 0..points"
            )
        rng = random.Random(seed)
        indices = list(range(points))
        rng.shuffle(indices)
        poison_points = tuple(sorted(indices[:poison]))
        survivors = indices[poison:]
        kill_count = (
            min(len(survivors), max(1, round(len(survivors) * intensity / 2)))
            if intensity > 0 and survivors
            else 0
        )
        kill_points = tuple(sorted(survivors[:kill_count]))
        # Fault some of the first `points` appends: every point appends
        # at least once, so these indices are guaranteed to fire.
        append_budget = (
            max(1, round(points * intensity / 2)) if intensity > 0 else 0
        )
        append_indices = list(range(points))
        rng.shuffle(append_indices)
        enospc = tuple(sorted(append_indices[:append_budget]))
        torn = tuple(
            sorted(append_indices[append_budget : 2 * append_budget])
        )
        return cls(
            seed=seed,
            enospc_appends=enospc,
            torn_appends=torn,
            kill_points=kill_points,
            poison_points=poison_points,
            corrupt_cache="bitflip" if intensity > 0 else "",
        )

    @classmethod
    def service_scheduled(
        cls, seed: int, submissions: int = 4, torn: bool = False
    ) -> "ChaosSpec":
        """A deterministic schedule of *service-level* faults.

        Targets the campaign service's admission and persistence paths
        for a workload of roughly ``submissions`` job submissions: two
        job-store appends fail with ENOSPC, and one submission is
        replayed twice by the front end.  All of these must be absorbed
        *without residue* — the failed entries are re-appended by
        ``flush_pending``, the duplicate deduplicates onto the existing
        job — so a seeded chaos service run ends with the same job
        states as a fault-free one and a strict audit stays clean.

        ``torn=True`` turns one of the append faults into a mid-line
        torn write instead.  The store survives that too (the fragment
        is confined to its own CRC-rejected line and healed over), but
        the fragment is deliberately audit-visible as a warning, so
        torn chaos is opt-in for runs that gate on ``audit --strict``.
        Lease faults (``drop_lease_renewals``/``steal_lease_renewals``)
        are left to explicit schedules: they trade wall-clock time for
        coverage, which tests opt into individually.
        """
        if submissions <= 0:
            raise ValueError(
                "ChaosSpec.service_scheduled: submissions must be > 0"
            )
        rng = random.Random(seed ^ 0x5EC)
        # Each job's lifecycle appends at least twice (queued, running),
        # so indices below 2 * submissions are guaranteed to fire; keep
        # the two append faults distinct.
        first = rng.randrange(2 * submissions)
        second = rng.randrange(2 * submissions)
        if second == first:
            second = (second + 1) % (2 * submissions)
        return cls(
            seed=seed,
            enospc_job_appends=(
                (first,) if torn else tuple(sorted((first, second)))
            ),
            torn_job_appends=(second,) if torn else (),
            duplicate_submissions=(rng.randrange(submissions),),
        )


def corrupt_binary_file(path: str, mode: str, seed: int = 0) -> None:
    """Deterministically damage the binary file at ``path``.

    ``mode="truncate"`` cuts the file to 60% of its size;
    ``mode="bitflip"`` flips one seeded bit somewhere in the file.
    Used by the chaos engine against compiled traces and snapshots —
    both damages must be caught by the artifact's checksum on load.
    """
    if mode not in ("truncate", "bitflip"):
        raise ValueError(f"corrupt_binary_file: unknown mode {mode!r}")
    size = os.path.getsize(path)
    if size == 0:
        return
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(max(1, (size * 3) // 5))
        return
    rng = random.Random(seed ^ zlib.crc32(os.path.basename(path).encode()))
    offset = rng.randrange(size)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))


class ChaosEngine:
    """Parent-process consumer of a :class:`ChaosSpec`.

    Owns the injection-point counters (append index, retry index,
    manifest-write index, per-point kill tallies live in the runner)
    and an event log; :meth:`summary` is embedded in the campaign
    manifest so an auditor can see exactly which faults fired.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self.events: List[str] = []
        self.counters: Dict[str, int] = {
            "checkpoint_enospc": 0,
            "checkpoint_torn": 0,
            "worker_kills": 0,
            "cache_corrupted": 0,
            "snapshots_corrupted": 0,
            "manifest_torn": 0,
            "job_enospc": 0,
            "job_torn": 0,
            "submissions_duplicated": 0,
            "renewals_dropped": 0,
            "leases_stolen": 0,
        }
        self._append_index = 0
        self._retry_index = 0
        self._manifest_index = 0
        self._job_append_index = 0
        self._submission_index = 0
        self._renewal_index = 0

    def _record(self, counter: str, event: str) -> None:
        self.counters[counter] += 1
        self.events.append(event)

    def checkpoint_fault(self) -> Optional[str]:
        """Consume one append attempt; the fault to inject, if any.

        Returns ``"enospc"``, ``"torn"``, or ``None``.  When an index
        is scheduled for both, ENOSPC wins (the write never starts).
        """
        index = self._append_index
        self._append_index += 1
        if index in self.spec.enospc_appends:
            self._record(
                "checkpoint_enospc", f"append {index}: injected ENOSPC"
            )
            return "enospc"
        if index in self.spec.torn_appends:
            self._record(
                "checkpoint_torn", f"append {index}: injected torn write"
            )
            return "torn"
        return None

    def kill_attempt(self, point_index: int, worker_kills: int) -> bool:
        """Should this launch of spec point ``point_index`` be killed?

        ``worker_kills`` is how many times the point's worker has
        already been killed: a ``kill_points`` point dies only on its
        first launch, a ``poison_points`` point dies on every launch.
        """
        if point_index in self.spec.poison_points:
            self._record(
                "worker_kills",
                f"point {point_index}: killed worker (poison, "
                f"kill #{worker_kills + 1})",
            )
            return True
        if point_index in self.spec.kill_points and worker_kills == 0:
            self._record(
                "worker_kills", f"point {point_index}: killed worker once"
            )
            return True
        return False

    def corrupt_cache_entries(self, paths: Iterable[str]) -> int:
        """Damage the given prewarmed cache entries; return how many."""
        if not self.spec.corrupt_cache:
            return 0
        damaged = 0
        for path in paths:
            try:
                corrupt_binary_file(
                    path, self.spec.corrupt_cache, seed=self.spec.seed
                )
            except OSError:
                continue
            damaged += 1
            self._record(
                "cache_corrupted",
                f"cache entry {os.path.basename(path)}: "
                f"{self.spec.corrupt_cache}",
            )
        return damaged

    def maybe_corrupt_snapshot(self, path: str) -> bool:
        """Consume one retry reschedule; bit-flip its snapshot if due."""
        index = self._retry_index
        self._retry_index += 1
        if index not in self.spec.corrupt_snapshot_retries:
            return False
        if not os.path.exists(path):
            return False
        try:
            corrupt_binary_file(path, "bitflip", seed=self.spec.seed)
        except OSError:
            return False
        self._record(
            "snapshots_corrupted",
            f"retry {index}: bit-flipped snapshot "
            f"{os.path.basename(path)}",
        )
        return True

    def job_append_fault(self) -> Optional[str]:
        """Consume one job-store append attempt; the fault, if any.

        The service-side sibling of :meth:`checkpoint_fault`: returns
        ``"enospc"``, ``"torn"``, or ``None``, with ENOSPC winning a
        double booking (the write never starts).
        """
        index = self._job_append_index
        self._job_append_index += 1
        if index in self.spec.enospc_job_appends:
            self._record(
                "job_enospc", f"job append {index}: injected ENOSPC"
            )
            return "enospc"
        if index in self.spec.torn_job_appends:
            self._record(
                "job_torn", f"job append {index}: injected torn write"
            )
            return "torn"
        return None

    def duplicate_submission(self) -> bool:
        """Consume one job submission; True when it should be replayed.

        The HTTP front end submits the same payload a second time — a
        client retrying a request whose response it never saw — and the
        job store's idempotent dedup must return the existing job.
        """
        index = self._submission_index
        self._submission_index += 1
        if index in self.spec.duplicate_submissions:
            self._record(
                "submissions_duplicated",
                f"submission {index}: replayed twice",
            )
            return True
        return False

    def lease_renewal_fault(self) -> Optional[str]:
        """Consume one lease renewal; the fault to inject, if any.

        ``"drop"`` simulates a worker that crashes between renewals
        (the heartbeat stops; the lease must expire and the reaper must
        re-enqueue the job); ``"steal"`` simulates the expired-lease
        race (the lease is taken out from under the owner, whose next
        renewal must fence with ``LeaseLostError``).
        """
        index = self._renewal_index
        self._renewal_index += 1
        if index in self.spec.drop_lease_renewals:
            self._record(
                "renewals_dropped",
                f"renewal {index}: worker crash between renewals",
            )
            return "drop"
        if index in self.spec.steal_lease_renewals:
            self._record(
                "leases_stolen", f"renewal {index}: lease force-expired"
            )
            return "steal"
        return None

    def manifest_fault(self) -> bool:
        """Consume one manifest rewrite; True when it should tear."""
        index = self._manifest_index
        self._manifest_index += 1
        if index in self.spec.torn_manifest_writes:
            self._record(
                "manifest_torn", f"manifest write {index}: torn temp file"
            )
            return True
        return False

    def summary(self) -> Dict[str, object]:
        """The JSON-able chaos record embedded in the manifest."""
        return {
            "seed": self.spec.seed,
            "counters": dict(self.counters),
            "events": list(self.events),
        }
