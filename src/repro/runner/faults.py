"""Deterministic fault injection for testing the campaign runner.

A :class:`FaultSpec` rides inside a :class:`~repro.runner.campaign.RunSpec`
(it is a frozen, picklable dataclass, so it crosses the process boundary)
and :func:`inject_faults` wraps the run's trace iterator to fire the
scheduled faults:

- **crash** — raise :class:`InjectedCrash` (a plain ``RuntimeError``)
  when the indexed record is reached.  The simulator classifies it as a
  retryable :class:`~repro.errors.SimulationError`.  ``crash_attempts``
  limits the crash to the first *k* attempts of a run, which is how
  tests prove that retry actually recovers.
- **hang** — sleep ``hang_seconds`` at the indexed record, modelling a
  wedged simulation.  Only a process-isolated runner with a timeout can
  recover from this; never inject a hang into an inline run.
- **corrupt record** — raise :class:`~repro.errors.TraceFormatError` at
  the indexed record, modelling a malformed record discovered mid-stream
  by a lazy trace parser.  Non-retryable by design.
- **corrupt state** — silently clobber a live simulator structure (an
  MSHR file, a bus reservation list, a stream buffer, a saturating
  counter, a statistics counter) when the indexed record is reached,
  *without raising anything*.  This models the exact failure the
  integrity layer exists for: plausible-but-wrong state that produces
  plausible-but-wrong numbers.  Only an enabled
  :class:`~repro.integrity.invariants.InvariantChecker` turns it into
  an :class:`~repro.errors.IntegrityError`; with invariants off the
  run completes and reports garbage, which is the point of the test.

Everything is a function of (record index, attempt number): the same
spec always fires the same faults at the same points, so recovery tests
are exactly reproducible.

:func:`corrupt_trace_file` complements the iterator-level faults by
physically clobbering a line of an on-disk trace, for end-to-end tests
that want the *real* parser to trip over a *real* bad record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.trace.record import TraceRecord

#: Valid ``FaultSpec.corrupt_state_target`` values.
CORRUPT_STATE_TARGETS = ("mshr", "bus", "streambuf", "counter", "stats")


class InjectedCrash(RuntimeError):
    """The fault harness's stand-in for an arbitrary simulator crash."""


@dataclass(frozen=True)
class FaultSpec:
    """Schedule of faults to inject into one run's trace stream.

    Record indices are 0-based positions in the dynamic record stream.
    ``None`` disables that fault.
    """

    #: Raise :class:`InjectedCrash` when this record index is reached.
    crash_at: Optional[int] = None
    #: Crash only on the first ``crash_attempts`` attempts (``None`` =
    #: every attempt — a "hard" deterministic crash).
    crash_attempts: Optional[int] = None
    #: Sleep at this record index, simulating a hung run.
    hang_at: Optional[int] = None
    hang_seconds: float = 3600.0
    #: Hang only on the first ``hang_attempts`` attempts (``None`` =
    #: every attempt).  A snapshot-resumed retry past the hang index
    #: never replays the hang regardless.
    hang_attempts: Optional[int] = None
    #: Raise :class:`TraceFormatError` at this record index.
    corrupt_at: Optional[int] = None
    #: Silently corrupt live simulator state at this record index.
    corrupt_state_at: Optional[int] = None
    #: Which structure :func:`corrupt_simulator_state` clobbers.
    corrupt_state_target: str = "mshr"

    def __post_init__(self) -> None:
        for name in ("crash_at", "hang_at", "corrupt_at", "corrupt_state_at"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"FaultSpec.{name}: must be >= 0")
        if self.corrupt_state_target not in CORRUPT_STATE_TARGETS:
            raise ValueError(
                f"FaultSpec.corrupt_state_target: {self.corrupt_state_target!r} "
                f"is not one of {CORRUPT_STATE_TARGETS}"
            )

    @property
    def is_noop(self) -> bool:
        return (
            self.crash_at is None
            and self.hang_at is None
            and self.corrupt_at is None
            and self.corrupt_state_at is None
        )


def inject_faults(
    records: Iterable[TraceRecord],
    spec: FaultSpec,
    attempt: int = 0,
    on_corrupt_state: Optional[Callable[[str], None]] = None,
) -> Iterator[TraceRecord]:
    """Yield ``records``, firing the faults scheduled in ``spec``.

    ``attempt`` is the 0-based retry attempt of the surrounding run; it
    gates ``crash_attempts``/``hang_attempts`` so a transient fault can
    "heal" after a retry while everything else stays byte-identical.

    ``on_corrupt_state`` is invoked with the configured target when the
    ``corrupt_state_at`` index is reached — the caller binds it to the
    live simulator (the trace stream cannot reach inside the machine).
    """
    crash_armed = spec.crash_at is not None and (
        spec.crash_attempts is None or attempt < spec.crash_attempts
    )
    hang_armed = spec.hang_at is not None and (
        spec.hang_attempts is None or attempt < spec.hang_attempts
    )
    for index, record in enumerate(records):
        if spec.corrupt_at is not None and index == spec.corrupt_at:
            raise TraceFormatError(
                f"injected corrupt record at index {index}",
                line_number=index + 2,  # +1 header, +1 to 1-based
                line="<injected>",
            )
        if crash_armed and index == spec.crash_at:
            raise InjectedCrash(
                f"injected crash at record {index} (attempt {attempt})"
            )
        if hang_armed and index == spec.hang_at:
            time.sleep(spec.hang_seconds)
        if (
            spec.corrupt_state_at is not None
            and index == spec.corrupt_state_at
            and on_corrupt_state is not None
        ):
            on_corrupt_state(spec.corrupt_state_target)
        yield record


def corrupt_simulator_state(simulator, target: str) -> None:
    """Deterministically clobber one structure of a live simulator.

    Every recipe produces a state that is *silently* wrong — nothing
    raises here — but that provably violates the named invariant, so an
    enabled checker must convert it into an
    :class:`~repro.errors.IntegrityError`:

    - ``mshr`` — phantom in-flight entries appear in the L1 MSHR file
      without matching allocations (violates ``l1.mshr.balance``, and
      ``l1.mshr.capacity`` once past the file size).
    - ``bus`` — a zero-length reservation lands on the L1-L2 bus
      (violates ``l1_l2_bus.reservation``).
    - ``streambuf`` — buffer 0 is deallocated while an entry still
      holds a block (violates ``streambuf[0].stale``).
    - ``counter`` — buffer 0's priority counter escapes its saturation
      bound (violates ``streambuf[0].priority.bounds``).
    - ``stats`` — the hierarchy reports more demand misses than demand
      accesses (violates ``stats.consistency``).
    """
    from repro.streambuf.buffer import EntryState

    hierarchy = simulator.hierarchy
    controller = simulator.controller
    if target in ("streambuf", "counter") and not hasattr(
        controller, "buffers"
    ):
        raise ValueError(
            f"corrupt_state_target {target!r} needs a stream-buffer "
            "configuration (the machine has no buffers to corrupt)"
        )
    if target == "mshr":
        mshr = hierarchy.l1_mshr
        base = 0x7FF0_0000
        for index in range(mshr.num_entries + 2):
            mshr._inflight.setdefault(base + index * 64, 1 << 60)
    elif target == "bus":
        start = 1 << 40  # far future: drain() never prunes it away
        hierarchy.l1_l2_bus._reservations.append((start, start))
    elif target == "streambuf":
        buffer = controller.buffers[0]
        entry = buffer.entries[0]
        entry.state = EntryState.READY
        entry.block = 0xDEAD_0000
        buffer.allocated = False
        buffer.state = None
    elif target == "counter":
        counter = controller.buffers[0].priority
        counter.value = counter.maximum + 7
    elif target == "stats":
        hierarchy.demand_misses = hierarchy.demand_accesses + 10
    else:
        raise ValueError(f"unknown corrupt_state_target: {target!r}")


def corrupt_trace_file(
    path: str, line_number: int, garbage: str = "!! corrupt record !!"
) -> str:
    """Overwrite 1-based ``line_number`` of the trace at ``path``.

    Returns the original line text so tests can assert against it.  The
    header is line 1; the first record is line 2.
    """
    with open(path) as handle:
        lines = handle.readlines()
    if not 1 <= line_number <= len(lines):
        raise ValueError(
            f"line {line_number} out of range (file has {len(lines)} lines)"
        )
    original = lines[line_number - 1].rstrip("\n")
    lines[line_number - 1] = garbage + "\n"
    with open(path, "w") as handle:
        handle.writelines(lines)
    return original
