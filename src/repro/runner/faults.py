"""Deterministic fault injection for testing the campaign runner.

A :class:`FaultSpec` rides inside a :class:`~repro.runner.campaign.RunSpec`
(it is a frozen, picklable dataclass, so it crosses the process boundary)
and :func:`inject_faults` wraps the run's trace iterator to fire the
scheduled faults:

- **crash** — raise :class:`InjectedCrash` (a plain ``RuntimeError``)
  when the indexed record is reached.  The simulator classifies it as a
  retryable :class:`~repro.errors.SimulationError`.  ``crash_attempts``
  limits the crash to the first *k* attempts of a run, which is how
  tests prove that retry actually recovers.
- **hang** — sleep ``hang_seconds`` at the indexed record, modelling a
  wedged simulation.  Only a process-isolated runner with a timeout can
  recover from this; never inject a hang into an inline run.
- **corrupt record** — raise :class:`~repro.errors.TraceFormatError` at
  the indexed record, modelling a malformed record discovered mid-stream
  by a lazy trace parser.  Non-retryable by design.

Everything is a function of (record index, attempt number): the same
spec always fires the same faults at the same points, so recovery tests
are exactly reproducible.

:func:`corrupt_trace_file` complements the iterator-level faults by
physically clobbering a line of an on-disk trace, for end-to-end tests
that want the *real* parser to trip over a *real* bad record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.trace.record import TraceRecord


class InjectedCrash(RuntimeError):
    """The fault harness's stand-in for an arbitrary simulator crash."""


@dataclass(frozen=True)
class FaultSpec:
    """Schedule of faults to inject into one run's trace stream.

    Record indices are 0-based positions in the dynamic record stream.
    ``None`` disables that fault.
    """

    #: Raise :class:`InjectedCrash` when this record index is reached.
    crash_at: Optional[int] = None
    #: Crash only on the first ``crash_attempts`` attempts (``None`` =
    #: every attempt — a "hard" deterministic crash).
    crash_attempts: Optional[int] = None
    #: Sleep at this record index, simulating a hung run.
    hang_at: Optional[int] = None
    hang_seconds: float = 3600.0
    #: Raise :class:`TraceFormatError` at this record index.
    corrupt_at: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_at", "hang_at", "corrupt_at"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"FaultSpec.{name}: must be >= 0")

    @property
    def is_noop(self) -> bool:
        return (
            self.crash_at is None
            and self.hang_at is None
            and self.corrupt_at is None
        )


def inject_faults(
    records: Iterable[TraceRecord],
    spec: FaultSpec,
    attempt: int = 0,
) -> Iterator[TraceRecord]:
    """Yield ``records``, firing the faults scheduled in ``spec``.

    ``attempt`` is the 0-based retry attempt of the surrounding run; it
    gates ``crash_attempts`` so a transient crash can "heal" after a
    retry while everything else stays byte-identical.
    """
    crash_armed = spec.crash_at is not None and (
        spec.crash_attempts is None or attempt < spec.crash_attempts
    )
    for index, record in enumerate(records):
        if spec.corrupt_at is not None and index == spec.corrupt_at:
            raise TraceFormatError(
                f"injected corrupt record at index {index}",
                line_number=index + 2,  # +1 header, +1 to 1-based
                line="<injected>",
            )
        if crash_armed and index == spec.crash_at:
            raise InjectedCrash(
                f"injected crash at record {index} (attempt {attempt})"
            )
        if spec.hang_at is not None and index == spec.hang_at:
            time.sleep(spec.hang_seconds)
        yield record


def corrupt_trace_file(
    path: str, line_number: int, garbage: str = "!! corrupt record !!"
) -> str:
    """Overwrite 1-based ``line_number`` of the trace at ``path``.

    Returns the original line text so tests can assert against it.  The
    header is line 1; the first record is line 2.
    """
    with open(path) as handle:
        lines = handle.readlines()
    if not 1 <= line_number <= len(lines):
        raise ValueError(
            f"line {line_number} out of range (file has {len(lines)} lines)"
        )
    original = lines[line_number - 1].rstrip("\n")
    lines[line_number - 1] = garbage + "\n"
    with open(path, "w") as handle:
        handle.writelines(lines)
    return original
