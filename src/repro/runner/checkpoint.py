"""Campaign persistence: JSON-lines checkpoints and the manifest.

A campaign directory holds two files:

``checkpoint.jsonl``
    One JSON object per *terminal* run outcome (``ok``, ``failed``, or
    ``poisoned``), appended the moment the outcome is known and flushed
    to disk, so a killed campaign loses at most the points that were in
    flight.  Every line carries its own CRC32 (the ``crc32`` field,
    computed over the rest of the object), so replay can tell a
    bit-flipped line from a merely torn one.  A parallel campaign
    (``workers>1``) appends in *completion* order, not spec order;
    replay is keyed by ``run_id`` (last entry wins; torn or corrupt
    lines are skipped), so an out-of-order file resumes exactly like an
    in-order one.  On ``--resume`` the runner replays this file and
    skips every point whose ``run_id`` and spec fingerprint match.

    Appends are built to survive a hostile filesystem: a failed append
    (ENOSPC, EIO, an injected chaos fault) queues the entry in memory
    and :meth:`CheckpointStore.flush_pending` retries it before the
    manifest is written; a torn trailing fragment left by a previous
    failure is healed by the next append, which starts on a fresh line.

``manifest.json``
    A human-readable summary rewritten at the end of every run (and on
    interrupt): totals, per-failure records with their error taxonomy
    kind, and the campaign status.  The rewrite is atomic (temp file +
    ``os.replace``), so a kill mid-rewrite leaves the previous manifest
    intact rather than a truncated one.

Results round-trip exactly: :func:`result_to_dict` /
:func:`result_from_dict` serialize every field of
:class:`~repro.sim.results.SimulationResult`, and JSON floats preserve
value identity, so a resumed campaign reports bit-identical numbers to
an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import shutil
import uuid
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.ioutil import atomic_write_text, crc32_of

if TYPE_CHECKING:  # runtime import is lazy: repro.sim imports us back
    from repro.runner.chaos import ChaosEngine
    from repro.sim.results import SimulationResult

CHECKPOINT_NAME = "checkpoint.jsonl"
MANIFEST_NAME = "manifest.json"


def result_to_dict(result: "SimulationResult") -> Dict[str, Any]:
    return dataclasses.asdict(result)


def result_from_dict(data: Dict[str, Any]) -> "SimulationResult":
    from repro.sim.results import SimulationResult

    known = {field.name for field in dataclasses.fields(SimulationResult)}
    return SimulationResult(**{k: v for k, v in data.items() if k in known})


def spec_fingerprint(*parts: Any) -> str:
    """Stable digest of a run's defining inputs.

    Frozen dataclasses (configs, workload/trace specs) have
    deterministic ``repr``; callables contribute only their qualified
    name so the digest does not depend on object identity.
    """
    canonical: List[str] = []
    for part in parts:
        if callable(part) and not isinstance(part, type):
            canonical.append(
                f"{getattr(part, '__module__', '?')}."
                f"{getattr(part, '__qualname__', repr(type(part)))}"
            )
        else:
            canonical.append(repr(part))
    digest = hashlib.sha256("|".join(canonical).encode()).hexdigest()
    return digest[:16]


def encode_entry(entry: Dict[str, Any]) -> str:
    """Serialize a checkpoint entry with its per-line CRC32 field.

    The checksum covers the canonical (sorted-keys) serialization of
    every field *except* ``crc32`` itself; :func:`decode_entry` strips
    and verifies it.
    """
    body = json.dumps(
        {k: v for k, v in entry.items() if k != "crc32"}, sort_keys=True
    )
    checksum = crc32_of(body.encode())
    payload = dict(entry)
    payload["crc32"] = f"{checksum:08x}"
    return json.dumps(payload, sort_keys=True)


def decode_entry(
    line: str, key: str = "run_id"
) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Parse one checkpoint line; ``(entry, problem)``.

    ``problem`` is ``None`` for a valid line, else ``"json"`` (does not
    parse — a torn write), ``"crc"`` (parses but the embedded CRC32
    disagrees — bit rot), or ``"shape"`` (valid JSON that is not a
    ``key``-keyed object).  Legacy lines without a ``crc32`` field are
    accepted unverified.  ``key`` is the identity field the log is
    keyed by: ``"run_id"`` for campaign checkpoints, ``"job_id"`` for
    the service job store, which reuses this format.
    """
    try:
        entry = json.loads(line)
    except json.JSONDecodeError:
        return None, "json"
    if not isinstance(entry, dict) or key not in entry:
        return None, "shape"
    stored = entry.pop("crc32", None)
    if stored is not None:
        body = json.dumps(entry, sort_keys=True)
        if f"{crc32_of(body.encode()):08x}" != stored:
            return None, "crc"
    return entry, None


def iter_checkpoint_lines(
    path: str, key: str = "run_id"
) -> Iterator[Tuple[int, str, Optional[Dict[str, Any]], Optional[str]]]:
    """Yield ``(line_number, line, entry, problem)`` for a checkpoint.

    Shared by replay (:meth:`CheckpointStore.load`), the service job
    store (``key="job_id"``), and the offline auditor, so all three
    agree on exactly which lines count.  Blank lines are skipped;
    ``line_number`` is 1-based.
    """
    if not os.path.exists(path):
        return
    with open(path) as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            entry, problem = decode_entry(line, key=key)
            yield number, line, entry, problem


class CheckpointStore:
    """Append-only record of terminal run outcomes in a campaign dir.

    An optional :class:`~repro.runner.chaos.ChaosEngine` injects
    append/manifest faults; the store's own recovery machinery
    (pending-entry queue, newline healing, atomic manifest writes) is
    what the chaos tests exercise.
    """

    def __init__(
        self,
        campaign_dir: str,
        chaos: Optional["ChaosEngine"] = None,
    ) -> None:
        self.campaign_dir = campaign_dir
        os.makedirs(campaign_dir, exist_ok=True)
        self.checkpoint_path = os.path.join(campaign_dir, CHECKPOINT_NAME)
        self.manifest_path = os.path.join(campaign_dir, MANIFEST_NAME)
        self.chaos = chaos
        #: Entries whose append failed, awaiting :meth:`flush_pending`.
        self._pending: List[Dict[str, Any]] = []
        #: Total append attempts that raised (including injected ones).
        self.append_failures = 0

    def clear(self) -> None:
        """Start a fresh campaign: drop any previous checkpoint/manifest
        and any stale within-run snapshots."""
        for path in (self.checkpoint_path, self.manifest_path):
            if os.path.exists(path):
                os.remove(path)
        snapshots = os.path.join(self.campaign_dir, "snapshots")
        if os.path.isdir(snapshots):
            shutil.rmtree(snapshots, ignore_errors=True)

    @property
    def pending_ids(self) -> List[str]:
        """``run_id``\\ s of entries still waiting for a durable append."""
        return [entry.get("run_id", "?") for entry in self._pending]

    def append(self, entry: Dict[str, Any]) -> bool:
        """Durably record one terminal outcome.

        Returns True when the entry reached disk.  On any ``OSError``
        (disk full, I/O error, injected chaos) the entry is queued for
        :meth:`flush_pending` and False is returned — a failing disk
        degrades durability, it never aborts the campaign.
        """
        line = encode_entry(entry) + "\n"
        fault = self.chaos.checkpoint_fault() if self.chaos else None
        try:
            if fault == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left")
            with open(self.checkpoint_path, "a+b") as handle:
                # Heal a torn trailing fragment from an earlier failed
                # append: start this entry on a fresh line so the
                # fragment stays confined to its own (CRC-rejected) line.
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
                if fault == "torn":
                    handle.write(line.encode()[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise OSError(errno.EIO, "injected: torn write")
                handle.write(line.encode())
                handle.flush()
                os.fsync(handle.fileno())
            return True
        except OSError:
            self.append_failures += 1
            self._pending.append(dict(entry))
            return False

    def flush_pending(self) -> int:
        """Retry every queued append; return how many are still stuck.

        Called before the manifest is written, so a transient disk
        failure (or an injected one) costs nothing: the checkpoint ends
        complete and the manifest's ``checkpoint_gaps`` list is empty.
        """
        still_pending = list(self._pending)
        self._pending = []
        for entry in still_pending:
            self.append(entry)
        return len(self._pending)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Replay the checkpoint: ``run_id`` -> latest terminal entry.

        Tolerates a truncated final line (the writer may have been
        killed mid-append) and skips lines whose CRC32 does not verify;
        later entries for the same ``run_id`` supersede earlier ones.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        for __, __, entry, problem in iter_checkpoint_lines(
            self.checkpoint_path
        ):
            if problem is None and entry is not None:
                entries[entry["run_id"]] = entry
        return entries

    def write_manifest(
        self,
        status: str,
        total: int,
        completed: Iterable[str],
        resumed: Iterable[str],
        failures: Iterable[Dict[str, Any]],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Atomically rewrite ``manifest.json``; return its payload.

        ``failures`` entries with ``"status": "poisoned"`` are tallied
        separately from ordinary failures.  Raises ``OSError`` when the
        write cannot complete (including an injected torn-manifest
        fault) — the previous manifest, if any, is left untouched.
        """
        failures = list(failures)
        poisoned = sum(
            1 for record in failures if record.get("status") == "poisoned"
        )
        manifest: Dict[str, Any] = {
            "status": status,
            "total_points": total,
            "ok": len(list(completed)),
            "failed": len(failures) - poisoned,
            "poisoned": poisoned,
            "resumed_from_checkpoint": len(list(resumed)),
            "failures": failures,
        }
        if extra:
            manifest.update(extra)
        text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        if self.chaos and self.chaos.manifest_fault():
            # Simulate a kill mid-rewrite: the temp file is torn and the
            # os.replace never happens.  Atomicity means the previous
            # manifest survives; the torn temp is audit-visible litter.
            tmp_path = (
                f"{self.manifest_path}.tmp."
                f"{os.getpid()}.{uuid.uuid4().hex[:8]}"
            )
            with open(tmp_path, "w") as handle:
                handle.write(text[: len(text) // 2])
            raise OSError(errno.EIO, "injected: torn manifest write")
        atomic_write_text(self.manifest_path, text)
        return manifest

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path) as handle:
            return json.load(handle)
