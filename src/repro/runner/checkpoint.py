"""Campaign persistence: JSON-lines checkpoints and the manifest.

A campaign directory holds two files:

``checkpoint.jsonl``
    One JSON object per *terminal* run outcome (``ok`` or ``failed``),
    appended the moment the outcome is known and flushed to disk, so a
    killed campaign loses at most the points that were in flight.  A
    parallel campaign (``workers>1``) appends in *completion* order,
    not spec order; replay is keyed by ``run_id`` (last entry wins and
    torn trailing lines are ignored), so an out-of-order file resumes
    exactly like an in-order one.  On ``--resume`` the runner replays
    this file and skips every point whose ``run_id`` and spec
    fingerprint match.

``manifest.json``
    A human-readable summary rewritten at the end of every run (and on
    interrupt): totals, per-failure records with their error taxonomy
    kind, and the campaign status.

Results round-trip exactly: :func:`result_to_dict` /
:func:`result_from_dict` serialize every field of
:class:`~repro.sim.results.SimulationResult`, and JSON floats preserve
value identity, so a resumed campaign reports bit-identical numbers to
an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # runtime import is lazy: repro.sim imports us back
    from repro.sim.results import SimulationResult

CHECKPOINT_NAME = "checkpoint.jsonl"
MANIFEST_NAME = "manifest.json"


def result_to_dict(result: "SimulationResult") -> Dict[str, Any]:
    return dataclasses.asdict(result)


def result_from_dict(data: Dict[str, Any]) -> "SimulationResult":
    from repro.sim.results import SimulationResult

    known = {field.name for field in dataclasses.fields(SimulationResult)}
    return SimulationResult(**{k: v for k, v in data.items() if k in known})


def spec_fingerprint(*parts: Any) -> str:
    """Stable digest of a run's defining inputs.

    Frozen dataclasses (configs, workload/trace specs) have
    deterministic ``repr``; callables contribute only their qualified
    name so the digest does not depend on object identity.
    """
    canonical: List[str] = []
    for part in parts:
        if callable(part) and not isinstance(part, type):
            canonical.append(
                f"{getattr(part, '__module__', '?')}."
                f"{getattr(part, '__qualname__', repr(type(part)))}"
            )
        else:
            canonical.append(repr(part))
    digest = hashlib.sha256("|".join(canonical).encode()).hexdigest()
    return digest[:16]


class CheckpointStore:
    """Append-only record of terminal run outcomes in a campaign dir."""

    def __init__(self, campaign_dir: str) -> None:
        self.campaign_dir = campaign_dir
        os.makedirs(campaign_dir, exist_ok=True)
        self.checkpoint_path = os.path.join(campaign_dir, CHECKPOINT_NAME)
        self.manifest_path = os.path.join(campaign_dir, MANIFEST_NAME)

    def clear(self) -> None:
        """Start a fresh campaign: drop any previous checkpoint/manifest
        and any stale within-run snapshots."""
        for path in (self.checkpoint_path, self.manifest_path):
            if os.path.exists(path):
                os.remove(path)
        snapshots = os.path.join(self.campaign_dir, "snapshots")
        if os.path.isdir(snapshots):
            shutil.rmtree(snapshots, ignore_errors=True)

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably record one terminal outcome."""
        with open(self.checkpoint_path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Replay the checkpoint: ``run_id`` -> latest terminal entry.

        Tolerates a truncated final line (the writer may have been
        killed mid-append); later entries for the same ``run_id``
        supersede earlier ones.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        if not os.path.exists(self.checkpoint_path):
            return entries
        with open(self.checkpoint_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at the kill point
                if isinstance(entry, dict) and "run_id" in entry:
                    entries[entry["run_id"]] = entry
        return entries

    def write_manifest(
        self,
        status: str,
        total: int,
        completed: Iterable[str],
        resumed: Iterable[str],
        failures: Iterable[Dict[str, Any]],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        failures = list(failures)
        manifest: Dict[str, Any] = {
            "status": status,
            "total_points": total,
            "ok": len(list(completed)),
            "failed": len(failures),
            "resumed_from_checkpoint": len(list(resumed)),
            "failures": failures,
        }
        if extra:
            manifest.update(extra)
        with open(self.manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return manifest

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path) as handle:
            return json.load(handle)
