"""Resilient execution of sweep campaigns.

A *campaign* is an ordered list of :class:`RunSpec` points (one
simulation each).  The :class:`CampaignRunner` executes them with the
failure-handling machinery that a long unattended sweep needs:

- **Process isolation** — each attempt runs in a persistent
  single-process *worker slot* (a long-lived
  ``concurrent.futures.ProcessPoolExecutor(max_workers=1)``), so a
  crashed or wedged simulation cannot take down the campaign, and a
  timed-out worker can be killed without disturbing its siblings.
- **Parallel execution** — ``workers=N`` keeps up to N points in flight
  at once across N slots, completing them out of order.  ``workers=1``
  runs the exact serial schedule (bit-identical results, checkpoint,
  and manifest to previous releases); ``workers=N`` produces the same
  per-point results and an equivalent checkpoint/manifest, differing
  only in completion order (the in-memory campaign and the manifest are
  re-ordered back to spec order before being returned/written).
- **Timeouts** — a wall-clock budget per attempt
  (:class:`~repro.errors.RunTimeoutError` when exceeded).  Under
  parallel execution the budget is tracked as a *deadline* per in-flight
  attempt — the scheduler never blocks in ``future.result(timeout=...)``
  — and an expired attempt's worker is killed in a targeted way.
- **Bounded retry with exponential backoff** — only errors whose class
  is marked ``retryable`` in the taxonomy are retried; a
  :class:`~repro.errors.ConfigError` or
  :class:`~repro.errors.TraceFormatError` is determinate and fails the
  point immediately.  Under parallel execution a backoff never blocks
  the pool: the retry is *rescheduled* with an eligibility deadline and
  other points run in the meantime.
- **Checkpointing** — every terminal outcome is appended to
  ``checkpoint.jsonl`` in the campaign directory; ``resume=True`` skips
  points already recorded there (matching both ``run_id`` and spec
  fingerprint) and reloads their results, so an interrupted campaign
  finishes with results identical to an uninterrupted one.  Parallel
  campaigns append in completion order; resume is keyed by ``run_id``,
  so out-of-order checkpoints replay exactly the same way.
- **Degradation policy** — ``on_error="skip"`` records the failure and
  moves on (the unattended default); ``on_error="fail"`` re-raises after
  recording (fail-fast, the legacy in-process sweep behaviour).  A
  parallel fail-fast kills the outstanding workers, drains the
  scheduler, and writes the failed manifest before re-raising.
- **Worker watchdog** — a worker that dies *without raising* (kill -9,
  OOM, segfault) is respawned and its point relaunched with bounded
  backoff, on a kill budget separate from the retry budget; after
  ``max_worker_kills`` deaths the point is finalised as **poisoned**
  (a distinct terminal state in the checkpoint, manifest, and
  progress) and the campaign continues.  If deaths keep coming with no
  completion in between, the driver falls back to inline execution —
  slower, but the campaign finishes.
- **Chaos** — an optional :class:`~repro.runner.chaos.ChaosSpec`
  injects deterministic environment faults (failing checkpoint
  appends, worker kills, cache/snapshot corruption, torn manifest
  writes) for durability testing; see :mod:`repro.runner.chaos`.
- **Progress** — an optional tracker (duck-typed against
  :class:`repro.obs.progress.CampaignProgress`) receives
  ``begin``/``point_started``/``point_finished``/``finish`` hooks, for
  points done/in-flight/failed tallies, per-point elapsed, and an ETA.

Because specs cross a process boundary, a spec's trace is *declarative*:
a :class:`WorkloadSpec` (regenerate from the registry), a
:class:`TraceFileSpec` (reload from disk), or a picklable zero-argument
callable.  Unpicklable callables (lambdas/closures, as used by the
legacy ``run_configs`` API) automatically fall back to inline execution
for that point.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.config import SimConfig
from repro.errors import (
    ConfigError,
    IntegrityError,
    ReproError,
    RunTimeoutError,
    SimulationError,
    TraceFormatError,
    WorkerPoisonedError,
    error_kind,
)
from repro.runner.chaos import ChaosEngine, ChaosSpec
from repro.runner.checkpoint import (
    CheckpointStore,
    result_from_dict,
    result_to_dict,
    spec_fingerprint,
)
from repro.runner.faults import FaultSpec, inject_faults
from repro.trace.record import TraceRecord

if TYPE_CHECKING:  # runtime import is lazy: repro.sim.sweep imports us back
    from repro.sim.results import SimulationResult

#: Upper bound on how long the parallel driver blocks in ``wait`` before
#: re-checking for a requested stop (signal or cross-thread).
_STOP_POLL_INTERVAL = 0.5


@dataclass(frozen=True)
class WorkloadSpec:
    """A trace regenerated from the workload registry (picklable)."""

    name: str
    seed: int = 1
    scale: float = 1.0


@dataclass(frozen=True)
class TraceFileSpec:
    """A trace reloaded from disk (picklable)."""

    path: str
    strict: bool = True


TraceSource = Union[WorkloadSpec, TraceFileSpec, Callable[[], Iterable[TraceRecord]]]


@dataclass(frozen=True)
class RunSpec:
    """One point of a campaign: a config against a trace source."""

    run_id: str
    config: SimConfig
    trace: TraceSource
    max_instructions: Optional[int] = None
    warmup_instructions: int = 0
    #: Deterministic fault schedule (testing/chaos engineering only).
    faults: Optional[FaultSpec] = None
    #: Replay the trace through the golden functional model after the
    #: run and raise :class:`~repro.errors.IntegrityError` on
    #: divergence.  Requires ``warmup_instructions == 0``.
    golden_check: bool = False

    def fingerprint(self) -> str:
        """Stable identity of this spec's *inputs*, for resume matching.

        A checkpointed outcome is only reused when both the ``run_id``
        and this fingerprint match, so editing a spec invalidates its
        old results.
        """
        parts = [
            self.config, self.trace, self.max_instructions,
            self.warmup_instructions, self.faults,
        ]
        if self.golden_check:
            # Appended conditionally so fingerprints of plain specs
            # stay compatible with pre-existing checkpoints.
            parts.append("golden_check")
        return spec_fingerprint(*parts)


@dataclass
class RunOutcome:
    """Terminal result of one campaign point."""

    run_id: str
    status: str  # "ok" | "failed" | "poisoned"
    attempts: int
    result: Optional[SimulationResult] = None
    error_kind: Optional[str] = None
    error_message: Optional[str] = None
    resumed: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the point completed with a result."""
        return self.status == "ok"


@dataclass
class CampaignResult:
    """Everything a campaign produced, completed and failed alike."""

    results: Dict[str, SimulationResult] = field(default_factory=dict)
    failures: Dict[str, RunOutcome] = field(default_factory=dict)
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)
    resumed: List[str] = field(default_factory=list)
    manifest: Optional[Dict[str, Any]] = None


def _cacheable(trace: TraceSource, max_instructions: Optional[int]) -> bool:
    """True when the point's trace can come from the compiled cache.

    The cache is keyed ``(name, seed, count)``, so it only applies to
    unscaled workload specs with a bounded run length.
    """
    return (
        isinstance(trace, WorkloadSpec)
        and trace.scale == 1.0
        and max_instructions is not None
        and max_instructions > 0
    )


def _resolve_trace(
    trace: TraceSource,
    faults: Optional[FaultSpec],
    attempt: int,
    errors: Optional[List] = None,
    on_corrupt_state: Optional[Callable[[str], None]] = None,
    max_instructions: Optional[int] = None,
) -> Iterable[TraceRecord]:
    # Imported lazily: this module must stay importable from
    # repro.sim.sweep without creating an import cycle through
    # repro.sim/__init__ or repro.workloads.
    if isinstance(trace, WorkloadSpec):
        if _cacheable(trace, max_instructions):
            # The core consumes at most ``max_instructions`` records, so
            # the cached prefix is exactly the generator's output as far
            # as the run can see — results are bit-identical, the load
            # is an mmap instead of a generator re-run, and a parallel
            # campaign's pre-warmed entry is shared by every worker.
            from repro.workloads.cache import cached_workload_trace

            records: Iterable[TraceRecord] = cached_workload_trace(
                trace.name, seed=trace.seed, instructions=max_instructions
            )
        else:
            from repro.workloads import get_workload

            records = get_workload(
                trace.name, seed=trace.seed, scale=trace.scale
            )
    elif isinstance(trace, TraceFileSpec):
        from repro.trace.io import load_trace

        records = load_trace(trace.path, strict=trace.strict, errors=errors)
    elif callable(trace):
        records = trace()
    else:
        raise ConfigError(
            f"RunSpec.trace: cannot interpret {type(trace).__name__} "
            "as a trace source",
            field="RunSpec.trace",
        )
    if faults is not None and not faults.is_noop:
        records = inject_faults(
            records, faults, attempt=attempt, on_corrupt_state=on_corrupt_state
        )
    return records


def execute_spec(
    spec: RunSpec,
    attempt: int = 0,
    snapshot_every: Optional[int] = None,
    snapshot_path: Optional[str] = None,
) -> SimulationResult:
    """Run one campaign point to completion in the current process.

    Module-level (not a method) so ``ProcessPoolExecutor`` can pickle it
    into a worker.  Raises taxonomy errors only: the simulator wraps
    unexpected crashes into :class:`~repro.errors.SimulationError`.

    When ``snapshot_path`` names an existing snapshot file the run
    *resumes* from it instead of starting over (the typical case: a
    previous attempt timed out mid-run); when ``snapshot_every`` is also
    set, fresh snapshots keep landing at ``snapshot_path`` as the run
    progresses, each one atomically replacing the last.
    """
    from repro.integrity.snapshot import SimSnapshot, fast_forward
    from repro.sim.simulator import Simulator

    trace_errors: List = []
    machine: Dict[str, Any] = {}

    def on_corrupt_state(target: str) -> None:
        from repro.runner.faults import corrupt_simulator_state

        corrupt_simulator_state(machine["simulator"], target)

    records = _resolve_trace(
        spec.trace,
        spec.faults,
        attempt,
        errors=trace_errors,
        on_corrupt_state=on_corrupt_state,
        max_instructions=spec.max_instructions,
    )

    snapshot_sink = None
    if snapshot_path is not None and snapshot_every is not None:

        def snapshot_sink(snapshot: "SimSnapshot") -> None:
            snapshot.save(snapshot_path)

    resumed_cycle: Optional[int] = None
    snapshot: Optional["SimSnapshot"] = None
    snapshot_quarantined = False
    if snapshot_path is not None and os.path.exists(snapshot_path):
        try:
            snapshot = SimSnapshot.load(snapshot_path)
        except SimulationError:
            # A corrupt/torn snapshot must never poison the retry: move
            # it aside (post-mortem evidence, audit-visible) and run the
            # attempt from scratch — slower, but always correct.
            snapshot = None
            snapshot_quarantined = True
            try:
                os.replace(snapshot_path, snapshot_path + ".corrupt")
            except OSError:
                pass
    if snapshot is not None:
        expected_mode = (
            "sampled" if spec.config.sampling is not None else "detailed"
        )
        if snapshot.mode != expected_mode:
            from repro.errors import IntegrityError

            raise IntegrityError(
                f"snapshot for {spec.run_id!r} was captured in "
                f"{snapshot.mode!r} mode but the spec runs in "
                f"{expected_mode!r} mode; refusing a cross-mode resume",
                invariant="snapshot.mode",
            )
        if snapshot.mode == "sampled":
            from repro.sampling.driver import resume_sampled

            resumed_cycle = snapshot.cycle
            result = resume_sampled(
                snapshot,
                records,
                label=spec.run_id,
                snapshot_every=snapshot_every,
                snapshot_sink=snapshot_sink,
            )
        else:
            simulator, state = snapshot.restore()
            machine["simulator"] = simulator
            resumed_cycle = snapshot.cycle
            result = simulator._drive(
                state,
                fast_forward(records, snapshot.records_consumed),
                spec.run_id,
                snapshot_every=snapshot_every,
                snapshot_sink=snapshot_sink,
            )
    else:
        simulator = Simulator(spec.config)
        machine["simulator"] = simulator
        result = simulator.run(
            records,
            max_instructions=spec.max_instructions,
            warmup_instructions=spec.warmup_instructions,
            label=spec.run_id,
            snapshot_every=snapshot_every,
            snapshot_sink=snapshot_sink,
        )
    if resumed_cycle is not None:
        result.extra["resumed_from_cycle"] = float(resumed_cycle)
    if snapshot_quarantined:
        result.extra["snapshot_quarantined"] = 1.0
    if trace_errors:
        result.extra["trace_records_skipped"] = float(len(trace_errors))
    if spec.golden_check:
        _golden_validate(spec, result)
    return result


def _golden_validate(spec: RunSpec, result: SimulationResult) -> None:
    """Replay the spec's trace through the golden model and verify."""
    from repro.integrity.golden import golden_check, run_golden

    if spec.warmup_instructions:
        raise ConfigError(
            "RunSpec.golden_check requires warmup_instructions == 0 "
            "(a warm-up reset discards events the golden model counts)",
            field="RunSpec.golden_check",
        )
    if spec.config.sampling is not None:
        raise ConfigError(
            "RunSpec.golden_check is incompatible with sampling: the "
            "conservation laws count every instruction, but a sampled "
            "run only measures its detailed windows",
            field="RunSpec.golden_check",
        )
    reference = _resolve_trace(
        spec.trace, None, 0, max_instructions=spec.max_instructions
    )
    golden = run_golden(
        spec.config, reference, max_instructions=spec.max_instructions
    )
    report = golden_check(result, golden)
    result.extra["golden_miss_rate"] = report.golden_miss_rate
    report.verify()


def _is_picklable(spec: RunSpec) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


class CampaignRunner:
    """Runs specs with isolation, retries, and checkpointing.

    See the module docstring for the full behaviour.
    """

    def __init__(
        self,
        campaign_dir: Optional[str] = None,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff_base: float = 0.5,
        backoff_max: float = 30.0,
        on_error: str = "skip",
        isolation: str = "process",
        resume: bool = False,
        snapshot_every: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_outcome: Optional[Callable[[RunOutcome], None]] = None,
        progress: Optional[Any] = None,
        chaos: Optional[ChaosSpec] = None,
        max_worker_kills: int = 3,
        inline_fallback_after: Optional[int] = None,
        handle_signals: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigError(
                f"CampaignRunner.workers: must be >= 1, got {workers}",
                field="CampaignRunner.workers",
            )
        if on_error not in ("skip", "fail"):
            raise ConfigError(
                f"CampaignRunner.on_error: expected 'skip' or 'fail', "
                f"got {on_error!r}",
                field="CampaignRunner.on_error",
            )
        if isolation not in ("process", "inline"):
            raise ConfigError(
                f"CampaignRunner.isolation: expected 'process' or 'inline', "
                f"got {isolation!r}",
                field="CampaignRunner.isolation",
            )
        if retries < 0:
            raise ConfigError(
                "CampaignRunner.retries: must be >= 0",
                field="CampaignRunner.retries",
            )
        if timeout is not None and timeout <= 0:
            raise ConfigError(
                "CampaignRunner.timeout: must be positive",
                field="CampaignRunner.timeout",
            )
        if timeout is not None and isolation != "process":
            raise ConfigError(
                "CampaignRunner.timeout: requires process isolation "
                "(an inline hang cannot be interrupted)",
                field="CampaignRunner.timeout",
            )
        if workers > 1 and isolation != "process":
            raise ConfigError(
                "CampaignRunner.workers: parallel execution requires "
                "process isolation (inline points share the driver)",
                field="CampaignRunner.workers",
            )
        if resume and campaign_dir is None:
            raise ConfigError(
                "CampaignRunner.resume: requires a campaign_dir to "
                "resume from",
                field="CampaignRunner.resume",
            )
        if snapshot_every is not None and snapshot_every <= 0:
            raise ConfigError(
                "CampaignRunner.snapshot_every: must be positive",
                field="CampaignRunner.snapshot_every",
            )
        if snapshot_every is not None and campaign_dir is None:
            raise ConfigError(
                "CampaignRunner.snapshot_every: requires a campaign_dir "
                "to store snapshots in",
                field="CampaignRunner.snapshot_every",
            )
        if max_worker_kills < 1:
            raise ConfigError(
                "CampaignRunner.max_worker_kills: must be >= 1",
                field="CampaignRunner.max_worker_kills",
            )
        if inline_fallback_after is not None and inline_fallback_after < 1:
            raise ConfigError(
                "CampaignRunner.inline_fallback_after: must be >= 1",
                field="CampaignRunner.inline_fallback_after",
            )
        if (
            chaos is not None
            and (chaos.kill_points or chaos.poison_points)
            and workers < 2
        ):
            raise ConfigError(
                "CampaignRunner.chaos: kill_points/poison_points need "
                "workers >= 2 (only the parallel driver owns worker "
                "slots to kill)",
                field="CampaignRunner.chaos",
            )
        self.campaign_dir = campaign_dir
        self.snapshot_every = snapshot_every
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.on_error = on_error
        self.isolation = isolation
        self.resume = resume
        self.chaos = chaos
        self.max_worker_kills = max_worker_kills
        #: Consecutive worker deaths (across points) before the driver
        #: stops trusting the pool and runs the rest inline.
        self.inline_fallback_after = (
            inline_fallback_after
            if inline_fallback_after is not None
            else 2 * workers + 2
        )
        #: Install SIGTERM/SIGINT handlers around :meth:`run` (main
        #: thread only) that request a graceful stop instead of letting
        #: the default disposition kill the process mid-append.
        self.handle_signals = handle_signals
        self._sleep = sleep
        self._on_outcome = on_outcome
        self._progress = progress
        self._chaos_engine: Optional[ChaosEngine] = None
        self._stop_requested = False

    # -- graceful stop -------------------------------------------------

    def request_stop(self) -> None:
        """Ask a running campaign to stop at the next safe boundary.

        Safe to call from a signal handler or another thread.  The
        serial driver stops before launching the next point (the
        in-flight attempt finishes and is checkpointed); the parallel
        driver stops launching and kills its outstanding workers
        (their un-checkpointed points re-run on resume).  Either way
        the runner flushes pending checkpoint appends and writes a
        resumable manifest with status ``"interrupted"`` before
        :meth:`run` returns — nothing recorded is lost, nothing torn.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        """True once :meth:`request_stop` (or a handled signal) fired."""
        return self._stop_requested

    # -- single-attempt execution -------------------------------------

    def _attempt_in_subprocess(
        self, spec: RunSpec, attempt: int, snapshot_path: Optional[str]
    ) -> SimulationResult:
        executor = ProcessPoolExecutor(max_workers=1)
        try:
            future = executor.submit(
                execute_spec, spec, attempt, self.snapshot_every, snapshot_path
            )
            try:
                return future.result(timeout=self.timeout)
            except FuturesTimeoutError:
                self._kill_workers(executor)
                raise RunTimeoutError(
                    f"run {spec.run_id!r} exceeded {self.timeout:g}s "
                    f"(attempt {attempt + 1})"
                ) from None
            except BrokenProcessPool as error:
                raise SimulationError(
                    f"run {spec.run_id!r}: worker process died "
                    f"(attempt {attempt + 1}): {error}"
                ) from error
            except KeyboardInterrupt:
                self._kill_workers(executor)
                raise
        finally:
            # Workers are idle (attempt finished) or just killed, so a
            # synchronous shutdown is immediate — and it lets the pool's
            # management thread exit cleanly instead of tripping over
            # closed pipes in the interpreter's atexit hooks.
            executor.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _kill_workers(executor: ProcessPoolExecutor) -> None:
        for process in list((executor._processes or {}).values()):
            process.kill()

    def _attempt(
        self,
        spec: RunSpec,
        attempt: int,
        snapshot_path: Optional[str] = None,
        force_inline: bool = False,
    ) -> SimulationResult:
        if (
            not force_inline
            and self.isolation == "process"
            and _is_picklable(spec)
        ):
            return self._attempt_in_subprocess(spec, attempt, snapshot_path)
        return execute_spec(spec, attempt, self.snapshot_every, snapshot_path)

    def _snapshot_path(self, spec: RunSpec) -> Optional[str]:
        """Where this spec's within-run snapshot lives, if enabled."""
        if self.snapshot_every is None or self.campaign_dir is None:
            return None
        return os.path.join(
            self.campaign_dir, "snapshots", spec.fingerprint() + ".snap"
        )

    # -- retry loop ----------------------------------------------------

    def _run_spec(self, spec: RunSpec, force_inline: bool = False) -> RunOutcome:
        start = time.monotonic()
        last_error: Optional[ReproError] = None
        attempts = 0
        snapshot_path = self._snapshot_path(spec)
        for attempt in range(self.retries + 1):
            attempts = attempt + 1
            try:
                result = self._attempt(
                    spec, attempt, snapshot_path, force_inline=force_inline
                )
                self._discard_snapshot(snapshot_path)
                return RunOutcome(
                    run_id=spec.run_id,
                    status="ok",
                    attempts=attempts,
                    result=result,
                    elapsed_seconds=time.monotonic() - start,
                )
            except KeyboardInterrupt:
                raise
            except ReproError as error:
                last_error = error
            except Exception as error:
                # A worker can surface arbitrary pickled exceptions
                # (e.g. the trace source itself raising before simulate
                # classifies anything): treat as a simulation failure.
                last_error = SimulationError(
                    f"run {spec.run_id!r} raised "
                    f"{type(error).__name__}: {error}"
                )
            if not last_error.retryable or attempt == self.retries:
                break
            if self._chaos_engine is not None and snapshot_path is not None:
                self._chaos_engine.maybe_corrupt_snapshot(snapshot_path)
            self._sleep(
                min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
            )
        assert last_error is not None
        self._discard_snapshot(snapshot_path)
        return RunOutcome(
            run_id=spec.run_id,
            status="failed",
            attempts=attempts,
            error_kind=error_kind(last_error),
            error_message=str(last_error),
            elapsed_seconds=time.monotonic() - start,
        )

    @staticmethod
    def _discard_snapshot(snapshot_path: Optional[str]) -> None:
        """Drop a point's within-run snapshot at a *terminal* outcome.

        Success no longer needs the seed; terminal failure must not
        leave it either, or a later resume could fast-forward from a
        snapshot captured under a different attempt's fault schedule.
        Mid-retry snapshots (a timed-out attempt resuming where it
        stopped) are untouched — this runs only when the point is done.
        """
        if snapshot_path is not None and os.path.exists(snapshot_path):
            try:
                os.remove(snapshot_path)
            except OSError:
                pass

    # -- checkpoint plumbing -------------------------------------------

    @staticmethod
    def _entry_of(outcome: RunOutcome, fingerprint: str) -> Dict[str, Any]:
        return {
            "run_id": outcome.run_id,
            "status": outcome.status,
            "fingerprint": fingerprint,
            "attempts": outcome.attempts,
            "elapsed_seconds": round(outcome.elapsed_seconds, 6),
            "result": (
                result_to_dict(outcome.result)
                if outcome.result is not None
                else None
            ),
            "error": (
                {"kind": outcome.error_kind, "message": outcome.error_message}
                if outcome.status != "ok"
                else None
            ),
        }

    @staticmethod
    def _outcome_of(entry: Dict[str, Any]) -> RunOutcome:
        error = entry.get("error") or {}
        result = entry.get("result")
        return RunOutcome(
            run_id=entry["run_id"],
            status=entry["status"],
            attempts=int(entry.get("attempts", 1)),
            result=result_from_dict(result) if result else None,
            error_kind=error.get("kind"),
            error_message=error.get("message"),
            resumed=True,
            elapsed_seconds=float(entry.get("elapsed_seconds", 0.0)),
        )

    # -- campaign driver -----------------------------------------------

    def run_one(self, spec: RunSpec) -> SimulationResult:
        """Execute a single point outside any campaign bookkeeping.

        Applies isolation/timeout/retry but no checkpointing, and always
        raises on failure (so callers keep plain function semantics).
        """
        outcome = self._run_spec(spec)
        if outcome.ok:
            assert outcome.result is not None
            return outcome.result
        raise self._failure_error(outcome)

    @staticmethod
    def _failure_error(outcome: RunOutcome) -> ReproError:
        message = outcome.error_message or "unknown failure"
        kinds = {
            "ConfigError": ConfigError,
            "TraceFormatError": TraceFormatError,
            "RunTimeoutError": RunTimeoutError,
            "IntegrityError": IntegrityError,
            "WorkerPoisonedError": WorkerPoisonedError,
        }
        return kinds.get(outcome.error_kind or "", SimulationError)(message)

    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Execute a whole campaign; see the module docstring."""
        self._stop_requested = False
        seen: Dict[str, RunSpec] = {}
        for spec in specs:
            if spec.run_id in seen:
                raise ConfigError(
                    f"duplicate run_id {spec.run_id!r} in campaign",
                    field="RunSpec.run_id",
                )
            seen[spec.run_id] = spec

        self._chaos_engine = (
            ChaosEngine(self.chaos)
            if self.chaos is not None and not self.chaos.is_noop
            else None
        )
        store: Optional[CheckpointStore] = None
        prior: Dict[str, Dict[str, Any]] = {}
        if self.campaign_dir is not None:
            store = CheckpointStore(self.campaign_dir, chaos=self._chaos_engine)
            if self.resume:
                prior = store.load()
            else:
                store.clear()

        campaign = CampaignResult()
        if self._progress is not None:
            self._progress.begin(len(specs), workers=self.workers)
        previous_handlers: List[Tuple[int, Any]] = []
        if (
            self.handle_signals
            and threading.current_thread() is threading.main_thread()
        ):
            def _on_signal(signum: int, frame: Any) -> None:
                self.request_stop()

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers.append(
                        (signum, signal.signal(signum, _on_signal))
                    )
                except (OSError, ValueError):  # pragma: no cover
                    continue
        try:
            if self.workers == 1:
                status, pending_error = self._drive_serial(
                    specs, prior, store, campaign
                )
            else:
                status, pending_error = self._drive_parallel(
                    specs, prior, store, campaign
                )
        except KeyboardInterrupt:
            self._order_campaign(campaign, specs)
            if store is not None:
                campaign.manifest = self._try_write_manifest(
                    store, "interrupted", len(specs), campaign
                )
            if self._progress is not None:
                self._progress.finish("interrupted")
            raise
        finally:
            for signum, handler in previous_handlers:
                try:
                    signal.signal(signum, handler)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        self._order_campaign(campaign, specs)
        if store is not None:
            campaign.manifest = self._try_write_manifest(
                store, status, len(specs), campaign
            )
        if self._progress is not None:
            self._progress.finish(status)
        if pending_error is not None:
            raise pending_error
        return campaign

    # -- serial schedule (workers=1) -----------------------------------

    def _drive_serial(
        self,
        specs: Sequence[RunSpec],
        prior: Dict[str, Dict[str, Any]],
        store: Optional[CheckpointStore],
        campaign: CampaignResult,
    ) -> "Tuple[str, Optional[ReproError]]":
        """The historical one-point-at-a-time schedule."""
        for spec in specs:
            if self._stop_requested:
                return "interrupted", None
            fingerprint = spec.fingerprint()
            entry = prior.get(spec.run_id)
            if entry is not None and entry.get("fingerprint") == fingerprint:
                outcome = self._outcome_of(entry)
                campaign.resumed.append(spec.run_id)
            else:
                if self._progress is not None:
                    self._progress.point_started(spec.run_id)
                outcome = self._run_spec(spec)
                if store is not None:
                    store.append(self._entry_of(outcome, fingerprint))
            self._record(campaign, outcome)
            if self._progress is not None:
                self._progress.point_finished(outcome)
            # The terminal callback fires for *every* terminal outcome —
            # including the failing one under on_error="fail", which
            # historically broke out of the loop before notifying.
            if self._on_outcome is not None:
                self._on_outcome(outcome)
            if not outcome.ok and self.on_error == "fail":
                return "failed", self._failure_error(outcome)
        return "complete", None

    # -- parallel schedule (workers>1) ---------------------------------

    def _drive_parallel(
        self,
        specs: Sequence[RunSpec],
        prior: Dict[str, Dict[str, Any]],
        store: Optional[CheckpointStore],
        campaign: CampaignResult,
    ) -> "Tuple[str, Optional[ReproError]]":
        """Fan the campaign out across persistent worker slots."""
        queue: List[Tuple[int, RunSpec, str]] = []
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint()
            entry = prior.get(spec.run_id)
            if entry is not None and entry.get("fingerprint") == fingerprint:
                outcome = self._outcome_of(entry)
                campaign.resumed.append(spec.run_id)
                self._record(campaign, outcome)
                if self._progress is not None:
                    self._progress.point_finished(outcome)
                if self._on_outcome is not None:
                    self._on_outcome(outcome)
                if not outcome.ok and self.on_error == "fail":
                    return "failed", self._failure_error(outcome)
            else:
                queue.append((index, spec, fingerprint))
        warmed = self._prewarm_caches([spec for _, spec, _ in queue])
        if self._chaos_engine is not None:
            self._chaos_engine.corrupt_cache_entries(warmed)
        driver = _ParallelDriver(self, queue, store, campaign)
        return driver.drive()

    def _prewarm_caches(self, specs: Sequence[RunSpec]) -> List[str]:
        """Compile each unique workload-trace prefix once, pre-fork.

        Without this every worker that first touches a given
        ``(workload, seed, length)`` would regenerate — and race to
        compile — the same prefix; warmed in the parent, the workers
        all mmap one shared compiled trace.  The cache stays an
        accelerator: any failure here just means workers fall back to
        the generator.  Returns the paths of the entries warmed — the
        chaos engine's cache-corruption target list.
        """
        warmed = set()
        paths: List[str] = []
        for spec in specs:
            trace = spec.trace
            if not _cacheable(trace, spec.max_instructions):
                continue
            key = (trace.name, trace.seed, spec.max_instructions)
            if key in warmed:
                continue
            warmed.add(key)
            try:
                from repro.workloads.cache import (
                    cache_path,
                    prewarm_workload_trace,
                )

                if prewarm_workload_trace(
                    trace.name, seed=trace.seed,
                    instructions=spec.max_instructions,
                ):
                    paths.append(
                        cache_path(
                            trace.name, trace.seed, spec.max_instructions
                        )
                    )
            except ReproError:
                pass  # e.g. unknown workload: the attempt will report it
        return paths

    @staticmethod
    def _order_campaign(
        campaign: CampaignResult, specs: Sequence[RunSpec]
    ) -> None:
        """Re-order the campaign's views into spec order.

        Parallel completion is out of order; re-keying by the spec list
        makes the returned campaign (and the manifest derived from it)
        independent of scheduling, so ``workers=N`` output is directly
        comparable to ``workers=1``.
        """
        order = [spec.run_id for spec in specs]
        campaign.results = {
            run_id: campaign.results[run_id]
            for run_id in order if run_id in campaign.results
        }
        campaign.failures = {
            run_id: campaign.failures[run_id]
            for run_id in order if run_id in campaign.failures
        }
        campaign.outcomes = {
            run_id: campaign.outcomes[run_id]
            for run_id in order if run_id in campaign.outcomes
        }
        resumed = set(campaign.resumed)
        campaign.resumed = [
            run_id for run_id in order if run_id in resumed
        ]

    @staticmethod
    def _record(campaign: CampaignResult, outcome: RunOutcome) -> None:
        campaign.outcomes[outcome.run_id] = outcome
        if outcome.ok:
            assert outcome.result is not None
            campaign.results[outcome.run_id] = outcome.result
        else:
            campaign.failures[outcome.run_id] = outcome

    def _try_write_manifest(
        self,
        store: CheckpointStore,
        status: str,
        total: int,
        campaign: CampaignResult,
    ) -> Optional[Dict[str, Any]]:
        """Write the manifest, absorbing write failures.

        Atomicity guarantees a failed write leaves the previous
        manifest (if any) intact; the campaign result is already in
        memory, so a manifest that cannot land degrades reporting, not
        correctness.
        """
        try:
            return self._write_manifest(store, status, total, campaign)
        except OSError:
            return None

    def _write_manifest(
        self,
        store: CheckpointStore,
        status: str,
        total: int,
        campaign: CampaignResult,
    ) -> Dict[str, Any]:
        # Give every entry that failed its durable append a second
        # chance before the manifest summarizes the checkpoint; whatever
        # is still stuck is declared as a gap the auditor can excuse.
        store.flush_pending()
        failures = [
            {
                "run_id": outcome.run_id,
                "status": outcome.status,
                "kind": outcome.error_kind,
                "message": outcome.error_message,
                "attempts": outcome.attempts,
            }
            for outcome in campaign.failures.values()
        ]
        # Surface silently skipped trace records (strict=False loads):
        # dropped lines must be visible, not invisible.
        skipped_by_run = {
            run_id: int(result.extra.get("trace_records_skipped", 0))
            for run_id, result in campaign.results.items()
            if result.extra.get("trace_records_skipped")
        }
        # Per-point headline metrics, so a campaign directory is
        # renderable by 'repro-sim report --campaign' without re-loading
        # every checkpointed result.
        metrics = {}
        for run_id, result in campaign.results.items():
            point = {
                "ipc": result.ipc,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "l1_miss_rate": result.l1_miss_rate,
                "prefetch_accuracy": result.prefetch_accuracy,
            }
            if result.extra.get("sampled"):
                # Sampled points are estimates: record the sampling shape
                # and the confidence interval next to the headline IPC.
                point["sampled"] = True
                point["windows"] = int(result.extra.get("windows", 0))
                point["ipc_ci95"] = result.extra.get("ipc_ci95", 0.0)
            metrics[run_id] = point
        extra: Dict[str, Any] = {
            "policy": {
                "timeout": self.timeout,
                "retries": self.retries,
                "on_error": self.on_error,
                "isolation": self.isolation,
                "snapshot_every": self.snapshot_every,
                "workers": self.workers,
                "max_worker_kills": self.max_worker_kills,
            },
            "trace_records_skipped": {
                "total": sum(skipped_by_run.values()),
                "by_run": skipped_by_run,
            },
            "metrics": metrics,
        }
        # Entries whose checkpoint append never landed (disk failure
        # that outlived the end-of-campaign retry): the auditor treats
        # these as *declared* gaps rather than silent corruption.
        if store.pending_ids:
            extra["checkpoint_gaps"] = sorted(store.pending_ids)
        if store.append_failures:
            extra["checkpoint_append_failures"] = store.append_failures
        if self._chaos_engine is not None:
            extra["chaos"] = self._chaos_engine.summary()
        return store.write_manifest(
            status=status,
            total=total,
            completed=list(campaign.results),
            resumed=campaign.resumed,
            failures=failures,
            extra=extra,
        )


class _WorkerSlot:
    """One persistent single-process worker of the parallel pool.

    Each slot owns its own ``ProcessPoolExecutor(max_workers=1)``.
    Killing a worker of a *shared* N-process pool marks the whole pool
    broken — every outstanding future raises ``BrokenProcessPool`` —
    so the only way to kill a timed-out attempt without disturbing its
    siblings is one executor per worker.  Between attempts the slot's
    process persists, amortising interpreter start-up and imports over
    the whole campaign instead of paying them per attempt.
    """

    __slots__ = ("index", "executor")

    def __init__(self, index: int) -> None:
        self.index = index
        self.executor = ProcessPoolExecutor(max_workers=1)

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        return self.executor.submit(fn, *args)

    def kill(self) -> None:
        """Kill the worker process and respawn a fresh one.

        Used for deadline expiry (the worker is wedged or over budget)
        and for crash recovery (the pool is broken either way).
        """
        CampaignRunner._kill_workers(self.executor)
        self.executor.shutdown(wait=True, cancel_futures=True)
        self.executor = ProcessPoolExecutor(max_workers=1)

    # A broken pool is discarded exactly like a killed one.
    reset = kill

    def shutdown(self) -> None:
        """Tear the slot down for good (kills a still-busy worker)."""
        CampaignRunner._kill_workers(self.executor)
        self.executor.shutdown(wait=True, cancel_futures=True)


@dataclass
class _PointState:
    """Scheduler-side state of one not-yet-terminal campaign point."""

    spec: RunSpec
    fingerprint: str
    snapshot_path: Optional[str]
    #: Position of the spec in the campaign's spec list (scheduling-
    #: independent, which is what keys chaos worker kills).
    index: int = 0
    #: 0-based index of the next attempt to launch.
    attempt: int = 0
    #: Monotonic time of the first launch (None until then).
    start: Optional[float] = None
    #: How many times this point's worker died without an exception
    #: crossing back (kill -9, segfault).  Budgeted separately from
    #: ``attempt``: worker deaths do not consume the retry policy.
    worker_kills: int = 0


class _ParallelDriver:
    """The ``workers>1`` campaign schedule.

    Keeps up to N points in flight across N :class:`_WorkerSlot`\\ s and
    reproduces the serial runner's per-point semantics exactly:

    - **Timeouts** are *deadlines* recorded at submission.  The driver
      never blocks in ``future.result(timeout=...)``; it waits with
      ``concurrent.futures.wait`` bounded by the earliest deadline (or
      retry-eligibility time) and kills only the expired slot.
    - **Backoff** never blocks the pool: a retryable failure pushes the
      point onto a min-heap keyed by its eligibility time, and the slot
      immediately takes other work.  The backoff schedule — ``min(max,
      base * 2**attempt)`` — is the serial one.  Only when *nothing* is
      running does the driver actually sleep (through the runner's
      injectable ``sleep``, so tests with a no-op sleep make progress
      instead of spinning).
    - **Fail-fast** (``on_error="fail"``) finalises the failing point
      (checkpoint, record, callbacks), then stops scheduling; the
      ``finally`` teardown kills the outstanding workers and drains
      their executors before the failed manifest is written.
    - **Unpicklable specs** (legacy lambda traces) cannot cross the
      process boundary; they run synchronously in the driver through
      the serial retry loop, exactly as ``workers=1`` would.

    Checkpoint entries are appended in completion order; resume is
    keyed by ``run_id``, so the out-of-order file replays identically.
    """

    def __init__(
        self,
        runner: CampaignRunner,
        queue: List[Tuple[int, RunSpec, str]],
        store: Optional[CheckpointStore],
        campaign: CampaignResult,
    ) -> None:
        self.runner = runner
        self.store = store
        self.campaign = campaign
        self.ready: List[_PointState] = [
            _PointState(
                spec, fingerprint, runner._snapshot_path(spec), index=index
            )
            for index, spec, fingerprint in queue
        ]
        #: ``(eligible_time, seq, point)`` min-heap of backing-off retries.
        self.waiting: List[Tuple[float, int, _PointState]] = []
        self._seq = itertools.count()
        self.status = "complete"
        self.pending_error: Optional[ReproError] = None
        #: Worker deaths with no successful completion in between; at
        #: ``runner.inline_fallback_after`` the pool is declared
        #: unsalvageable and the rest of the campaign runs inline.
        self.consecutive_deaths = 0
        self.inline_mode = False

    def drive(self) -> Tuple[str, Optional[ReproError]]:
        runner = self.runner
        slots = [
            _WorkerSlot(i)
            for i in range(min(runner.workers, len(self.ready)))
        ]
        idle = list(slots)
        #: future -> (point, slot, deadline | None)
        running: Dict[Any, Tuple[_PointState, _WorkerSlot, Optional[float]]] = {}
        try:
            while self.ready or self.waiting or running:
                if runner._stop_requested:
                    # Graceful stop: drop everything not yet terminal.
                    # In-flight attempts are killed by the slot teardown
                    # below; their points were never checkpointed, so a
                    # resume re-runs exactly them and nothing else.
                    self.status = "interrupted"
                    break
                now = time.monotonic()
                while self.waiting and self.waiting[0][0] <= now:
                    self.ready.append(heapq.heappop(self.waiting)[2])
                while idle and self.ready:
                    if self._launch(self.ready.pop(0), idle, running):
                        return self.status, self.pending_error
                if not running:
                    if not (self.ready or self.waiting):
                        break
                    if not self.ready:
                        # Everything is backing off.  Sleep out the head
                        # delay, then launch it unconditionally — the
                        # sleep is injectable and may be a no-op.
                        eligible, _, point = heapq.heappop(self.waiting)
                        delay = max(0.0, eligible - time.monotonic())
                        if delay:
                            runner._sleep(delay)
                        self.ready.append(point)
                    continue
                done, _ = futures_wait(
                    running,
                    timeout=self._wait_timeout(running),
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future, (point, slot, deadline) in list(running.items()):
                    if future in done or future.done():
                        continue
                    if deadline is not None and deadline <= now:
                        del running[future]
                        slot.kill()
                        idle.append(slot)
                        error = RunTimeoutError(
                            f"run {point.spec.run_id!r} exceeded "
                            f"{runner.timeout:g}s (attempt {point.attempt + 1})"
                        )
                        if self._attempt_failed(point, error, now):
                            return self.status, self.pending_error
                for future in done:
                    point, slot, _ = running.pop(future)
                    if self._complete(future, point, slot, idle):
                        return self.status, self.pending_error
            return self.status, self.pending_error
        finally:
            for slot in slots:
                slot.shutdown()

    # -- scheduling steps ----------------------------------------------

    def _launch(
        self,
        point: _PointState,
        idle: List[_WorkerSlot],
        running: Dict[Any, Tuple[_PointState, _WorkerSlot, Optional[float]]],
    ) -> bool:
        """Dispatch one attempt; True when fail-fast stops the campaign."""
        runner = self.runner
        spec = point.spec
        if point.start is None:
            point.start = time.monotonic()
            if runner._progress is not None:
                runner._progress.point_started(spec.run_id)
        if self.inline_mode or not _is_picklable(spec):
            # Either the spec cannot cross the process boundary, or the
            # pool has proven it cannot stay alive: run the point's
            # whole serial retry loop inline, blocking the driver.
            # Inline fallback trades parallelism (and timeouts) for
            # forward progress — slower beats stuck.
            outcome = runner._run_spec(spec, force_inline=self.inline_mode)
            return self._finalize(outcome, point.fingerprint)
        slot = idle.pop()
        deadline = (
            None if runner.timeout is None
            else time.monotonic() + runner.timeout
        )
        future = slot.submit(
            execute_spec, spec, point.attempt,
            runner.snapshot_every, point.snapshot_path,
        )
        running[future] = (point, slot, deadline)
        if runner._chaos_engine is not None and runner._chaos_engine.kill_attempt(
            point.index, point.worker_kills
        ):
            CampaignRunner._kill_workers(slot.executor)
        return False

    def _complete(
        self,
        future: Any,
        point: _PointState,
        slot: _WorkerSlot,
        idle: List[_WorkerSlot],
    ) -> bool:
        """Absorb one finished future; True when fail-fast stops."""
        runner = self.runner
        spec = point.spec
        now = time.monotonic()
        error: Optional[ReproError] = None
        died: Optional[BrokenProcessPool] = None
        try:
            result = future.result()
        except KeyboardInterrupt:
            raise
        except BrokenProcessPool as broken:
            # The worker vanished without raising (kill -9, OOM,
            # segfault).  Respawn the slot; the watchdog decides below
            # whether the *point* gets another launch.
            slot.reset()
            died = broken
        except ReproError as raised:
            error = raised
        except Exception as raised:
            error = SimulationError(
                f"run {spec.run_id!r} raised "
                f"{type(raised).__name__}: {raised}"
            )
        idle.append(slot)
        if died is not None:
            return self._worker_died(point, died, now)
        # The worker is demonstrably alive (it delivered a value or a
        # real exception), so the pool-health streak resets.
        self.consecutive_deaths = 0
        if error is not None:
            return self._attempt_failed(point, error, now)
        runner._discard_snapshot(point.snapshot_path)
        assert point.start is not None
        outcome = RunOutcome(
            run_id=spec.run_id,
            status="ok",
            attempts=point.attempt + 1,
            result=result,
            elapsed_seconds=now - point.start,
        )
        return self._finalize(outcome, point.fingerprint)

    def _worker_died(
        self, point: _PointState, broken: BrokenProcessPool, now: float
    ) -> bool:
        """The watchdog: absorb a worker death without raising.

        A death consumes the point's *kill* budget, not its retry
        budget (the attempt never reported anything to retry *from*).
        Within budget the point is rescheduled with the same bounded
        backoff as a retry; past ``max_worker_kills`` it is finalised
        as **poisoned** — a distinct terminal state, so one hostile
        point degrades to a single failure record instead of hanging
        or sinking the campaign.  Deaths also feed the pool-wide
        streak that triggers inline fallback.
        """
        runner = self.runner
        point.worker_kills += 1
        self.consecutive_deaths += 1
        if self.consecutive_deaths >= runner.inline_fallback_after:
            self.inline_mode = True
        if point.worker_kills < runner.max_worker_kills:
            delay = min(
                runner.backoff_max,
                runner.backoff_base * (2.0 ** (point.worker_kills - 1)),
            )
            heapq.heappush(
                self.waiting, (now + delay, next(self._seq), point)
            )
            return False
        runner._discard_snapshot(point.snapshot_path)
        assert point.start is not None
        outcome = RunOutcome(
            run_id=point.spec.run_id,
            status="poisoned",
            attempts=point.attempt + point.worker_kills,
            error_kind="WorkerPoisonedError",
            error_message=(
                f"run {point.spec.run_id!r}: worker died "
                f"{point.worker_kills} times "
                f"(max_worker_kills={runner.max_worker_kills}); "
                f"point poisoned: {broken}"
            ),
            elapsed_seconds=now - point.start,
        )
        return self._finalize(outcome, point.fingerprint)

    def _attempt_failed(
        self, point: _PointState, error: ReproError, now: float
    ) -> bool:
        """Retry or finalise a failed attempt; True when fail-fast stops."""
        runner = self.runner
        if error.retryable and point.attempt < runner.retries:
            delay = min(
                runner.backoff_max,
                runner.backoff_base * (2.0 ** point.attempt),
            )
            point.attempt += 1
            if (
                runner._chaos_engine is not None
                and point.snapshot_path is not None
            ):
                runner._chaos_engine.maybe_corrupt_snapshot(
                    point.snapshot_path
                )
            heapq.heappush(
                self.waiting, (now + delay, next(self._seq), point)
            )
            return False
        runner._discard_snapshot(point.snapshot_path)
        assert point.start is not None
        outcome = RunOutcome(
            run_id=point.spec.run_id,
            status="failed",
            attempts=point.attempt + 1,
            error_kind=error_kind(error),
            error_message=str(error),
            elapsed_seconds=now - point.start,
        )
        return self._finalize(outcome, point.fingerprint)

    def _finalize(self, outcome: RunOutcome, fingerprint: str) -> bool:
        """Checkpoint/record/notify one terminal outcome.

        Returns True when the outcome triggers ``on_error="fail"`` —
        the caller must stop scheduling and let teardown kill the rest.
        """
        runner = self.runner
        if self.store is not None:
            self.store.append(runner._entry_of(outcome, fingerprint))
        runner._record(self.campaign, outcome)
        if runner._progress is not None:
            runner._progress.point_finished(outcome)
        if runner._on_outcome is not None:
            runner._on_outcome(outcome)
        if not outcome.ok and runner.on_error == "fail":
            self.status = "failed"
            self.pending_error = runner._failure_error(outcome)
            return True
        return False

    def _wait_timeout(
        self,
        running: Dict[Any, Tuple[_PointState, _WorkerSlot, Optional[float]]],
    ) -> Optional[float]:
        """How long ``wait`` may block: to the nearest deadline or the
        nearest retry-eligibility time, whichever comes first — capped
        at half a second so a cross-thread :meth:`CampaignRunner.request_stop`
        (or a handled signal) is noticed promptly even when every
        worker is deep in a long point."""
        marks = [
            deadline
            for _, _, deadline in running.values()
            if deadline is not None
        ]
        if self.waiting:
            marks.append(self.waiting[0][0])
        if not marks:
            return _STOP_POLL_INTERVAL
        return max(0.0, min(min(marks) - time.monotonic(), _STOP_POLL_INTERVAL))
