"""Offline analyses and report rendering for the benchmark harness."""

from repro.analysis.markov_bits import MarkovBitsAnalysis, markov_delta_bits
from repro.analysis.report import ascii_bar_chart, ascii_table
from repro.analysis.summary import comparison_report

__all__ = [
    "MarkovBitsAnalysis",
    "markov_delta_bits",
    "ascii_bar_chart",
    "ascii_table",
    "comparison_report",
]
