"""Figure 4 analysis: bits needed by the differential Markov table.

The paper's space optimization stores the *difference* between
consecutive cache-miss addresses instead of the absolute successor.
Figure 4 asks: given N-bit signed entries, what fraction of L1 miss
transitions could the table represent (and therefore predict)?  The
answer — 16 bits captures almost everything — justifies the 4 KB table.

This module replays a workload's L1 miss stream (gathered with a simple
cache functional model, no timing needed) and histograms the per-load
transition deltas by the signed bit-width required to encode them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.config import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.stats import Histogram
from repro.trace.record import InstrKind, TraceRecord
from repro.utils import min_bits_signed


class MarkovBitsAnalysis:
    """Histogram of signed bit-widths of consecutive-miss deltas."""

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram

    def coverage_at(self, bits: int) -> float:
        """Fraction of miss transitions representable with ``bits`` bits."""
        return self.histogram.fraction_at_or_below(bits)

    def coverage_curve(self, bit_widths: Iterable[int]) -> List[float]:
        return [self.coverage_at(bits) for bits in bit_widths]

    @property
    def transitions(self) -> int:
        return self.histogram.total


def markov_delta_bits(
    trace: Iterable[TraceRecord],
    max_instructions: int,
    l1_config: CacheConfig = CacheConfig(
        name="L1D", size_bytes=32 * 1024, associativity=4, block_size=32,
        hit_latency=1,
    ),
) -> MarkovBitsAnalysis:
    """Replay ``trace`` functionally and histogram per-load miss deltas.

    Transitions are between consecutive misses of the *same load PC*
    (matching the SFM training rule, which records ``last address ->
    current address`` out of the PC-indexed stride table), at cache-block
    granularity like the rest of the predictor.
    """
    cache = SetAssociativeCache(l1_config)
    last_miss_of_pc: Dict[int, int] = {}
    histogram = Histogram("markov-delta-bits")
    seen = 0
    for record in trace:
        seen += 1
        if seen > max_instructions:
            break
        if record.kind not in (InstrKind.LOAD, InstrKind.STORE):
            continue
        hit = cache.access(record.addr, is_store=record.is_store)
        if hit:
            continue
        block = cache.align(record.addr)
        cache.insert(block)
        if not record.is_load:
            continue
        previous = last_miss_of_pc.get(record.pc)
        if previous is not None:
            delta = block - previous
            histogram.add(min_bits_signed(delta))
        last_miss_of_pc[record.pc] = block
    return MarkovBitsAnalysis(histogram)
