"""Markdown report generation for comparison runs.

``repro-sim report`` (and library users via :func:`comparison_report`)
turn a set of labelled :class:`~repro.sim.results.SimulationResult`
objects into a self-contained markdown document: machine table,
speedups, prefetch statistics, and bus pressure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.results import SimulationResult


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for __ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def comparison_report(
    workload: str,
    results: Dict[str, SimulationResult],
    baseline_label: str = "Base",
    title: Optional[str] = None,
) -> str:
    """Render a markdown comparison of ``results`` against a baseline.

    ``results`` maps machine labels to simulation results and must
    contain ``baseline_label``.
    """
    if baseline_label not in results:
        raise ValueError(f"no baseline {baseline_label!r} in results")
    base = results[baseline_label]
    lines: List[str] = []
    lines.append(title or f"# Simulation report: {workload}")
    lines.append("")
    lines.append(
        f"Baseline (`{baseline_label}`): IPC {base.ipc:.3f} over "
        f"{base.instructions} instructions ({base.cycles} cycles); "
        f"L1 miss rate {base.l1_miss_rate * 100:.1f}%, average load "
        f"latency {base.avg_load_latency:.2f} cycles."
    )
    lines.append("")
    lines.append("## Performance")
    lines.append("")
    rows = []
    for label, result in results.items():
        speedup = "-" if label == baseline_label else (
            f"{result.speedup_over(base):+.1f}%"
        )
        rows.append(
            [
                label,
                f"{result.ipc:.3f}",
                speedup,
                f"{result.avg_load_latency:.2f}",
                f"{result.l1_miss_rate * 100:.1f}%",
            ]
        )
    lines.extend(
        _table(
            ["machine", "IPC", "speedup", "load latency", "L1 miss rate"],
            rows,
        )
    )
    lines.append("")
    lines.append("## Prefetching")
    lines.append("")
    rows = []
    for label, result in results.items():
        if result.prefetches_issued == 0:
            continue
        rows.append(
            [
                label,
                f"{result.prefetches_issued}",
                f"{result.prefetches_used}",
                f"{result.prefetch_accuracy * 100:.0f}%",
                f"{result.sb_allocations}",
            ]
        )
    if rows:
        lines.extend(
            _table(
                ["machine", "issued", "used", "accuracy", "allocations"],
                rows,
            )
        )
    else:
        lines.append("No prefetchers in this comparison.")
    lines.append("")
    lines.append("## Bus pressure")
    lines.append("")
    rows = [
        [
            label,
            f"{result.l1_l2_bus_utilization * 100:.1f}%",
            f"{result.l2_mem_bus_utilization * 100:.1f}%",
        ]
        for label, result in results.items()
    ]
    lines.extend(_table(["machine", "L1-L2 busy", "L2-mem busy"], rows))
    lines.append("")
    return "\n".join(lines)
