"""ASCII rendering for benchmark output.

Every benchmark prints the table or figure it reproduces in a shape that
can be compared line-by-line with the paper; these helpers keep the
formatting consistent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a simple fixed-width table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(widths[index]) for index, value in enumerate(row))
        )
    return "\n".join(lines)


def ascii_bar_chart(
    values: Dict[str, float], width: int = 40, unit: str = "", title: str = ""
) -> str:
    """Render labelled horizontal bars (for figure-shaped output)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines)
    label_width = max(len(label) for label in values)
    peak = max((abs(value) for value in values.values()), default=1.0) or 1.0
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        sign = "-" if value < 0 else ""
        lines.append(
            f"{label.ljust(label_width)} | {sign}{bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)
